"""Tests for the async worker pool and the JSON-RPC remote-worker protocol."""

from __future__ import annotations

import pytest

from repro.experiments import build_small_model
from repro.service import (JobScheduler, JobState, OptimisationService,
                           RemoteUnavailableError, RemoteWorkerClient,
                           RemoteWorkerError, UnknownJobError, WorkerServer,
                           create_optimiser)
from repro.service.remote import (parse_endpoint, request_from_wire,
                                  request_to_wire, result_from_wire,
                                  result_to_wire)
from repro.service.worker import JobRequest, execute_request

TASO_FAST = {"max_iterations": 8}


@pytest.fixture(scope="module")
def squeezenet():
    return build_small_model("squeezenet")


@pytest.fixture(scope="module")
def worker_server():
    with WorkerServer(num_workers=2) as server:
        yield server


# ---------------------------------------------------------------------------
class TestWireFormat:
    def test_request_round_trip(self, mlp_graph):
        request = JobRequest(graph=mlp_graph, optimiser="taso",
                             config=TASO_FAST, model_name="mlp")
        decoded, fingerprint = request_from_wire(
            request_to_wire(request, "fp42"))
        assert fingerprint == "fp42"
        assert decoded.optimiser == "taso"
        assert dict(decoded.config) == TASO_FAST
        assert decoded.model_name == "mlp"
        assert decoded.graph.structural_hash() == mlp_graph.structural_hash()
        assert not decoded.use_cache  # caching stays on the service side

    def test_result_round_trip(self, mlp_graph):
        request = JobRequest(graph=mlp_graph, optimiser="taso",
                             config=TASO_FAST, model_name="mlp")
        outcome = execute_request(request, "fp42")
        decoded = result_from_wire(result_to_wire(outcome), mlp_graph)
        assert decoded.fingerprint == "fp42"
        assert decoded.search.initial_graph is mlp_graph
        assert decoded.search.final_graph.structural_hash() \
            == outcome.search.final_graph.structural_hash()
        assert decoded.search.applied_rules == outcome.search.applied_rules

    def test_newer_protocol_is_rejected(self, mlp_graph):
        request = JobRequest(graph=mlp_graph)
        wire = request_to_wire(request)
        wire["protocol"] = 999
        with pytest.raises(ValueError, match="protocol"):
            request_from_wire(wire)

    def test_parse_endpoint(self):
        assert parse_endpoint("host:9100") == ("host", 9100)
        assert parse_endpoint("9100") == ("127.0.0.1", 9100)
        with pytest.raises(ValueError):
            parse_endpoint("no-port")


# ---------------------------------------------------------------------------
class TestWorkerServer:
    def test_ping(self, worker_server):
        with RemoteWorkerClient(worker_server.endpoint) as client:
            info = client.ping()
        assert info["pong"] is True
        assert info["workers"] == 2

    def test_remote_search_matches_local(self, worker_server, mlp_graph):
        request = JobRequest(graph=mlp_graph, optimiser="taso",
                             config=TASO_FAST, model_name="mlp")
        with RemoteWorkerClient(worker_server.endpoint) as client:
            remote_result = client.optimise(request, "fp")
        local = create_optimiser("taso", **TASO_FAST).optimise(mlp_graph)
        assert remote_result.search.final_graph.structural_hash() \
            == local.final_graph.structural_hash()
        assert remote_result.search.final_cost_ms \
            == pytest.approx(local.final_cost_ms)

    def test_remote_search_failure_propagates(self, worker_server, mlp_graph):
        request = JobRequest(graph=mlp_graph, optimiser="taso",
                             config={"not_a_real_knob": 1})
        with RemoteWorkerClient(worker_server.endpoint) as client:
            with pytest.raises(RemoteWorkerError, match="not_a_real_knob"):
                client.optimise(request)
            # The connection survives an in-search failure.
            assert client.ping()["pong"] is True

    def test_unreachable_endpoint(self):
        with pytest.raises(RemoteUnavailableError):
            RemoteWorkerClient("127.0.0.1:1", timeout_s=2.0)

    def test_large_graph_crosses_the_wire(self, worker_server):
        """Responses bigger than asyncio's 64 KiB default line limit work.

        inception_v3 serialises to ~94 KB; the async path must raise the
        StreamReader limit or every real-size model fails remotely.
        """
        import asyncio
        from repro.service.remote import optimise_async
        graph = build_small_model("inception_v3")
        request = JobRequest(graph=graph, optimiser="taso",
                             config={"max_iterations": 2},
                             model_name="inception_v3")
        result = asyncio.run(
            optimise_async(worker_server.endpoint, request, "fp-big"))
        assert result.search.model == "inception_v3"
        assert result.fingerprint == "fp-big"


# ---------------------------------------------------------------------------
class TestAsyncBackend:
    def test_async_backend_matches_thread_backend(self, squeezenet):
        with OptimisationService(num_workers=2, backend="async") as service:
            async_result = service.optimise(squeezenet, "taso", TASO_FAST,
                                            timeout=120)
            stats = service.stats()
        with OptimisationService(num_workers=2) as service:
            thread_result = service.optimise(squeezenet, "taso", TASO_FAST)
        assert async_result.graph.structural_hash() \
            == thread_result.graph.structural_hash()
        assert stats["backend"] == "async"
        assert stats["pool"]["dispatched_local"] == 1

    def test_async_backend_with_remote_worker(self, worker_server, squeezenet):
        with OptimisationService(
                num_workers=2,
                remote_endpoints=[worker_server.endpoint]) as service:
            result = service.optimise(squeezenet, "taso", TASO_FAST,
                                      timeout=120)
            stats = service.stats()
        local = create_optimiser("taso", **TASO_FAST).optimise(squeezenet)
        assert result.graph.structural_hash() \
            == local.final_graph.structural_hash()
        assert stats["backend"] == "async"  # implied by remote_endpoints
        assert stats["pool"]["dispatched_remote"] == 1
        assert stats["pool"]["dispatched_local"] == 0

    def test_dead_endpoint_falls_back_to_local(self, squeezenet):
        with OptimisationService(num_workers=2,
                                 remote_endpoints=["127.0.0.1:1"]) as service:
            result = service.optimise(squeezenet, "taso", TASO_FAST,
                                      timeout=120)
            stats = service.stats()
        assert result.search.model == "squeezenet"
        assert stats["pool"]["remote_fallbacks"] == 1
        assert stats["pool"]["dispatched_local"] == 1

    def test_dedup_works_on_the_async_backend(self, squeezenet):
        with OptimisationService(num_workers=2, backend="async") as service:
            ids = [service.submit(squeezenet, "taso", {"max_iterations": 20},
                                  model_name=f"m{i}") for i in range(4)]
            results = service.gather(ids, timeout=120)
            stats = service.stats()
        assert sum(1 for r in results if r.coalesced) == 3
        assert stats["pool"]["dispatched_local"] == 1


# ---------------------------------------------------------------------------
class TestAttachedJobs:
    def test_follower_shares_outcome_and_state(self):
        with JobScheduler(num_workers=1) as scheduler:
            primary = scheduler.submit(lambda: 42, label="primary")
            follower = scheduler.attach(primary, label="tagalong")
            assert scheduler.result(follower, timeout=10) == 42
            assert scheduler.poll(follower) is JobState.SUCCEEDED
            assert scheduler.record(follower).label == "tagalong"

    def test_followers_do_not_consume_admission_slots(self):
        import threading
        release = threading.Event()
        with JobScheduler(num_workers=1, max_pending=1) as scheduler:
            primary = scheduler.submit(release.wait)
            # The queue is full, yet followers still attach freely.
            followers = [scheduler.attach(primary) for _ in range(5)]
            release.set()
            assert scheduler.wait_all(timeout=10)
            for job_id in followers:
                assert scheduler.result(job_id) is True

    def test_cancel_on_follower_is_refused(self):
        import threading
        release = threading.Event()
        with JobScheduler(num_workers=1) as scheduler:
            primary = scheduler.submit(release.wait)
            follower = scheduler.attach(primary)
            assert scheduler.cancel(follower) is False
            release.set()
            assert scheduler.result(primary, timeout=10) is True

    def test_attach_to_unknown_job(self):
        with JobScheduler(num_workers=1) as scheduler:
            with pytest.raises(UnknownJobError):
                scheduler.attach(999)

    def test_remote_endpoints_require_async_backend(self):
        with pytest.raises(ValueError, match="async"):
            JobScheduler(num_workers=1, backend="thread",
                         remote_endpoints=["h:1"])
        with pytest.raises(ValueError, match="async"):
            OptimisationService(num_workers=1, backend="process",
                                remote_endpoints=["h:1"])
