"""Tests for streaming job progress: optimiser callbacks → service events.

The acceptance bar: a streamed job yields at least one progress event per
optimiser iteration on the local (thread), async and remote backends, and
the CLI's ``--follow`` prints them live.
"""

from __future__ import annotations

import pytest

from repro.experiments import build_small_model
from repro.rl.env import GraphRewriteEnv
from repro.search.greedy import TASOOptimizer
from repro.search.random_search import RandomSearchOptimizer
from repro.search.tensat import TensatOptimizer
from repro.service import (JobScheduler, OptimisationService, ProgressEvent,
                           WorkerServer)
from repro.service.cli import main as cli_main
from repro.service.events import EventChannel, FileProgressSink

TASO_FAST = {"max_iterations": 6}


@pytest.fixture(scope="module")
def squeezenet():
    return build_small_model("squeezenet")


# ---------------------------------------------------------------------------
class TestOptimiserCallbacks:
    def test_taso_emits_one_event_per_iteration(self, squeezenet):
        events = []
        optimiser = TASOOptimizer(max_iterations=6,
                                  progress_callback=lambda *a: events.append(a))
        result = optimiser.optimise(squeezenet)
        assert len(events) == int(result.stats["iterations"])
        iterations = [iteration for iteration, _, _ in events]
        assert iterations == sorted(iterations)
        # The final event's best cost matches the result.
        _, best_cost, best_fp = events[-1]
        assert best_cost <= events[0][1]
        assert len(best_fp) > 0

    def test_callbacks_do_not_change_the_search(self, squeezenet):
        silent = TASOOptimizer(max_iterations=6).optimise(squeezenet)
        noisy = TASOOptimizer(
            max_iterations=6,
            progress_callback=lambda *a: None).optimise(squeezenet)
        assert silent.final_graph.structural_hash() \
            == noisy.final_graph.structural_hash()
        assert silent.final_cost_ms == pytest.approx(noisy.final_cost_ms)

    def test_tensat_emits_one_event_per_round(self, squeezenet):
        events = []
        optimiser = TensatOptimizer(round_limit=3, node_limit=2000,
                                    per_round_cap=30,
                                    progress_callback=lambda *a: events.append(a))
        result = optimiser.optimise(squeezenet)
        assert len(events) == int(result.stats["rounds"])
        # Best cost is monotonically non-increasing across rounds.
        costs = [cost for _, cost, _ in events]
        assert costs == sorted(costs, reverse=True)

    def test_random_search_emits_one_event_per_walk(self, squeezenet):
        events = []
        optimiser = RandomSearchOptimizer(num_walks=4, horizon=5,
                                          progress_callback=lambda *a: events.append(a))
        result = optimiser.optimise(squeezenet)
        assert len(events) == int(result.stats["walks"]) == 4

    def test_env_emits_one_event_per_step(self, squeezenet):
        events = []
        env = GraphRewriteEnv(squeezenet, max_steps=5,
                              progress_callback=lambda *a: events.append(a))
        obs = env.reset()
        steps = 0
        done = False
        while not done and obs.candidates:
            step = env.step(0)
            obs, done = step.observation, step.done
            steps += 1
        assert len(events) == steps
        # Events carry the running best latency and its graph hash.
        _, best_ms, best_fp = events[-1]
        assert best_ms == pytest.approx(env.best_latency_ms)
        assert best_fp == env.best_graph.structural_hash()


# ---------------------------------------------------------------------------
class TestEventTransports:
    def test_file_sink_round_trip(self, tmp_path):
        channel = EventChannel(tmp_path / "spool.events")
        sink = channel.sink()
        assert isinstance(sink, FileProgressSink)
        sink(1, 10.0, "aaa")
        sink(2, 9.0, "bbb")
        events = channel.drain()
        assert [e.iteration for e in events] == [1, 2]
        assert channel.drain() == []  # drained exactly once
        sink(3, 8.0, "ccc")
        assert [e.iteration for e in channel.drain()] == [3]
        channel.close()
        assert not (tmp_path / "spool.events").exists()

    def test_partial_line_is_not_torn(self, tmp_path):
        path = tmp_path / "spool.events"
        channel = EventChannel(path)
        sink = channel.sink()
        sink(1, 10.0, "aaa")
        with open(path, "ab") as handle:  # a half-written second event
            handle.write(b'{"iteration": 2, "best_co')
        assert [e.iteration for e in channel.drain()] == [1]
        with open(path, "ab") as handle:
            handle.write(b'st": 9.0, "best_graph_fp": "bbb"}\n')
        assert [e.iteration for e in channel.drain()] == [2]

    def test_event_dict_round_trip(self):
        event = ProgressEvent(iteration=3, best_cost=1.5,
                              best_graph_fp="abc", timestamp=12.0)
        assert ProgressEvent.from_dict(event.to_dict()) == event


# ---------------------------------------------------------------------------
def _counting_job(n: int, progress=None) -> int:
    """Module-level streaming job body (picklable for process pools)."""
    for i in range(1, n + 1):
        if progress is not None:
            progress(i, float(n - i), f"fp{i}")
    return n


class TestSchedulerEvents:
    def test_job_handle_streams_events(self):
        with JobScheduler(num_workers=1) as scheduler:
            job_id = scheduler.submit(_counting_job, 5, stream=True)
            handle = scheduler.handle(job_id)
            events = list(handle.events(timeout=30))
            assert handle.result(timeout=10) == 5
        assert [e.iteration for e in events] == [1, 2, 3, 4, 5]
        assert events[-1].best_graph_fp == "fp5"

    def test_process_backend_streams_through_the_spool(self):
        with JobScheduler(num_workers=1, backend="process") as scheduler:
            job_id = scheduler.submit(_counting_job, 4, stream=True)
            events = list(scheduler.events(job_id, timeout=60))
            assert scheduler.result(job_id, timeout=30) == 4
        assert [e.iteration for e in events] == [1, 2, 3, 4]

    def test_unstreamed_job_yields_no_events(self):
        with JobScheduler(num_workers=1) as scheduler:
            job_id = scheduler.submit(lambda: 42)
            assert scheduler.result(job_id, timeout=10) == 42
            assert list(scheduler.events(job_id, timeout=10)) == []


# ---------------------------------------------------------------------------
class TestServiceStreaming:
    @pytest.mark.parametrize("backend", ["thread", "async"])
    def test_local_backends_stream_per_iteration(self, squeezenet, backend):
        with OptimisationService(num_workers=2, backend=backend) as service:
            job_id = service.submit(squeezenet, "taso", TASO_FAST,
                                    stream=True)
            events = list(service.events(job_id, timeout=120))
            result = service.result(job_id, timeout=120)
        assert len(events) == int(result.search.stats["iterations"])
        assert events[-1].best_cost <= events[0].best_cost

    def test_remote_backend_streams_per_iteration(self, squeezenet):
        with WorkerServer(num_workers=2) as server:
            with OptimisationService(
                    num_workers=2,
                    remote_endpoints=[server.endpoint]) as service:
                job_id = service.submit(squeezenet, "taso", TASO_FAST,
                                        stream=True)
                events = list(service.events(job_id, timeout=120))
                result = service.result(job_id, timeout=120)
                stats = service.stats()
        assert stats["pool"]["dispatched_remote"] == 1
        assert len(events) == int(result.search.stats["iterations"])

    def test_cache_hit_streams_nothing(self, squeezenet):
        with OptimisationService(num_workers=2) as service:
            service.optimise(squeezenet, "taso", TASO_FAST)
            job_id = service.submit(squeezenet, "taso", TASO_FAST,
                                    stream=True)
            result = service.result(job_id, timeout=30)
            assert result.cache_hit
            assert list(service.events(job_id, timeout=10)) == []


# ---------------------------------------------------------------------------
class TestCliFollow:
    def test_follow_prints_one_line_per_iteration(self, capsys):
        code = cli_main(["squeezenet", "--optimiser", "taso",
                         "--config", "max_iterations=4", "--follow"])
        out = capsys.readouterr().out
        assert code == 0
        follow_lines = [line for line in out.splitlines()
                        if line.startswith("[follow]")]
        assert len(follow_lines) >= 4  # ≥1 event per optimiser iteration
        assert "squeezenet" in follow_lines[0]
        assert "iter" in follow_lines[0] and "best" in follow_lines[0]
