"""Protocol revision 2 of the remote worker wire format.

Graphs travel as binary wire bytes (base64) tagged with a ``graph_ref``;
a connection ships each graph once and thereafter sends the bare ref.
Revision-1 payloads (JSON ``graph`` dicts) must keep decoding, and a ref
the server has never seen must be rejected loudly so the client re-ships.
"""

import json

import pytest

from repro.ir import graph_to_dict
from repro.models import build_model
from repro.search.result import SearchResult
from repro.service import RemoteWorkerClient, WorkerServer
from repro.service.remote import (PROTOCOL_VERSION, graph_ref_for,
                                  request_from_wire, request_to_wire,
                                  result_from_wire, result_to_wire)
from repro.service.worker import JobRequest, ServiceResult


@pytest.fixture(scope="module")
def squeezenet():
    return build_model("squeezenet")


@pytest.fixture
def request_(squeezenet):
    return JobRequest(graph=squeezenet, optimiser="taso",
                      config={"max_iterations": 3}, model_name="sq")


def test_request_roundtrip(request_):
    params = request_to_wire(request_, fingerprint="fp-1")
    assert params["protocol"] == PROTOCOL_VERSION
    decoded, fingerprint = request_from_wire(params)
    assert fingerprint == "fp-1"
    assert decoded.graph.structural_hash() == \
        request_.graph.structural_hash()
    assert decoded.optimiser == "taso"
    assert decoded.config == {"max_iterations": 3}
    assert decoded.model_name == "sq"


def test_graph_ref_prefers_fingerprint(request_):
    assert graph_ref_for(request_, "fp-9") == "fp-9"
    assert graph_ref_for(request_) == request_.graph.structural_hash()


def test_ref_reuse_on_one_connection(request_):
    """Second call with omit_graph resolves from the connection cache."""
    cache = {}
    first = request_to_wire(request_, fingerprint="fp-1")
    request_from_wire(first, graph_cache=cache)
    assert "fp-1" in cache

    second = request_to_wire(request_, fingerprint="fp-1", omit_graph=True)
    assert "graph_wire" not in second["request"]
    decoded, _ = request_from_wire(second, graph_cache=cache)
    assert decoded.graph.structural_hash() == \
        request_.graph.structural_hash()


def test_ref_only_payload_is_much_smaller(request_):
    full = len(json.dumps(request_to_wire(request_)))
    bare = len(json.dumps(request_to_wire(request_, omit_graph=True)))
    assert bare * 10 < full


def test_unknown_ref_is_rejected(request_):
    params = request_to_wire(request_, fingerprint="fp-x", omit_graph=True)
    with pytest.raises(ValueError, match="unknown graph_ref"):
        request_from_wire(params, graph_cache={})
    with pytest.raises(ValueError, match="unknown graph_ref"):
        request_from_wire(params)  # no cache at all


def test_newer_protocol_is_rejected(request_):
    params = request_to_wire(request_)
    params["protocol"] = PROTOCOL_VERSION + 1
    with pytest.raises(ValueError, match="unsupported protocol"):
        request_from_wire(params)


def test_v1_graph_dict_still_decodes(request_):
    """Old clients ship the graph as a JSON dict with no protocol field."""
    params = {
        "request": {
            "graph": graph_to_dict(request_.graph),
            "optimiser": "taso",
            "config": {"max_iterations": 3},
            "model_name": "sq",
        },
        "fingerprint": "",
    }
    decoded, _ = request_from_wire(params)
    assert decoded.graph.structural_hash() == \
        request_.graph.structural_hash()


def test_result_roundtrip(squeezenet):
    search = SearchResult(
        optimiser="taso", model="sq",
        initial_graph=squeezenet, final_graph=squeezenet,
        initial_latency_ms=2.0, final_latency_ms=1.0,
        initial_cost_ms=2.0, final_cost_ms=1.0,
        optimisation_time_s=0.1, applied_rules=["fuse_conv_bn"],
        stats={"iterations": 3})
    payload = result_to_wire(ServiceResult(search=search, cache_hit=False,
                                           fingerprint="fp-1"))
    result = result_from_wire(payload, squeezenet)
    assert result.search.final_graph.structural_hash() == \
        squeezenet.structural_hash()
    assert result.search.final_cost_ms == 1.0
    assert result.search.applied_rules == ["fuse_conv_bn"]
    assert result.fingerprint == "fp-1"


def test_client_ships_each_graph_once(request_):
    """End to end over a loopback server: repeat submissions of the same
    graph reuse the connection's graph_ref and return identical results."""
    with WorkerServer(num_workers=1) as server:
        with RemoteWorkerClient(server.endpoint) as client:
            first = client.optimise(request_)
            assert graph_ref_for(request_) in client._shipped_refs
            second = client.optimise(request_)
    assert first.search.final_graph.structural_hash() == \
        second.search.final_graph.structural_hash()
    assert first.search.final_cost_ms == second.search.final_cost_ms
