"""Tests for health/load-aware remote dispatch and the circuit breaker.

The acceptance bar for the cluster-dispatch work: with one saturated or
dead endpoint in the fleet, dispatch routes around it (no job failures),
quarantined endpoints receive no traffic, and a healed endpoint is
readmitted by the probe loop without operator action.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments import build_small_model
from repro.service import (HealthRegistry, OptimisationService,
                           RemoteWorkerClient, WorkerServer)
from repro.service.remote import parse_endpoint
from repro.service.worker import JobRequest

TASO_FAST = {"max_iterations": 6}


@pytest.fixture(scope="module")
def squeezenet():
    return build_small_model("squeezenet")


# ---------------------------------------------------------------------------
class TestHealthRegistry:
    def test_least_loaded_endpoint_wins(self):
        registry = HealthRegistry(["a:1", "b:1"], default_capacity=2)
        first = registry.try_acquire()
        assert first == "a:1"  # declaration order breaks the 0-load tie
        assert registry.try_acquire() == "b:1"  # a:1 now carries load
        # a:1 releases; it is again the least loaded.
        registry.release("a:1")
        assert registry.try_acquire() == "a:1"

    def test_ping_capacity_caps_dispatch(self):
        """The satellite bugfix: ping-reported capacity gates slots."""
        registry = HealthRegistry(["a:1"], default_capacity=8)
        registry.observe_ping("a:1", {"capacity": 2, "jobs_inflight": 0})
        assert registry.try_acquire() == "a:1"
        assert registry.try_acquire() == "a:1"
        assert registry.try_acquire() is None  # both real slots taken

    def test_worker_reported_load_counts(self):
        """Load other dispatchers created (via ping) saturates us too."""
        registry = HealthRegistry(["a:1"], default_capacity=4)
        registry.observe_ping("a:1", {"capacity": 4, "jobs_inflight": 4})
        assert registry.try_acquire() is None

    def test_circuit_breaker_quarantines_and_readmits(self):
        registry = HealthRegistry(["a:1"], failure_threshold=3)
        assert not registry.record_failure("a:1")
        assert not registry.record_failure("a:1")
        assert registry.record_failure("a:1")  # third strike trips it
        assert registry.quarantined_endpoints() == ["a:1"]
        assert registry.try_acquire() is None
        # A successful probe readmits immediately.
        registry.observe_ping("a:1", {"capacity": 2, "jobs_inflight": 0})
        assert registry.quarantined_endpoints() == []
        assert registry.snapshot()["a:1"]["readmissions"] == 1
        assert registry.try_acquire() == "a:1"

    def test_success_resets_the_failure_count(self):
        registry = HealthRegistry(["a:1"], failure_threshold=2)
        registry.record_failure("a:1")
        registry.record_success("a:1", 0.1)
        registry.record_failure("a:1")
        assert registry.quarantined_endpoints() == []

    def test_latency_breaks_load_ties(self):
        registry = HealthRegistry(["slow:1", "fast:1"], default_capacity=2)
        registry.record_success("slow:1", 2.0)
        registry.record_success("fast:1", 0.1)
        assert registry.try_acquire() == "fast:1"

    def test_round_robin_policy_is_the_legacy_rotation(self):
        registry = HealthRegistry(["a:1", "b:1"], default_capacity=2,
                                  policy="round_robin", failure_threshold=1)
        assert registry.try_acquire() == "a:1"
        assert registry.try_acquire() == "b:1"
        assert registry.try_acquire() == "a:1"
        # The baseline never quarantines — failures keep the box in rotation.
        registry.record_failure("b:1")
        assert registry.quarantined_endpoints() == []

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            HealthRegistry(["a:1"], policy="coin-flip")


# ---------------------------------------------------------------------------
class TestWorkerServerLoad:
    def test_ping_reports_inflight_jobs(self, squeezenet):
        """The server reports currently-running work, not just totals."""
        release = threading.Event()

        class _Stalling:
            name = "stall-test"

            def __init__(self):
                pass

            def optimise(self, graph, model_name=""):
                release.wait(timeout=30)
                from repro.search.greedy import TASOOptimizer
                return TASOOptimizer(max_iterations=1).optimise(
                    graph, model_name)

        from repro.service import register_optimiser
        register_optimiser("stall-test", _Stalling, {},
                           "inflight probe", replace=True)
        with WorkerServer(num_workers=2) as server:
            request = JobRequest(graph=squeezenet, optimiser="stall-test")
            worker = threading.Thread(
                target=lambda: RemoteWorkerClient(server.endpoint).optimise(
                    request),
                daemon=True)
            worker.start()
            try:
                deadline = time.monotonic() + 10
                info = {}
                while time.monotonic() < deadline:
                    with RemoteWorkerClient(server.endpoint) as client:
                        info = client.ping()
                    if info.get("jobs_inflight", 0) >= 1:
                        break
                    time.sleep(0.05)
                assert info["jobs_inflight"] >= 1
                assert info["capacity"] == 2
            finally:
                release.set()
                worker.join(timeout=30)
            with RemoteWorkerClient(server.endpoint) as client:
                drained = client.ping()
            assert drained["jobs_inflight"] == 0
            assert drained["jobs_served"] == 1


# ---------------------------------------------------------------------------
class TestHealthAwareDispatch:
    def test_routes_around_a_dead_endpoint(self, squeezenet):
        """One dead box in the fleet: every job completes, none fail."""
        with WorkerServer(num_workers=2) as server:
            with OptimisationService(
                    num_workers=4,
                    remote_endpoints=["127.0.0.1:1", server.endpoint],
                    ) as service:
                for _ in range(3):  # drive the dead box to quarantine
                    service.probe_workers()
                health = service.stats()["pool"]["endpoints"]
                assert health["127.0.0.1:1"]["quarantined"]
                assert not health[server.endpoint]["quarantined"]
                ids = [service.submit(squeezenet, "taso", TASO_FAST,
                                      model_name=f"m{i}", use_cache=False)
                       for i in range(4)]
                results = service.gather(ids, timeout=120)
                stats = service.stats()["pool"]
        assert len(results) == 4  # gather raised nothing: zero job failures
        # Quarantined endpoints get no traffic, so no dispatch-time
        # fallbacks are paid either.
        assert stats["remote_fallbacks"] == 0
        assert stats["dispatched_remote"] >= 1
        assert stats["endpoints"]["127.0.0.1:1"]["inflight"] == 0

    def test_healed_endpoint_is_readmitted(self, squeezenet):
        """Quarantine → worker restarts → probe readmits → traffic returns."""
        server = WorkerServer(num_workers=2).start()
        endpoint = server.endpoint
        _, port = parse_endpoint(endpoint)
        with OptimisationService(num_workers=2,
                                 remote_endpoints=[endpoint]) as service:
            assert service.probe_workers() == {endpoint: True}
            server.stop()
            for _ in range(3):
                service.probe_workers()
            assert service.stats()["pool"]["endpoints"][endpoint]["quarantined"]

            # While quarantined, jobs run locally without failing.
            local = service.optimise(squeezenet, "taso", TASO_FAST,
                                     use_cache=False, timeout=120)
            assert local.search.model == "squeezenet"
            assert service.stats()["pool"]["remote_fallbacks"] == 0

            # The box comes back on the same port; one probe readmits it.
            revived = WorkerServer(port=port, num_workers=2).start()
            try:
                assert service.probe_workers() == {endpoint: True}
                health = service.stats()["pool"]["endpoints"][endpoint]
                assert not health["quarantined"]
                assert health["readmissions"] == 1
                remote = service.optimise(squeezenet, "taso", TASO_FAST,
                                          use_cache=False, timeout=120)
                assert remote.search.model == "squeezenet"
                assert service.stats()["pool"]["dispatched_remote"] >= 1
            finally:
                revived.stop()

    def test_round_robin_router_still_works(self, squeezenet):
        """The benchmark baseline path stays functional."""
        with WorkerServer(num_workers=2) as server:
            with OptimisationService(num_workers=2,
                                     remote_endpoints=[server.endpoint],
                                     router="round_robin") as service:
                result = service.optimise(squeezenet, "taso", TASO_FAST,
                                          use_cache=False, timeout=120)
                stats = service.stats()["pool"]
        assert result.search.model == "squeezenet"
        assert stats["dispatched_remote"] == 1
