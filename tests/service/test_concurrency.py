"""Concurrency hardening tests: shared cache directories and in-flight dedup.

The acceptance bar for the distributed-service work:

* two OS processes hammering one cache directory observe **zero lost or
  torn entries** (atomic publishes + advisory locking);
* N concurrent identical submissions execute the underlying search
  **exactly once** (admission-time dedup), with the result fanned out to
  every waiter.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.ir import GraphBuilder
from repro.search.result import SearchResult
from repro.service import (CacheEntry, EvictionPolicy, FingerprintCache,
                           OptimisationService, register_optimiser)
from repro.service.cache import ENTRY_VERSION

# ---------------------------------------------------------------------------
# helpers shared with the worker subprocesses (must be module-level /
# picklable for the spawn start method)

#: Keys both hammer processes write and read — fully overlapping on purpose.
SHARED_KEYS = [f"sharedkey{i:02d}" for i in range(12)]


def _tiny_graph(tag: str = "tiny"):
    builder = GraphBuilder(tag)
    x = builder.input((2, 4), name="x")
    return builder.build([builder.relu(x)])


def _entry(fingerprint: str, graph, model: str) -> CacheEntry:
    result = SearchResult(
        optimiser="taso", model=model,
        initial_graph=graph, final_graph=graph,
        initial_latency_ms=1.0, final_latency_ms=0.5,
        initial_cost_ms=1.0, final_cost_ms=0.5,
        optimisation_time_s=0.01)
    return CacheEntry.from_result(fingerprint, result)


def _hammer_cache(cache_dir: str, worker_id: int, rounds: int) -> None:
    """Subprocess body: interleave puts and gets over the shared key space.

    Raises (→ nonzero exit code) on any lost update: once a key has been
    written, every subsequent read must return a valid entry.
    """
    graph = _tiny_graph(f"worker{worker_id}")
    cache = FingerprintCache(capacity=4, cache_dir=cache_dir)
    for round_no in range(rounds):
        for key in SHARED_KEYS:
            cache.put(_entry(key, graph, model=f"w{worker_id}r{round_no}"))
        # Fresh cache object per round: defeat the memory tier so every
        # read exercises the shared persistent tier.
        reader = FingerprintCache(capacity=4, cache_dir=cache_dir)
        for key in SHARED_KEYS:
            entry = reader.get(key)
            if entry is None:
                raise AssertionError(
                    f"worker {worker_id} lost entry {key} in round {round_no}")
            if entry.fingerprint != key:
                raise AssertionError(
                    f"worker {worker_id} read torn entry for {key}")


def _hammer_bounded(cache_dir: str, worker_id: int, rounds: int) -> None:
    """Subprocess body: concurrent writes under an eviction policy."""
    graph = _tiny_graph(f"bounded{worker_id}")
    cache = FingerprintCache(
        capacity=4, cache_dir=cache_dir,
        policy=EvictionPolicy(max_entries=6))
    for round_no in range(rounds):
        for key in SHARED_KEYS:
            cache.put(_entry(key, graph, model=f"w{worker_id}r{round_no}"))


def _spawn(target, *args) -> multiprocessing.Process:
    # fork (not spawn): the child must run functions defined in this test
    # module, which is not importable by name under pytest's rootdir mode.
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=target, args=args)
    proc.start()
    return proc


# ---------------------------------------------------------------------------
class TestSharedCacheDirectory:
    def test_two_processes_no_lost_or_torn_entries(self, tmp_path):
        """The headline stress test: two processes, one directory."""
        procs = [_spawn(_hammer_cache, str(tmp_path), worker_id, 5)
                 for worker_id in (1, 2)]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0, \
                f"hammer process failed (exit {proc.exitcode})"
        # Every shared key survived, every file is a complete document.
        files = sorted(tmp_path.glob("*.json"))
        assert {p.stem for p in files} == set(SHARED_KEYS)
        for path in files:
            data = json.loads(path.read_text())  # raises on a torn write
            assert data["entry_version"] == ENTRY_VERSION
            CacheEntry.from_dict(data)
        # Atomic publishes leave no temp litter behind.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_concurrent_eviction_keeps_directory_bounded(self, tmp_path):
        procs = [_spawn(_hammer_bounded, str(tmp_path), worker_id, 4)
                 for worker_id in (1, 2)]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        files = sorted(tmp_path.glob("*.json"))
        assert 0 < len(files) <= 6
        for path in files:  # survivors are intact documents
            CacheEntry.from_dict(json.loads(path.read_text()))

    def test_lock_file_is_not_mistaken_for_an_entry(self, tmp_path):
        cache = FingerprintCache(cache_dir=tmp_path,
                                 policy=EvictionPolicy(max_entries=1))
        cache.put(_entry("entryone", _tiny_graph(), "m"))
        assert (tmp_path / ".lock").exists()
        assert cache.persistent_usage()["entries"] == 1


# ---------------------------------------------------------------------------
class TestEvictionPolicy:
    def test_lru_eviction_prefers_unaccessed_entries(self, tmp_path):
        """Reads refresh the access stamp — the satellite fix."""
        graph = _tiny_graph()
        cache = FingerprintCache(capacity=1, cache_dir=tmp_path,
                                 policy=EvictionPolicy(max_entries=2))
        cache.put(_entry("older", graph, "a"))
        cache.put(_entry("newer", graph, "b"))
        # Backdate both, then *access* only the older one.
        past = time.time() - 3600
        for name in ("older", "newer"):
            os.utime(tmp_path / f"{name}.json", (past, past))
        fresh = FingerprintCache(capacity=1, cache_dir=tmp_path,
                                 policy=EvictionPolicy(max_entries=2))
        assert fresh.get("older") is not None  # refreshes the stamp
        cache.put(_entry("third", graph, "c"))  # forces one eviction
        survivors = {p.stem for p in tmp_path.glob("*.json")}
        assert survivors == {"older", "third"}, \
            "LRU should evict the never-accessed entry, not the accessed one"

    def test_max_bytes_bound(self, tmp_path):
        graph = _tiny_graph()
        cache = FingerprintCache(cache_dir=tmp_path)
        cache.put(_entry("sizer", graph, "m"))
        entry_bytes = (tmp_path / "sizer.json").stat().st_size
        bounded = FingerprintCache(
            cache_dir=tmp_path,
            policy=EvictionPolicy(max_bytes=int(entry_bytes * 2.5)))
        for name in ("aa", "bb", "cc", "dd"):
            bounded.put(_entry(name, graph, "m"))
            time.sleep(0.01)  # distinct mtimes for deterministic LRU order
        usage = bounded.persistent_usage()
        assert usage["bytes"] <= int(entry_bytes * 2.5)
        assert bounded.stats.disk_evictions >= 2

    def test_ttl_expires_idle_entries(self, tmp_path):
        graph = _tiny_graph()
        cache = FingerprintCache(cache_dir=tmp_path,
                                 policy=EvictionPolicy(ttl_s=10.0))
        cache.put(_entry("stale", graph, "m"))
        path = tmp_path / "stale.json"
        past = time.time() - 60
        os.utime(path, (past, past))
        fresh = FingerprintCache(cache_dir=tmp_path,
                                 policy=EvictionPolicy(ttl_s=10.0))
        assert fresh.get("stale") is None
        assert not path.exists()
        assert fresh.stats.disk_expirations == 1

    def test_prune_persistent_reports_work(self, tmp_path):
        graph = _tiny_graph()
        unbounded = FingerprintCache(cache_dir=tmp_path)
        for i in range(5):
            unbounded.put(_entry(f"prune{i}", graph, "m"))
            time.sleep(0.01)
        past = time.time() - 3600
        os.utime(tmp_path / "prune0.json", (past, past))
        cache = FingerprintCache(
            cache_dir=tmp_path,
            policy=EvictionPolicy(max_entries=2, ttl_s=600.0))
        removed = cache.prune_persistent()
        assert removed == {"expired": 1, "evicted": 2}
        assert cache.persistent_usage()["entries"] == 2

    def test_unknown_entry_version_is_a_miss(self, tmp_path):
        graph = _tiny_graph()
        cache = FingerprintCache(cache_dir=tmp_path)
        cache.put(_entry("versioned", graph, "m"))
        path = tmp_path / "versioned.json"
        data = json.loads(path.read_text())
        data["entry_version"] = ENTRY_VERSION + 99
        path.write_text(json.dumps(data))
        fresh = FingerprintCache(cache_dir=tmp_path)
        assert fresh.get("versioned") is None

    def test_version1_entries_remain_readable(self, tmp_path):
        """Forward migration: pre-hardening caches stay warm."""
        graph = _tiny_graph()
        cache = FingerprintCache(cache_dir=tmp_path)
        cache.put(_entry("legacy", graph, "m"))
        path = tmp_path / "legacy.json"
        data = json.loads(path.read_text())
        data["entry_version"] = 1
        del data["created_at"]
        path.write_text(json.dumps(data))
        fresh = FingerprintCache(cache_dir=tmp_path)
        loaded = fresh.get("legacy")
        assert loaded is not None
        assert loaded.created_at == 0.0


# ---------------------------------------------------------------------------
#: Executions of the counting optimiser (index 0), guarded by its lock.
_EXECUTIONS = [0]
_EXECUTIONS_LOCK = threading.Lock()


class _CountingOptimizer:
    """Deliberately slow optimiser that counts how many times it ran."""

    name = "counting-test"

    def __init__(self, delay_s: float = 0.3):
        self.delay_s = delay_s

    def optimise(self, graph, model_name: str = "") -> SearchResult:
        with _EXECUTIONS_LOCK:
            _EXECUTIONS[0] += 1
        time.sleep(self.delay_s)
        return SearchResult(
            optimiser=self.name, model=model_name or graph.name,
            initial_graph=graph, final_graph=graph,
            initial_latency_ms=1.0, final_latency_ms=0.5,
            initial_cost_ms=1.0, final_cost_ms=0.5,
            optimisation_time_s=self.delay_s)


class _ExplodingOptimizer:
    name = "exploding-test"

    def __init__(self, delay_s: float = 0.2):
        self.delay_s = delay_s

    def optimise(self, graph, model_name: str = ""):
        time.sleep(self.delay_s)
        raise RuntimeError("search exploded for every waiter")


@pytest.fixture()
def counting_optimiser():
    register_optimiser("counting-test", _CountingOptimizer,
                       {"delay_s": 0.3}, "dedup test probe", replace=True)
    with _EXECUTIONS_LOCK:
        _EXECUTIONS[0] = 0
    return "counting-test"


@pytest.fixture()
def exploding_optimiser():
    register_optimiser("exploding-test", _ExplodingOptimizer,
                       {"delay_s": 0.2}, "dedup failure probe", replace=True)
    return "exploding-test"


class TestInflightDedup:
    def test_n_concurrent_identical_submissions_run_once(
            self, mlp_graph, counting_optimiser):
        """The headline dedup test: 10 submissions, exactly 1 execution."""
        n = 10
        barrier = threading.Barrier(n)
        job_ids: list = [None] * n
        with OptimisationService(num_workers=4) as service:
            def admit(slot: int) -> None:
                barrier.wait()  # maximal admission contention
                job_ids[slot] = service.submit(
                    mlp_graph, counting_optimiser, model_name=f"caller{slot}")

            threads = [threading.Thread(target=admit, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            results = service.gather(job_ids, timeout=30)
            stats = service.stats()

        with _EXECUTIONS_LOCK:
            assert _EXECUTIONS[0] == 1, \
                f"dedup failed: search ran {_EXECUTIONS[0]} times for {n} waiters"
        assert sum(1 for r in results if not r.coalesced and not r.cache_hit) == 1
        assert sum(1 for r in results if r.coalesced) == n - 1
        assert stats["dedup"]["coalesced"] == n - 1
        assert stats["dedup"]["inflight"] == 0  # table drained
        # Every waiter got the shared outcome under its own label.
        assert {r.search.model for r in results} == \
            {f"caller{i}" for i in range(n)}
        hashes = {r.graph.structural_hash() for r in results}
        assert len(hashes) == 1

    def test_next_submission_after_completion_hits_the_cache(
            self, mlp_graph, counting_optimiser):
        with OptimisationService(num_workers=2) as service:
            first = service.optimise(mlp_graph, counting_optimiser)
            warm = service.optimise(mlp_graph, counting_optimiser)
        assert not first.cache_hit and not first.coalesced
        assert warm.cache_hit and not warm.coalesced
        with _EXECUTIONS_LOCK:
            assert _EXECUTIONS[0] == 1

    def test_failure_fans_out_to_every_waiter(self, mlp_graph,
                                              exploding_optimiser):
        with OptimisationService(num_workers=2) as service:
            primary = service.submit(mlp_graph, exploding_optimiser)
            follower = service.submit(mlp_graph, exploding_optimiser)
            for job_id in (primary, follower):
                with pytest.raises(RuntimeError, match="every waiter"):
                    service.result(job_id, timeout=30)
            stats = service.stats()
        assert stats["dedup"]["coalesced"] == 1
        assert stats["dedup"]["inflight"] == 0
        assert stats["jobs"]["failed"] == 2

    def test_failed_fingerprint_can_be_resubmitted(self, mlp_graph,
                                                   exploding_optimiser):
        """A failure clears the in-flight slot instead of poisoning it."""
        with OptimisationService(num_workers=2) as service:
            job_id = service.submit(mlp_graph, exploding_optimiser)
            with pytest.raises(RuntimeError):
                service.result(job_id, timeout=30)
            retry = service.submit(mlp_graph, exploding_optimiser)
            assert retry != job_id
            with pytest.raises(RuntimeError):
                service.result(retry, timeout=30)
        assert service.stats()["dedup"]["coalesced"] == 0

    def test_use_cache_false_opts_out_of_dedup(self, mlp_graph,
                                               counting_optimiser):
        with OptimisationService(num_workers=2) as service:
            ids = [service.submit(mlp_graph, counting_optimiser,
                                  use_cache=False) for _ in range(2)]
            results = service.gather(ids, timeout=30)
        assert all(not r.coalesced for r in results)
        with _EXECUTIONS_LOCK:
            assert _EXECUTIONS[0] == 2

    def test_different_configs_do_not_coalesce(self, mlp_graph,
                                               counting_optimiser):
        with OptimisationService(num_workers=2) as service:
            a = service.submit(mlp_graph, counting_optimiser,
                               {"delay_s": 0.3})
            b = service.submit(mlp_graph, counting_optimiser,
                               {"delay_s": 0.31})
            service.gather([a, b], timeout=30)
        with _EXECUTIONS_LOCK:
            assert _EXECUTIONS[0] == 2
