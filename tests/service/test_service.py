"""Tests for the optimisation service: registry dispatch, fingerprint cache
accounting, scheduler semantics, batch ordering and parallel/serial
equivalence."""

import time

import pytest

from repro.experiments import build_small_model
from repro.models import MODEL_REGISTRY
from repro.search import available_optimisers, get_optimiser
from repro.service import (CacheEntry, FingerprintCache, JobScheduler,
                           JobState, OptimisationService, QueueFullError,
                           UnknownJobError, create_optimiser, default_config,
                           list_optimisers, register_optimiser,
                           request_fingerprint)
from repro.service.worker import JobRequest, execute_request

TASO_FAST = {"max_iterations": 10}


@pytest.fixture(scope="module")
def squeezenet():
    return build_small_model("squeezenet")


# ---------------------------------------------------------------------------
class TestRegistry:
    def test_every_search_optimiser_is_registered(self):
        assert {"taso", "greedy", "tensat", "pet", "random",
                "xrlflow"} <= set(list_optimisers())

    def test_create_applies_defaults_and_overrides(self):
        taso = create_optimiser("taso")
        assert taso.max_iterations == 100
        assert create_optimiser("taso", max_iterations=7).max_iterations == 7
        # Defaults are copies: mutating them must not leak into the registry.
        default_config("taso")["max_iterations"] = 1
        assert default_config("taso")["max_iterations"] == 100

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="taso"):
            create_optimiser("does-not-exist")

    def test_duplicate_registration_guard(self):
        with pytest.raises(ValueError):
            register_optimiser("taso", lambda: None)
        register_optimiser("taso", type(create_optimiser("taso")),
                           default_config("taso"), replace=True)

    def test_search_package_hookup(self):
        assert available_optimisers() == list_optimisers()
        assert get_optimiser("greedy", max_iterations=3).max_iterations == 3


# ---------------------------------------------------------------------------
class TestFingerprint:
    def test_identical_requests_share_a_fingerprint(self, squeezenet):
        rebuilt = build_small_model("squeezenet")
        assert request_fingerprint(squeezenet, "taso", {"max_iterations": 5}) \
            == request_fingerprint(rebuilt, "taso", {"max_iterations": 5})

    def test_config_key_order_is_canonical(self, squeezenet):
        a = request_fingerprint(squeezenet, "taso", {"alpha": 1.1, "max_iterations": 5})
        b = request_fingerprint(squeezenet, "taso", {"max_iterations": 5, "alpha": 1.1})
        assert a == b

    def test_fingerprint_varies_with_inputs(self, squeezenet, mlp_graph):
        base = request_fingerprint(squeezenet, "taso", TASO_FAST)
        assert request_fingerprint(squeezenet, "tensat", TASO_FAST) != base
        assert request_fingerprint(squeezenet, "taso", {"max_iterations": 11}) != base
        assert request_fingerprint(mlp_graph, "taso", TASO_FAST) != base


# ---------------------------------------------------------------------------
def _entry_for(graph, tag, fingerprint=None):
    request = JobRequest(graph=graph, optimiser="taso",
                         config={"max_iterations": 3}, model_name=tag)
    result = execute_request(request)
    return CacheEntry.from_result(fingerprint or request.fingerprint(),
                                  result.search)


class TestFingerprintCache:
    def test_hit_miss_accounting(self, mlp_graph):
        cache = FingerprintCache(capacity=4)
        entry = _entry_for(mlp_graph, "mlp")
        assert cache.get(entry.fingerprint) is None
        cache.put(entry)
        hit = cache.get(entry.fingerprint)
        assert hit is entry
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self, mlp_graph, conv_graph, fire_graph):
        cache = FingerprintCache(capacity=2)
        entries = [_entry_for(g, t) for g, t in
                   [(mlp_graph, "mlp"), (conv_graph, "conv"),
                    (fire_graph, "fire")]]
        for entry in entries:
            cache.put(entry)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(entries[0].fingerprint) is None  # oldest evicted
        assert cache.get(entries[2].fingerprint) is not None

    def test_persistent_tier_survives_the_process(self, tmp_path, mlp_graph):
        entry = _entry_for(mlp_graph, "mlp")
        FingerprintCache(capacity=4, cache_dir=tmp_path).put(entry)
        fresh = FingerprintCache(capacity=4, cache_dir=tmp_path)
        loaded = fresh.get(entry.fingerprint)
        assert loaded is not None
        assert fresh.stats.persistent_hits == 1
        assert loaded.final_graph.structural_hash() \
            == entry.final_graph.structural_hash()
        assert loaded.applied_rules == entry.applied_rules

    def test_corrupt_persistent_entry_is_a_miss(self, tmp_path, mlp_graph):
        entry = _entry_for(mlp_graph, "mlp")
        (tmp_path / f"{entry.fingerprint}.json").write_text("{not json")
        cache = FingerprintCache(cache_dir=tmp_path)
        assert cache.get(entry.fingerprint) is None
        assert cache.stats.misses == 1

    def test_rehydrated_result_reports_cache_hit(self, mlp_graph):
        entry = _entry_for(mlp_graph, "mlp")
        result = entry.to_result(mlp_graph, retrieval_time_s=0.001)
        assert result.stats["cache_hit"] == 1.0
        assert result.optimisation_time_s > 0
        assert result.initial_graph is mlp_graph


# ---------------------------------------------------------------------------
class TestJobScheduler:
    def test_submit_poll_result_lifecycle(self):
        with JobScheduler(num_workers=2) as scheduler:
            job_id = scheduler.submit(lambda x: x * 2, 21, label="double")
            assert scheduler.result(job_id) == 42
            assert scheduler.poll(job_id) is JobState.SUCCEEDED
            record = scheduler.record(job_id)
            assert record.label == "double"
            assert record.queue_time_s >= 0
            assert record.run_time_s >= 0

    def test_failure_is_reported_and_reraised(self):
        def boom():
            raise RuntimeError("search exploded")

        with JobScheduler(num_workers=1) as scheduler:
            job_id = scheduler.submit(boom)
            with pytest.raises(RuntimeError, match="search exploded"):
                scheduler.result(job_id)
            assert scheduler.poll(job_id) is JobState.FAILED
            assert "search exploded" in scheduler.record(job_id).error

    def test_bounded_queue_rejects_overload(self):
        import threading
        release = threading.Event()
        with JobScheduler(num_workers=1, max_pending=2) as scheduler:
            ids = [scheduler.submit(release.wait) for _ in range(2)]
            with pytest.raises(QueueFullError):
                scheduler.submit(release.wait)
            release.set()
            assert scheduler.wait_all(timeout=10)
            # Capacity frees up once jobs finish.
            done_id = scheduler.submit(lambda: "ok")
            assert scheduler.result(done_id) == "ok"
            assert all(scheduler.poll(i) is JobState.SUCCEEDED for i in ids)

    def test_unknown_job_id(self):
        with JobScheduler(num_workers=1) as scheduler:
            with pytest.raises(UnknownJobError):
                scheduler.poll(999)


# ---------------------------------------------------------------------------
class TestOptimisationService:
    def test_cache_hit_is_10x_faster_and_identical(self, squeezenet):
        with OptimisationService(num_workers=2) as service:
            started = time.perf_counter()
            cold = service.optimise(squeezenet, "taso",
                                    {"max_iterations": 25},
                                    model_name="squeezenet")
            cold_s = time.perf_counter() - started
            started = time.perf_counter()
            warm = service.optimise(squeezenet, "taso",
                                    {"max_iterations": 25},
                                    model_name="squeezenet")
            warm_s = time.perf_counter() - started
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.graph.structural_hash() == cold.graph.structural_hash()
        assert warm.search.applied_rules == cold.search.applied_rules
        assert cold_s >= 10.0 * warm_s, \
            f"warm hit not 10x faster: cold={cold_s:.4f}s warm={warm_s:.4f}s"

    def test_cache_accounting_miss_then_hit(self, mlp_graph):
        with OptimisationService(num_workers=1) as service:
            service.optimise(mlp_graph, "taso", TASO_FAST)
            service.optimise(mlp_graph, "taso", TASO_FAST)
            # Different config digests are different cache slots.
            service.optimise(mlp_graph, "taso", {"max_iterations": 4})
            stats = service.stats()
        assert stats["cache"]["misses"] == 2
        assert stats["cache"]["memory_hits"] == 1
        assert stats["cache"]["puts"] == 2
        assert stats["jobs"]["succeeded"] == 3

    def test_use_cache_false_bypasses_the_cache(self, mlp_graph):
        with OptimisationService(num_workers=1) as service:
            first = service.optimise(mlp_graph, "taso", TASO_FAST,
                                     use_cache=False)
            second = service.optimise(mlp_graph, "taso", TASO_FAST,
                                      use_cache=False)
            stats = service.stats()
        assert not first.cache_hit and not second.cache_hit
        assert stats["cache"]["misses"] == 0
        assert stats["cache"]["memory_hits"] == 0
        assert len(service.cache) == 0

    def test_explicit_defaults_share_the_cache_slot(self, mlp_graph):
        # Spelling the registry defaults out must hit the entry produced by
        # omitting them (fingerprints use the effective config).
        with OptimisationService(num_workers=1) as service:
            cold = service.optimise(mlp_graph, "taso")
            warm = service.optimise(mlp_graph, "taso", default_config("taso"))
        assert not cold.cache_hit
        assert warm.cache_hit
        assert cold.fingerprint == warm.fingerprint

    def test_finished_jobs_are_retired_beyond_max_history(self, mlp_graph):
        with JobScheduler(num_workers=1, max_history=3) as scheduler:
            job_ids = [scheduler.submit(lambda i=i: i, label=f"j{i}")
                       for i in range(6)]
            assert scheduler.wait_all(timeout=10)
            assert scheduler.result(job_ids[-1]) == 5
            with pytest.raises(UnknownJobError):
                scheduler.poll(job_ids[0])  # oldest terminal job retired
            assert scheduler.poll(job_ids[-1]) is JobState.SUCCEEDED

    def test_cache_hit_keeps_the_callers_model_name(self, mlp_graph):
        with OptimisationService(num_workers=1) as service:
            service.optimise(mlp_graph, "taso", TASO_FAST,
                             model_name="original")
            warm = service.optimise(mlp_graph, "taso", TASO_FAST,
                                    model_name="alias")
        assert warm.cache_hit
        assert warm.search.model == "alias"

    def test_failed_batch_admission_cancels_pending_jobs(self, mlp_graph):
        import threading
        release = threading.Event()
        with OptimisationService(num_workers=1, max_pending=2) as service:
            blocker = service.scheduler.submit(release.wait, label="blocker")
            items = [(mlp_graph, "a"), (mlp_graph, "b"), (mlp_graph, "c")]
            with pytest.raises(QueueFullError):
                service.submit_batch(items, "taso", TASO_FAST,
                                     use_cache=False)
            release.set()
            service.scheduler.result(blocker)
            counts = service.scheduler.counts()
        # The one admitted (still pending) job was cancelled on rollback.
        assert counts["cancelled"] == 1
        assert counts["succeeded"] == 1  # just the blocker

    def test_batch_results_follow_submission_order(self):
        names = ["vit", "squeezenet", "bert", "resnet18"]
        graphs = [(build_small_model(name), name) for name in names]
        with OptimisationService(num_workers=4) as service:
            job_ids = service.submit_batch(graphs, "taso", TASO_FAST)
            assert job_ids == sorted(job_ids)
            results = service.gather(job_ids)
        assert [r.search.model for r in results] == names
        assert all(r.job_id == job_id
                   for r, job_id in zip(results, job_ids))

    def test_parallel_matches_serial_over_model_registry(self):
        names = sorted(MODEL_REGISTRY)
        graphs = {name: build_small_model(name) for name in names}

        serial = {}
        for name in names:
            optimiser = create_optimiser("taso", **TASO_FAST)
            serial[name] = optimiser.optimise(graphs[name], name)

        with OptimisationService(num_workers=4) as service:
            job_ids = service.submit_batch(
                [(graphs[name], name) for name in names],
                "taso", TASO_FAST, use_cache=False)
            parallel = service.gather(job_ids)

        for name, result in zip(names, parallel):
            assert result.search.final_graph.structural_hash() \
                == serial[name].final_graph.structural_hash(), \
                f"parallel result diverged from serial on {name}"
            assert result.search.final_cost_ms \
                == pytest.approx(serial[name].final_cost_ms)

    def test_process_pool_mode(self, mlp_graph):
        with OptimisationService(num_workers=2, use_processes=True) as service:
            result = service.optimise(mlp_graph, "taso", {"max_iterations": 5})
        thread_opt = create_optimiser("taso", max_iterations=5)
        assert result.search.final_graph.structural_hash() \
            == thread_opt.optimise(mlp_graph).final_graph.structural_hash()

    def test_unknown_optimiser_fails_at_submit(self, mlp_graph):
        with OptimisationService(num_workers=1) as service:
            with pytest.raises(KeyError):
                service.submit(mlp_graph, optimiser="nope")

    def test_failed_job_pollable_and_reraised(self, mlp_graph):
        with OptimisationService(num_workers=1) as service:
            # A config the optimiser constructor rejects fails in the worker.
            job_id = service.submit(mlp_graph, "taso",
                                    {"not_a_real_knob": True})
            with pytest.raises(TypeError):
                service.result(job_id)
            assert service.poll(job_id) is JobState.FAILED

    def test_shared_persistent_cache_between_services(self, tmp_path,
                                                      squeezenet):
        with OptimisationService(num_workers=1,
                                 cache_dir=tmp_path) as service:
            cold = service.optimise(squeezenet, "taso", TASO_FAST)
        with OptimisationService(num_workers=1,
                                 cache_dir=tmp_path) as service:
            warm = service.optimise(squeezenet, "taso", TASO_FAST)
            assert warm.cache_hit
            assert service.cache.stats.persistent_hits == 1
        assert warm.graph.structural_hash() == cold.graph.structural_hash()
