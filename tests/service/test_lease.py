"""Tests for cross-process dedup leases.

The acceptance bar: N simultaneous identical submissions from separate OS
processes run **exactly one** search; killing the lease-holding process
mid-search must not strand the waiters — one of them takes the stale
lease over and completes the search, still exactly once overall.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import uuid

import pytest

from repro.ir import GraphBuilder
from repro.search.result import SearchResult
from repro.service import (LeaseConfig, LeaseManager, OptimisationService,
                           register_optimiser)
from repro.service.lease import (LEASE_SUFFIX, leases_supported,
                                 refresh_lease, release_lease, try_acquire,
                                 wait_for_result)
from repro.service.worker import JobRequest

pytestmark = pytest.mark.skipif(not leases_supported(),
                                reason="platform lacks flock leases")

#: Fast lease timings for tests (real defaults are seconds, not tenths).
FAST = LeaseConfig(heartbeat_s=0.05, stale_after_s=0.6, poll_interval_s=0.02,
                   max_wait_s=30.0)


def _tiny_graph(tag: str = "tiny"):
    builder = GraphBuilder(tag)
    x = builder.input((2, 4), name="x")
    return builder.build([builder.relu(x)])


# ---------------------------------------------------------------------------
# module-level bodies for fork()ed children


def _hold_lease_and_hang(cache_dir: str, fingerprint: str,
                         acquired: "multiprocessing.Event") -> None:
    """Child body: win the lease, signal, then hang (simulating a stuck or
    about-to-be-killed searcher).  Never heartbeats."""
    token = try_acquire(cache_dir, fingerprint, stale_after_s=0.6)
    assert token is not None
    acquired.set()
    time.sleep(300)


class _TouchingOptimizer:
    """Optimiser that records each execution as a unique file in a dir."""

    name = "touch-test"

    def __init__(self, touch_dir: str = "", delay_s: float = 0.5):
        self.touch_dir = touch_dir
        self.delay_s = delay_s

    def optimise(self, graph, model_name: str = "") -> SearchResult:
        path = os.path.join(self.touch_dir, f"exec-{uuid.uuid4().hex}")
        with open(path, "w") as handle:
            handle.write(str(os.getpid()))
        time.sleep(self.delay_s)
        return SearchResult(
            optimiser=self.name, model=model_name or graph.name,
            initial_graph=graph, final_graph=graph,
            initial_latency_ms=1.0, final_latency_ms=0.5,
            initial_cost_ms=1.0, final_cost_ms=0.5,
            optimisation_time_s=self.delay_s)


def _submit_identical(cache_dir: str, touch_dir: str, barrier,
                      results_queue) -> None:
    """Child body: one service process submitting the shared request."""
    register_optimiser("touch-test", _TouchingOptimizer, {},
                       "cross-process dedup probe", replace=True)
    graph = _tiny_graph("shared")
    with OptimisationService(num_workers=2, cache_dir=cache_dir,
                             lease_config=FAST) as service:
        barrier.wait(timeout=30)
        result = service.optimise(
            graph, "touch-test",
            {"touch_dir": touch_dir, "delay_s": 0.5}, timeout=60)
    results_queue.put((os.getpid(), result.graph.structural_hash()))


def _spawn(target, *args) -> multiprocessing.Process:
    # fork (not spawn): children must run functions defined in this test
    # module, which is not importable by name under pytest's rootdir mode.
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=target, args=args)
    proc.start()
    return proc


# ---------------------------------------------------------------------------
class TestLeaseProtocol:
    def test_acquire_is_exclusive_until_released(self, tmp_path):
        token = try_acquire(tmp_path, "fp1", stale_after_s=60)
        assert token is not None
        assert try_acquire(tmp_path, "fp1", stale_after_s=60) is None
        release_lease(tmp_path, "fp1", token)
        assert not (tmp_path / f"fp1{LEASE_SUFFIX}").exists()
        assert try_acquire(tmp_path, "fp1", stale_after_s=60) is not None

    def test_release_requires_the_owner_token(self, tmp_path):
        token = try_acquire(tmp_path, "fp1", stale_after_s=60)
        release_lease(tmp_path, "fp1", "someone-elses-token")
        assert (tmp_path / f"fp1{LEASE_SUFFIX}").exists()
        release_lease(tmp_path, "fp1", token)
        assert not (tmp_path / f"fp1{LEASE_SUFFIX}").exists()

    def test_stale_lease_is_taken_over(self, tmp_path):
        token = try_acquire(tmp_path, "fp1", stale_after_s=60)
        assert token is not None
        path = tmp_path / f"fp1{LEASE_SUFFIX}"
        past = time.time() - 120
        os.utime(path, (past, past))
        newcomer = try_acquire(tmp_path, "fp1", stale_after_s=60)
        assert newcomer is not None and newcomer != token
        # The usurped owner's heartbeat now fails — it has lost the lease.
        assert refresh_lease(tmp_path, "fp1", token) is False
        assert refresh_lease(tmp_path, "fp1", newcomer) is True

    def test_heartbeat_keeps_the_lease_fresh(self, tmp_path):
        manager = LeaseManager(tmp_path, config=FAST)
        try:
            token = manager.acquire("fp1")
            assert token is not None
            path = tmp_path / f"fp1{LEASE_SUFFIX}"
            past = time.time() - 120
            os.utime(path, (past, past))
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if time.time() - path.stat().st_mtime < 60:
                    break
                time.sleep(0.02)
            # The heartbeat thread refreshed the backdated stamp, so the
            # lease is not stale and cannot be taken over.
            assert time.time() - path.stat().st_mtime < 60
            assert try_acquire(tmp_path, "fp1",
                               stale_after_s=FAST.stale_after_s) is None
        finally:
            manager.close()
        assert manager.held() == {}
        assert not (tmp_path / f"fp1{LEASE_SUFFIX}").exists()


# ---------------------------------------------------------------------------
class TestLeaseTakeover:
    def test_killed_holder_is_taken_over_exactly_once(self, tmp_path):
        """The headline test: SIGKILL the lease holder mid-search; a
        waiter takes over and completes exactly one search."""
        register_optimiser("touch-test", _TouchingOptimizer, {},
                           "takeover probe", replace=True)
        cache_dir = tmp_path / "cache"
        touch_dir = tmp_path / "touches"
        cache_dir.mkdir()
        touch_dir.mkdir()

        graph = _tiny_graph("victim")
        request = JobRequest(graph=graph, optimiser="touch-test",
                             config={"touch_dir": str(touch_dir),
                                     "delay_s": 0.1})
        fingerprint = request.fingerprint()

        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        holder = _spawn(_hold_lease_and_hang, str(cache_dir), fingerprint,
                        acquired)
        try:
            assert acquired.wait(timeout=30)
            started = time.monotonic()
            os.kill(holder.pid, signal.SIGKILL)  # dies without releasing
            outcome = wait_for_result(
                request, fingerprint, str(cache_dir),
                heartbeat_s=FAST.heartbeat_s,
                stale_after_s=FAST.stale_after_s,
                poll_interval_s=FAST.poll_interval_s, max_wait_s=30.0)
            elapsed = time.monotonic() - started
        finally:
            holder.join(timeout=10)
        # The waiter ran the search itself (not served from cache) after
        # the dead process's lease went stale — and only once.
        assert not outcome.cache_hit
        assert len(list(touch_dir.iterdir())) == 1
        assert elapsed >= FAST.stale_after_s  # honoured the staleness horizon
        # The takeover published the result, so the next waiter needs no
        # search at all.
        warm = wait_for_result(
            request, fingerprint, str(cache_dir),
            stale_after_s=FAST.stale_after_s,
            poll_interval_s=FAST.poll_interval_s, max_wait_s=30.0)
        assert warm.cache_hit
        assert warm.search.stats.get("cross_process_dedup") == 1.0
        assert len(list(touch_dir.iterdir())) == 1

    def test_service_waiter_survives_holder_death(self, tmp_path):
        """End-to-end: the *service* turns a lost lease race into a waiter
        job that takes over when the holder dies."""
        register_optimiser("touch-test", _TouchingOptimizer, {},
                           "takeover probe", replace=True)
        cache_dir = tmp_path / "cache"
        touch_dir = tmp_path / "touches"
        cache_dir.mkdir()
        touch_dir.mkdir()
        graph = _tiny_graph("victim")
        config = {"touch_dir": str(touch_dir), "delay_s": 0.1}
        fingerprint = JobRequest(graph=graph, optimiser="touch-test",
                                 config=config).fingerprint()

        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        holder = _spawn(_hold_lease_and_hang, str(cache_dir), fingerprint,
                        acquired)
        try:
            assert acquired.wait(timeout=30)
            with OptimisationService(num_workers=2, cache_dir=cache_dir,
                                     lease_config=FAST) as service:
                job_id = service.submit(graph, "touch-test", config)
                record = service.scheduler.record(job_id)
                assert "(lease-wait)" in record.label
                os.kill(holder.pid, signal.SIGKILL)
                result = service.result(job_id, timeout=60)
        finally:
            holder.join(timeout=10)
        assert not result.cache_hit
        assert len(list(touch_dir.iterdir())) == 1


# ---------------------------------------------------------------------------
class TestCrossProcessDedup:
    def test_simultaneous_processes_search_exactly_once(self, tmp_path):
        """Three service processes, one shared directory, one search."""
        cache_dir = tmp_path / "cache"
        touch_dir = tmp_path / "touches"
        cache_dir.mkdir()
        touch_dir.mkdir()
        n = 3
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(n)
        results = ctx.Queue()
        procs = [_spawn(_submit_identical, str(cache_dir), str(touch_dir),
                        barrier, results) for _ in range(n)]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0, \
                f"submitter failed (exit {proc.exitcode})"
        outcomes = [results.get(timeout=10) for _ in range(n)]
        # Everyone got the same graph; the search body ran exactly once.
        assert len({graph_hash for _, graph_hash in outcomes}) == 1
        assert len(list(touch_dir.iterdir())) == 1
        # No lease litter: winners and takeover paths both release.
        assert list(cache_dir.glob(f"*{LEASE_SUFFIX}")) == []

    def test_rejected_admission_releases_the_lease(self, tmp_path):
        """A QueueFullError must not wedge the fingerprint cluster-wide."""
        import threading

        from repro.service import QueueFullError

        register_optimiser("touch-test", _TouchingOptimizer, {},
                           "lease leak probe", replace=True)
        touch_dir = tmp_path / "touches"
        touch_dir.mkdir()
        blocker = threading.Event()
        graph_a = _tiny_graph("occupant")
        graph_b = _tiny_graph("rejected")
        config = {"touch_dir": str(touch_dir), "delay_s": 0.0}
        with OptimisationService(num_workers=1, max_pending=1,
                                 cache_dir=tmp_path / "cache",
                                 lease_config=FAST) as service:
            # Fill the single admission slot with a job that waits.
            occupant = service.scheduler.submit(blocker.wait, label="hold")
            with pytest.raises(QueueFullError):
                service.submit(graph_b, "touch-test", config)
            # The rejected submission's lease was released, not leaked.
            assert service._leases.held() == {}
            assert list((tmp_path / "cache").glob(f"*{LEASE_SUFFIX}")) == []
            blocker.set()
            service.scheduler.result(occupant, timeout=30)
            # The fingerprint is immediately searchable again.
            retry = service.optimise(graph_b, "touch-test", config,
                                     timeout=30)
        assert not retry.cache_hit
        assert len(list(touch_dir.iterdir())) == 1

    def test_opting_out_runs_private_searches(self, tmp_path):
        register_optimiser("touch-test", _TouchingOptimizer, {},
                           "dedup opt-out probe", replace=True)
        touch_dir = tmp_path / "touches"
        touch_dir.mkdir()
        graph = _tiny_graph()
        config = {"touch_dir": str(touch_dir), "delay_s": 0.0}
        with OptimisationService(num_workers=2, cache_dir=tmp_path / "c",
                                 cross_process_dedup=False,
                                 lease_config=FAST) as service:
            assert service.stats()["dedup"]["cross_process"] is False
            service.optimise(graph, "touch-test", config)
        with OptimisationService(num_workers=2, cache_dir=tmp_path / "c2",
                                 cross_process_dedup=False,
                                 lease_config=FAST) as service:
            service.optimise(graph, "touch-test", config)
        assert len(list(touch_dir.iterdir())) == 2
