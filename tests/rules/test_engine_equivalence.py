"""Equivalence gate for the incremental rewrite engine.

The engine refactor (op-type-indexed matching, lazy candidates, delta cost
evaluation, memoised hashing) must be behaviour-preserving: every assertion
here compares the incremental path against the original eager/full-scan
semantics and requires *exact* equality — costs bit-for-bit, hashes
byte-for-byte, search trajectories step-for-step.
"""

import hashlib
import json
import pickle

import numpy as np
import pytest

from repro.cost import CostModel, E2ESimulator
from repro.experiments import build_small_model
from repro.ir import Graph, OpType
from repro.rules import default_ruleset, eliminate_dead_nodes, full_scan_matching
from repro.rules.base import RewriteRule
from repro.rules.incremental import IncrementalCandidateEngine
from repro.search import GreedyOptimizer, PETOptimizer, TASOOptimizer

MODELS = ["squeezenet", "resnext50", "bert", "vit"]


@pytest.fixture(scope="module", params=MODELS)
def model_graph(request):
    return build_small_model(request.param)


def reference_structural_hash(graph: Graph) -> str:
    """The seed repo's one-shot structural hash (no memoisation, no caches)."""
    order = graph.topological_order()
    relabel = {nid: i for i, nid in enumerate(order)}
    payload = []
    for nid in order:
        node = graph.nodes[nid]
        edges = [(relabel[e.src], e.src_slot, e.dst_slot)
                 for e in graph.in_edges(nid)]
        payload.append((node.op_type.value,
                        sorted((k, str(v)) for k, v in node.attrs.items()),
                        [o.shape.as_list() for o in node.outputs],
                        edges))
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def rewrite_chain(graph, depth=3):
    """The graph plus a few of its rewrite descendants (mutated copies)."""
    ruleset = default_ruleset()
    graphs = [graph]
    current = graph
    for _ in range(depth):
        candidates = ruleset.all_candidates(current)
        if not candidates:
            break
        current = candidates[0].graph
        graphs.append(current)
    return graphs


# ---------------------------------------------------------------------------
# (a) Indexed matching == full-scan matching
# ---------------------------------------------------------------------------

class TestIndexedMatching:
    def test_all_rules_declare_anchors(self):
        for rule in default_ruleset():
            assert rule.anchor_ops, f"{rule.name} has no anchor_ops"

    def test_matches_equal_full_scan(self, model_graph):
        for graph in rewrite_chain(model_graph):
            for rule in default_ruleset():
                indexed = rule.find_matches(graph)
                with full_scan_matching():
                    scanned = rule.find_matches(graph)
                assert indexed == scanned, rule.name

    def test_op_index_consistent_after_rewrites(self, model_graph):
        for graph in rewrite_chain(model_graph):
            expected = {}
            for nid in sorted(graph.nodes):
                expected.setdefault(graph.nodes[nid].op_type, []).append(nid)
            for op in set(expected) | set(graph._nodes_by_op):
                assert graph.nodes_by_op(op) == expected.get(op, [])

    def test_index_survives_serialisation(self, model_graph):
        from repro.ir import graph_from_dict, graph_to_dict
        # Round-trip a *rewritten* graph: after surgery the topological order
        # written to the file is no longer ascending in node id, which is
        # exactly the case where deserialisation must restore id order.
        rewritten = rewrite_chain(model_graph, depth=2)[-1]
        restored = graph_from_dict(graph_to_dict(rewritten))
        assert list(restored.nodes) == sorted(restored.nodes)
        for op in {n.op_type for n in restored.nodes.values()}:
            assert restored.nodes_by_op(op) == sorted(
                nid for nid, n in restored.nodes.items() if n.op_type is op)
        # Indexed and full-scan matching must enumerate identically on the
        # reloaded graph, like on any other graph.
        for rule in default_ruleset():
            indexed = rule.find_matches(restored)
            with full_scan_matching():
                assert rule.find_matches(restored) == indexed, rule.name


# ---------------------------------------------------------------------------
# Structural hash: memoised splice == original one-shot json.dumps
# ---------------------------------------------------------------------------

class TestStructuralHash:
    def test_hash_matches_reference(self, model_graph):
        for graph in rewrite_chain(model_graph):
            assert graph.structural_hash() == reference_structural_hash(graph)

    def test_hash_memo_invalidated_by_mutation(self, model_graph):
        graph = model_graph.copy()
        before = graph.structural_hash()
        assert graph.structural_hash() == before  # memo hit
        sink = graph.sink_nodes()[0]
        graph.add_node(OpType.RELU, [sink])
        after = graph.structural_hash()
        assert after != before
        assert after == reference_structural_hash(graph)


# ---------------------------------------------------------------------------
# (b) Delta cost == full re-estimation, bit for bit
# ---------------------------------------------------------------------------

class TestDeltaCost:
    def test_estimate_delta_equals_full_estimate(self, model_graph):
        cm = CostModel()
        pure = CostModel()  # fresh model whose estimate() never sees caches
        parent = model_graph
        parent_cost = cm.estimate_cached(parent)
        assert parent_cost == pure.estimate(parent)
        for candidate in default_ruleset().all_candidates(parent):
            child = candidate.graph
            delta_cost = cm.estimate_delta(parent, child,
                                           parent_cost=parent_cost)
            assert delta_cost == pure.estimate(child), candidate.rule_name

    def test_estimate_delta_after_every_step_of_a_walk(self, model_graph):
        cm = CostModel()
        pure = CostModel()
        chain = rewrite_chain(model_graph, depth=4)
        for parent, child in zip(chain, chain[1:]):
            parent_cost = cm.estimate_cached(parent)
            assert cm.estimate_delta(parent, child, parent_cost=parent_cost) \
                == pure.estimate(child)

    def test_estimate_delta_without_carried_cache(self, model_graph):
        # A child built outside Graph.copy carries no table; the delta path
        # must seed unchanged nodes from the parent and still agree exactly.
        cm = CostModel()
        parent = model_graph
        cm.estimate_cached(parent)
        candidate = default_ruleset().all_candidates(parent)[0]
        child = candidate.graph
        child._node_caches.clear()
        assert cm.estimate_delta(parent, child) == CostModel().estimate(child)

    def test_pet_cost_model_not_shared_with_taso(self, model_graph):
        taso_cm = CostModel()
        pet_cm = CostModel(ignore_elementwise=True)
        graph = model_graph.copy()
        taso = taso_cm.estimate_cached(graph)
        pet = pet_cm.estimate_cached(graph)
        assert taso == CostModel().estimate(graph)
        assert pet == CostModel(ignore_elementwise=True).estimate(graph)
        assert taso != pet  # distinct cache keys, distinct values

    def test_e2e_latency_memo_matches_fresh_simulator(self, model_graph):
        sim = E2ESimulator()
        for graph in rewrite_chain(model_graph):
            assert sim.latency_ms(graph) == E2ESimulator().latency_ms(graph)
            # memo hit returns the identical value
            assert sim.latency_ms(graph) == sim.latency_ms(graph)


# ---------------------------------------------------------------------------
# Mutation delta recording
# ---------------------------------------------------------------------------

class TestMutationDelta:
    def test_copy_records_surgery(self, model_graph):
        candidate = default_ruleset().all_candidates(model_graph)[0]
        delta = candidate.graph.mutation_delta()
        assert delta is not None and not delta.is_empty
        for nid in delta.added:
            assert nid in candidate.graph.nodes
            assert nid not in model_graph.nodes or nid >= model_graph._next_id
        for nid in delta.removed:
            assert nid not in candidate.graph.nodes
            assert nid in model_graph.nodes
        for nid in delta.rewired:
            assert nid in candidate.graph.nodes
            assert nid in model_graph.nodes

    def test_add_then_remove_cancels(self):
        graph = Graph("t")
        graph.begin_delta()
        nid = graph.add_node(OpType.INPUT, (), {"shape": (1, 4)})
        dead = graph.add_node(OpType.RELU, [nid])
        graph.remove_node(dead)
        delta = graph.mutation_delta()
        assert delta.added == {nid}
        assert delta.removed == set()


# ---------------------------------------------------------------------------
# Lazy candidates
# ---------------------------------------------------------------------------

class _ExplodingRule(RewriteRule):
    name = "exploding"
    anchor_ops = (OpType.RELU, OpType.MATMUL, OpType.ADD)

    def find_matches(self, graph):
        from repro.rules.base import Match
        return [Match.create(self.name, {"anchor": nid})
                for nid, _ in self.anchor_nodes(graph)]

    def apply(self, graph, match):
        raise RuntimeError("always fails")


class TestLazyCandidates:
    def test_materialise_is_deferred_and_cached(self, model_graph):
        rule = default_ruleset().rules[0]
        lazy = rule.lazy_candidates(model_graph)
        if not lazy:
            pytest.skip("rule has no matches on this model")
        candidate = lazy[0]
        assert not candidate.is_materialised
        first = candidate.graph
        assert candidate.is_materialised
        assert candidate.graph is first  # apply ran exactly once

    def test_failed_apply_yields_none_and_is_skipped(self, model_graph):
        rule = _ExplodingRule()
        lazy = rule.lazy_candidates(model_graph)
        assert lazy, "model has no anchor nodes for the exploding rule"
        assert all(c.materialise() is None for c in lazy)
        assert rule.candidates(model_graph) == []
        with pytest.raises(RuntimeError):
            _ = lazy[0].graph

    def test_unmaterialised_candidates_never_copy_the_graph(
            self, model_graph, monkeypatch):
        """Enumerating (and discarding) candidates is copy-free.

        The environment's action-space cap and the random-walk baselines
        throw most candidates away unseen; laziness only pays if a
        discarded candidate costs zero ``Graph.copy`` calls — i.e. no
        node-dict rebuild and no COW edge-map cloning either, since every
        candidate graph is born from exactly one ``copy()``.
        """
        copies = []
        original_copy = Graph.copy

        def counting_copy(self):
            copies.append(self)
            return original_copy(self)

        monkeypatch.setattr(Graph, "copy", counting_copy)
        lazy = default_ruleset().lazy_candidates(model_graph)
        assert lazy, "model produced no rewrite candidates"
        assert copies == [],             f"enumeration alone copied the graph {len(copies)} time(s)"
        # Materialising one candidate copies exactly once; the rest of the
        # (discarded) set still costs nothing.
        lazy[0].materialise()
        assert len(copies) == 1
        assert all(not c.is_materialised for c in lazy[1:])

    def test_lazy_and_eager_enumerate_identically(self, model_graph):
        ruleset = default_ruleset()
        lazy = ruleset.lazy_candidates(model_graph)
        eager = ruleset.all_candidates(model_graph)
        assert [(c.rule_name, c.match) for c in lazy] \
            == [(c.rule_name, c.match) for c in eager]
        assert [c.materialise().structural_hash() for c in lazy] \
            == [c.graph.structural_hash() for c in eager]


# ---------------------------------------------------------------------------
# (c) Optimisers: incremental == eager on the model zoo
# ---------------------------------------------------------------------------

class TestOptimiserEquivalence:
    @pytest.mark.parametrize("optimiser_cls,kwargs", [
        (TASOOptimizer, {"max_iterations": 12}),
        (GreedyOptimizer, {"max_iterations": 12}),
        (PETOptimizer, {"max_iterations": 12}),
    ])
    def test_incremental_matches_eager(self, model_graph, optimiser_cls, kwargs):
        eager = optimiser_cls(incremental=False, **kwargs).optimise(
            model_graph, "m")
        incremental = optimiser_cls(incremental=True, **kwargs).optimise(
            model_graph, "m")
        assert incremental.final_cost_ms == eager.final_cost_ms
        assert incremental.final_graph.structural_hash() \
            == eager.final_graph.structural_hash()
        assert incremental.applied_rules == eager.applied_rules
        assert incremental.stats == eager.stats


# ---------------------------------------------------------------------------
# Satellite refactors: worklist DCE and rule lookup
# ---------------------------------------------------------------------------

def _reference_eliminate_dead_nodes(graph):
    """The seed's O(n^2) fixed-point loop, kept as the oracle."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for nid in list(graph.nodes):
            node = graph.nodes[nid]
            if node.op_type in (OpType.INPUT, OpType.OUTPUT):
                continue
            if not graph.out_edges(nid):
                graph.remove_node(nid)
                removed += 1
                changed = True
    return removed


class TestDeadNodeElimination:
    def test_worklist_matches_fixed_point(self, model_graph):
        # Orphan a chunk of the graph, then compare both eliminators.
        for candidate in default_ruleset().lazy_candidates(model_graph)[:5]:
            if candidate.materialise() is None:
                continue
            dirty = candidate.graph.copy()
            sink = dirty.sink_nodes()[0]
            # A dead chain: relu -> relu hanging off an existing node.
            a = dirty.add_node(OpType.RELU, [sink])
            dirty.add_node(OpType.RELU, [a])
            reference = dirty.copy()
            removed_ref = _reference_eliminate_dead_nodes(reference)
            removed_new = eliminate_dead_nodes(dirty)
            assert removed_new == removed_ref
            assert set(dirty.nodes) == set(reference.nodes)
            assert dirty.structural_hash() == reference.structural_hash()

    def test_preserves_inputs_and_outputs(self):
        graph = Graph("t")
        x = graph.add_node(OpType.INPUT, (), {"shape": (1, 4)})
        assert eliminate_dead_nodes(graph) == 0
        assert x in graph.nodes


class TestRuleLookup:
    def test_rule_by_name(self):
        ruleset = default_ruleset()
        for name in ruleset.names():
            assert ruleset.rule(name).name == name

    def test_unknown_rule_raises_keyerror(self):
        with pytest.raises(KeyError):
            default_ruleset().rule("no-such-rule")

    def test_extended_ruleset_lookup(self):
        extended = default_ruleset().extended([_ExplodingRule()])
        assert extended.rule("exploding").name == "exploding"


# ---------------------------------------------------------------------------
# (f) Incremental candidate engine == full-scan oracle on random walks
# ---------------------------------------------------------------------------

class TestIncrementalEngineRandomWalks:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engine_equals_full_scan_after_random_walks(self, model_graph,
                                                        seed):
        """After every step of a randomised rewrite sequence, the delta-
        maintained candidate set is identical (rule, match, order) to a
        from-scratch full scan of the mutated graph."""
        rng = np.random.default_rng(seed)
        ruleset = default_ruleset()
        engine = IncrementalCandidateEngine(ruleset)
        current = model_graph
        for _ in range(6):
            fast = engine.lazy_candidates(current)
            with full_scan_matching():
                oracle = ruleset.lazy_candidates(current)
            assert [(c.rule_name, c.match) for c in fast] == \
                [(c.rule_name, c.match) for c in oracle]
            live = [c for c in fast if c.materialise() is not None]
            if not live:
                break
            current = live[int(rng.integers(len(live)))].graph
        # The walk must actually have exercised the incremental path.
        assert engine.incremental_updates > 0


# ---------------------------------------------------------------------------
# (g) Copy-on-write edge maps == eager maps under graph surgery
# ---------------------------------------------------------------------------

def _ekey(edge):
    return (edge.src, edge.dst, edge.src_slot, edge.dst_slot)


def assert_edge_maps_well_formed(graph):
    """The COW in/out maps are mutually consistent and reference only
    live nodes — exactly the invariant eagerly-maintained maps hold."""
    rebuilt = {nid: [] for nid in graph.nodes}
    for nid in graph.nodes:
        for edge in graph.in_edges(nid):
            assert edge.dst == nid
            assert edge.src in graph.nodes, \
                f"in-edge of {nid} references dead node {edge.src}"
            rebuilt[edge.src].append(edge)
    for nid in graph.nodes:
        assert sorted(map(_ekey, graph.out_edges(nid))) == \
            sorted(map(_ekey, rebuilt[nid])), nid


def edge_map_snapshot(graph):
    return ({nid: tuple(map(_ekey, graph.in_edges(nid)))
             for nid in graph.nodes},
            {nid: tuple(sorted(map(_ekey, graph.out_edges(nid))))
             for nid in graph.nodes})


class TestCOWEdgeMapEquivalence:
    def test_cow_child_equals_eager_apply_across_walks(self, model_graph):
        """A rule applied through the COW machinery yields edge maps
        identical to the same rule applied to a pickle round-tripped
        parent — an eager copy sharing no COW state with the original."""
        ruleset = default_ruleset()
        current = model_graph
        for _ in range(4):
            candidates = [c for c in ruleset.lazy_candidates(current)
                          if c.materialise() is not None]
            if not candidates:
                break
            chosen = candidates[0]
            before = edge_map_snapshot(current)
            cow_child = chosen.graph
            eager_parent = pickle.loads(pickle.dumps(current))
            eager_child = ruleset.rule(chosen.rule_name).apply(
                eager_parent, chosen.match)
            assert edge_map_snapshot(cow_child) == \
                edge_map_snapshot(eager_child)
            assert_edge_maps_well_formed(cow_child)
            # The shared parent maps were never mutated through the child.
            assert edge_map_snapshot(current) == before
            current = cow_child

    def test_primitive_mutations_keep_maps_consistent(self, model_graph):
        """add / rewire / remove / dead-node elimination on a COW copy
        leave its maps well-formed and the parent's maps untouched."""
        parent = model_graph.copy()  # isolate the module-scoped fixture
        parent_before = edge_map_snapshot(parent)
        child = parent.copy()
        source = next(nid for nid, node in child.nodes.items()
                      if node.op_type is not OpType.OUTPUT)
        added = child.add_node(OpType.RELU, inputs=[source])
        assert_edge_maps_well_formed(child)
        rewired = next((nid for nid in child.nodes
                        if nid != added and child.in_edges(nid)), None)
        if rewired is not None:
            edge = child.in_edges(rewired)[0]
            child.rewire_input(edge.dst, edge.dst_slot, edge.src,
                               edge.src_slot)
            assert_edge_maps_well_formed(child)
        child.remove_node(added)
        assert_edge_maps_well_formed(child)
        eliminate_dead_nodes(child)
        assert_edge_maps_well_formed(child)
        assert edge_map_snapshot(parent) == parent_before
