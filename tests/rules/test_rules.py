"""Tests for the rewrite-rule substrate: matching, application, equivalence."""

import pytest

from repro.ir import GraphBuilder, OpType
from repro.rules import (RuleSet, default_ruleset, eliminate_dead_nodes,
                         graphs_equivalent, replace_all_uses)
from repro.rules.rulesets import (DistributeMulOverAdd, EliminateDoubleTranspose,
                                  EliminateSliceOfConcat, EnlargeConvKernel,
                                  FoldMulIntoMatMul, FuseConvBatchNorm,
                                  FuseConvBNRelu, FuseConvRelu, FuseMatMulBias,
                                  MergeParallelConvs, MergeParallelMatMuls,
                                  PushMulThroughBatchMatMul, ReassociateMatMul)


class TestFramework:
    def test_default_ruleset_unique_names(self):
        rs = default_ruleset()
        assert len(rs.names()) == len(set(rs.names()))
        assert len(rs) >= 10

    def test_ruleset_lookup(self):
        rs = default_ruleset()
        assert rs.rule("fuse-conv-bn").name == "fuse-conv-bn"
        with pytest.raises(KeyError):
            rs.rule("does-not-exist")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RuleSet([FuseConvRelu(), FuseConvRelu()])

    def test_extended_ruleset(self):
        rs = RuleSet([FuseConvRelu()]).extended([FuseConvBatchNorm()])
        assert len(rs) == 2

    def test_eliminate_dead_nodes(self, mlp_graph):
        g = mlp_graph.copy()
        # Add a dangling weight and a dangling op.
        w = g.add_node(OpType.WEIGHT, (), {"shape": (4, 4)})
        g.add_node(OpType.RELU, (w,))
        removed = eliminate_dead_nodes(g)
        assert removed == 2
        g.validate()

    def test_replace_all_uses(self):
        b = GraphBuilder()
        x = b.input((2, 4))
        r1 = b.relu(x)
        r2 = b.relu(r1)
        g = b.graph
        replace_all_uses(g, r1, x)
        assert g.predecessors(r2) == [x]


class TestFusionRules:
    def test_fuse_conv_bn(self, conv_graph):
        rule = FuseConvBatchNorm()
        matches = rule.find_matches(conv_graph)
        assert len(matches) == 1
        new_graph = rule.apply(conv_graph, matches[0])
        new_graph.validate()
        assert "FusedConvBN" in new_graph.op_type_counts()
        assert new_graph.num_nodes < conv_graph.num_nodes
        assert graphs_equivalent(conv_graph, new_graph)

    def test_fuse_conv_relu(self, conv_graph):
        rule = FuseConvRelu()
        matches = rule.find_matches(conv_graph)
        assert len(matches) == 1  # only the second conv feeds a ReLU directly
        new_graph = rule.apply(conv_graph, matches[0])
        new_graph.validate()
        assert graphs_equivalent(conv_graph, new_graph)

    def test_fuse_conv_bn_relu_chains(self, conv_graph):
        first = FuseConvBatchNorm()
        step1 = first.apply(conv_graph, first.find_matches(conv_graph)[0])
        second = FuseConvBNRelu()
        matches = second.find_matches(step1)
        assert len(matches) == 1
        step2 = second.apply(step1, matches[0])
        step2.validate()
        assert "FusedConvBNRelu" in step2.op_type_counts()
        assert graphs_equivalent(conv_graph, step2)

    def test_fuse_matmul_bias(self, mlp_graph):
        rule = FuseMatMulBias()
        matches = rule.find_matches(mlp_graph)
        assert len(matches) == 2
        new_graph = rule.apply(mlp_graph, matches[0])
        new_graph.validate()
        assert graphs_equivalent(mlp_graph, new_graph)


class TestMergeRules:
    def test_merge_parallel_matmuls(self, shared_matmul_graph):
        rule = MergeParallelMatMuls()
        matches = rule.find_matches(shared_matmul_graph)
        assert len(matches) == 1
        merged = rule.apply(shared_matmul_graph, matches[0])
        merged.validate()
        counts = merged.op_type_counts()
        assert counts["MatMul"] == 1 and counts["Slice"] == 2
        assert graphs_equivalent(shared_matmul_graph, merged)

    def test_merge_matmuls_in_attention(self, attention_graph):
        rule = MergeParallelMatMuls()
        # Q, K, V projections share the same input: three pairs match.
        assert len(rule.find_matches(attention_graph)) == 3

    def test_merge_parallel_convs_requires_same_kernel(self, fire_graph):
        rule = MergeParallelConvs()
        # The fire module's expand convs have different kernel sizes (1 vs 3),
        # so no merge is possible before kernel enlargement.
        assert rule.find_matches(fire_graph) == []

    def test_enlarge_then_merge(self, fire_graph):
        enlarge = EnlargeConvKernel()
        matches = enlarge.find_matches(fire_graph)
        assert len(matches) == 1
        enlarged = enlarge.apply(fire_graph, matches[0])
        enlarged.validate()
        merge = MergeParallelConvs()
        merged_matches = merge.find_matches(enlarged)
        assert len(merged_matches) == 1
        merged = merge.apply(enlarged, merged_matches[0])
        merged.validate()

    def test_merge_parallel_convs_equivalence(self):
        b = GraphBuilder()
        x = b.input((1, 4, 8, 8), name="x")
        c1 = b.conv2d(x, 6, kernel=3)
        c2 = b.conv2d(x, 10, kernel=3)
        out = b.concat([c1, c2], axis=1)
        g = b.build([out])
        rule = MergeParallelConvs()
        merged = rule.apply(g, rule.find_matches(g)[0])
        merged.validate()
        assert graphs_equivalent(g, merged)


class TestAlgebraicRules:
    def _scaled_attention(self):
        b = GraphBuilder()
        x = b.input((2, 4, 8), name="x")
        w = b.weight((8, 8), name="w")
        q = b.matmul(x, w)
        kt = b.transpose(x, (0, 2, 1))
        scores = b.batch_matmul(q, kt)
        scale = b.constant((1,), name="scale")
        scaled = b.mul(scores, scale)
        return b.build([scaled])

    def test_push_mul_through_bmm(self):
        g = self._scaled_attention()
        rule = PushMulThroughBatchMatMul()
        matches = rule.find_matches(g)
        assert len(matches) == 1
        moved = rule.apply(g, matches[0])
        moved.validate()
        assert graphs_equivalent(g, moved)

    def test_fold_chain_reaches_weights(self):
        g = self._scaled_attention()
        push = PushMulThroughBatchMatMul()
        g2 = push.apply(g, push.find_matches(g)[0])
        fold = FoldMulIntoMatMul()
        matches = fold.find_matches(g2)
        assert len(matches) == 1
        g3 = fold.apply(g2, matches[0])
        g3.validate()
        assert graphs_equivalent(g, g3)
        # After folding, the scalar multiplication only touches constants.
        from repro.cost import E2ESimulator
        folded = E2ESimulator().constant_foldable_nodes(g3)
        mul_nodes = [nid for nid, n in g3.nodes.items() if n.op_type is OpType.MUL]
        assert any(nid in folded for nid in mul_nodes)

    def test_distribute_mul_over_add(self):
        b = GraphBuilder()
        x = b.input((2, 8), name="x")
        y = b.weight((2, 8), name="y")
        c = b.constant((1,), name="c")
        out = b.mul(b.add(x, y), c)
        g = b.build([out])
        rule = DistributeMulOverAdd()
        new = rule.apply(g, rule.find_matches(g)[0])
        new.validate()
        assert graphs_equivalent(g, new)

    def test_reassociate_matmul(self):
        b = GraphBuilder()
        x = b.input((4, 8), name="x")
        a = b.weight((8, 16), name="a")
        c = b.weight((16, 4), name="c")
        out = b.matmul(b.matmul(x, a), c)
        g = b.build([out])
        rule = ReassociateMatMul()
        new = rule.apply(g, rule.find_matches(g)[0])
        new.validate()
        assert graphs_equivalent(g, new)


class TestCleanupRules:
    def test_eliminate_double_transpose(self):
        b = GraphBuilder()
        x = b.input((2, 3, 4), name="x")
        t = b.transpose(b.transpose(x, (0, 2, 1)), (0, 2, 1))
        out = b.relu(t)
        g = b.build([out])
        rule = EliminateDoubleTranspose()
        new = rule.apply(g, rule.find_matches(g)[0])
        new.validate()
        assert graphs_equivalent(g, new)
        assert "Transpose" not in new.op_type_counts()

    def test_eliminate_slice_of_concat(self, shared_matmul_graph):
        merge = MergeParallelMatMuls()
        merged = merge.apply(shared_matmul_graph,
                             merge.find_matches(shared_matmul_graph)[0])
        rule = EliminateSliceOfConcat()
        # Slices of the merged matmul do not consume the weight concat, so the
        # cleanup rule should not fire on that graph...
        b = GraphBuilder()
        x = b.input((2, 4), name="x")
        y = b.weight((2, 6), name="y")
        cat = b.concat([x, y], axis=1)
        sl = b.slice(cat, axis=1, start=0, end=4)
        g = b.build([b.relu(sl)])
        matches = rule.find_matches(g)
        assert len(matches) == 1
        new = rule.apply(g, matches[0])
        new.validate()
        assert graphs_equivalent(g, new)


class TestRulesetOnModels:
    @pytest.mark.parametrize("fixture_name", ["conv_graph", "attention_graph",
                                              "fire_graph", "mlp_graph"])
    def test_all_candidates_are_valid_graphs(self, request, fixture_name):
        graph = request.getfixturevalue(fixture_name)
        for candidate in default_ruleset().all_candidates(graph):
            candidate.graph.validate()

    def test_exactly_equivalent_rules_preserve_semantics(self, attention_graph):
        for rule in default_ruleset():
            if not rule.exactly_equivalent:
                continue
            for match in rule.find_matches(attention_graph)[:2]:
                transformed = rule.apply(attention_graph, match)
                assert graphs_equivalent(attention_graph, transformed), rule.name
