"""Tests for the reference graph interpreter."""

import numpy as np

from repro.ir import GraphBuilder
from repro.rules.interpreter import GraphInterpreter, execute_graph, graphs_equivalent


class TestInterpreter:
    def test_matmul_add_relu_matches_numpy(self):
        b = GraphBuilder()
        x = b.input((3, 4), name="x")
        w = b.weight((4, 5), name="w")
        out = b.relu(b.matmul(x, w))
        g = b.build([out])
        interp = GraphInterpreter()
        values = interp.run(g)
        x_val = values[x]
        w_val = values[w]
        expected = np.maximum(x_val @ w_val, 0.0)
        np.testing.assert_allclose(values[out], expected)

    def test_user_inputs_respected(self):
        b = GraphBuilder()
        x = b.input((2, 2), name="x")
        out = b.relu(x)
        g = b.build([out])
        feed = np.array([[1.0, -2.0], [3.0, -4.0]])
        result = execute_graph(g, {"x": feed})
        np.testing.assert_allclose(list(result.values())[0], np.maximum(feed, 0))

    def test_softmax_rows_sum_to_one(self):
        b = GraphBuilder()
        x = b.input((2, 5), name="x")
        out = b.softmax(x)
        g = b.build([out])
        values = GraphInterpreter().run(g)
        np.testing.assert_allclose(values[out].sum(axis=-1), np.ones(2))

    def test_concat_split_round_trip(self):
        b = GraphBuilder()
        x = b.input((2, 4), name="x")
        y = b.input((2, 6), name="y")
        cat = b.concat([x, y], axis=1)
        sl = b.slice(cat, axis=1, start=0, end=4)
        g = b.build([sl])
        values = GraphInterpreter().run(g)
        np.testing.assert_allclose(values[sl], values[x])

    def test_conv_against_direct_computation(self):
        b = GraphBuilder()
        x = b.input((1, 2, 4, 4), name="x")
        c = b.conv2d(x, 3, kernel=1, padding="same")
        g = b.build([c])
        values = GraphInterpreter().run(g)
        w = values[g.predecessors(c)[1]]
        expected = np.einsum("nchw,oc->nohw", values[x], w[:, :, 0, 0])
        np.testing.assert_allclose(values[c], expected, atol=1e-9)

    def test_pooling(self):
        b = GraphBuilder()
        x = b.input((1, 1, 4, 4), name="x")
        p = b.maxpool(x, kernel=2, stride=2)
        g = b.build([p])
        feed = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        values = GraphInterpreter().run(g, {"x": feed})
        np.testing.assert_allclose(values[p][0, 0], [[5, 7], [13, 15]])

    def test_weights_are_deterministic(self):
        b = GraphBuilder()
        x = b.input((2, 4), name="x")
        out = b.linear(x, 4, 4, name="fc")
        g = b.build([out])
        v1 = GraphInterpreter().run(g)[out]
        v2 = GraphInterpreter().run(g)[out]
        np.testing.assert_allclose(v1, v2)


class TestEquivalenceChecker:
    def test_identical_graphs_equivalent(self, mlp_graph):
        assert graphs_equivalent(mlp_graph, mlp_graph.copy())

    def test_different_structure_not_equivalent(self):
        b1 = GraphBuilder()
        x = b1.input((2, 4), name="x")
        g1 = b1.build([b1.relu(x)])
        b2 = GraphBuilder()
        x = b2.input((2, 4), name="x")
        g2 = b2.build([b2.tanh(x)])
        assert not graphs_equivalent(g1, g2)

    def test_mismatched_inputs_not_equivalent(self, mlp_graph, conv_graph):
        assert not graphs_equivalent(mlp_graph, conv_graph)
