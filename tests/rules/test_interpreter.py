"""Tests for the reference graph interpreter."""

import numpy as np

from repro.ir import GraphBuilder
from repro.rules.interpreter import GraphInterpreter, execute_graph, graphs_equivalent


class TestInterpreter:
    def test_matmul_add_relu_matches_numpy(self):
        b = GraphBuilder()
        x = b.input((3, 4), name="x")
        w = b.weight((4, 5), name="w")
        out = b.relu(b.matmul(x, w))
        g = b.build([out])
        interp = GraphInterpreter()
        values = interp.run(g)
        x_val = values[x]
        w_val = values[w]
        expected = np.maximum(x_val @ w_val, 0.0)
        np.testing.assert_allclose(values[out], expected)

    def test_user_inputs_respected(self):
        b = GraphBuilder()
        x = b.input((2, 2), name="x")
        out = b.relu(x)
        g = b.build([out])
        feed = np.array([[1.0, -2.0], [3.0, -4.0]])
        result = execute_graph(g, {"x": feed})
        np.testing.assert_allclose(list(result.values())[0], np.maximum(feed, 0))

    def test_softmax_rows_sum_to_one(self):
        b = GraphBuilder()
        x = b.input((2, 5), name="x")
        out = b.softmax(x)
        g = b.build([out])
        values = GraphInterpreter().run(g)
        np.testing.assert_allclose(values[out].sum(axis=-1), np.ones(2))

    def test_concat_split_round_trip(self):
        b = GraphBuilder()
        x = b.input((2, 4), name="x")
        y = b.input((2, 6), name="y")
        cat = b.concat([x, y], axis=1)
        sl = b.slice(cat, axis=1, start=0, end=4)
        g = b.build([sl])
        values = GraphInterpreter().run(g)
        np.testing.assert_allclose(values[sl], values[x])

    def test_conv_against_direct_computation(self):
        b = GraphBuilder()
        x = b.input((1, 2, 4, 4), name="x")
        c = b.conv2d(x, 3, kernel=1, padding="same")
        g = b.build([c])
        values = GraphInterpreter().run(g)
        w = values[g.predecessors(c)[1]]
        expected = np.einsum("nchw,oc->nohw", values[x], w[:, :, 0, 0])
        np.testing.assert_allclose(values[c], expected, atol=1e-9)

    def test_pooling(self):
        b = GraphBuilder()
        x = b.input((1, 1, 4, 4), name="x")
        p = b.maxpool(x, kernel=2, stride=2)
        g = b.build([p])
        feed = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        values = GraphInterpreter().run(g, {"x": feed})
        np.testing.assert_allclose(values[p][0, 0], [[5, 7], [13, 15]])

    def test_weights_are_deterministic(self):
        b = GraphBuilder()
        x = b.input((2, 4), name="x")
        out = b.linear(x, 4, 4, name="fc")
        g = b.build([out])
        v1 = GraphInterpreter().run(g)[out]
        v2 = GraphInterpreter().run(g)[out]
        np.testing.assert_allclose(v1, v2)


class TestEquivalenceChecker:
    def test_identical_graphs_equivalent(self, mlp_graph):
        assert graphs_equivalent(mlp_graph, mlp_graph.copy())

    def test_different_structure_not_equivalent(self):
        b1 = GraphBuilder()
        x = b1.input((2, 4), name="x")
        g1 = b1.build([b1.relu(x)])
        b2 = GraphBuilder()
        x = b2.input((2, 4), name="x")
        g2 = b2.build([b2.tanh(x)])
        assert not graphs_equivalent(g1, g2)

    def test_mismatched_inputs_not_equivalent(self, mlp_graph, conv_graph):
        assert not graphs_equivalent(mlp_graph, conv_graph)


class TestCrossBackendAgreement:
    """Interpreter vs numpy executor: two independent implementations of the
    op semantics must agree on every donor, before and after each rule."""

    def _sink_values_interp(self, graph):
        values = GraphInterpreter().run(graph)
        return {graph.nodes[nid].name: values[nid]
                for nid in graph.sink_nodes()}

    def _sink_values_exec(self, graph):
        from repro.exec import NumpyExecutor
        outputs, _ = NumpyExecutor().run(graph)
        return outputs

    def _assert_backends_agree(self, graph, label=""):
        interp = self._sink_values_interp(graph)
        execd = self._sink_values_exec(graph)
        assert set(interp) == set(execd), label
        for name in interp:
            np.testing.assert_allclose(
                execd[name], interp[name], rtol=1e-6, atol=1e-8,
                err_msg=f"{label}: backend disagreement at sink {name!r}")

    def test_backends_agree_on_fixtures(self, mlp_graph, conv_graph,
                                        fire_graph, attention_graph,
                                        shared_matmul_graph):
        for graph in (mlp_graph, conv_graph, fire_graph, attention_graph,
                      shared_matmul_graph):
            self._assert_backends_agree(graph, graph.name)

    def test_backends_agree_after_every_exact_rule(self, mlp_graph,
                                                   conv_graph, fire_graph,
                                                   attention_graph,
                                                   shared_matmul_graph):
        from repro.rules import exact_ruleset
        donors = [mlp_graph, conv_graph, fire_graph, attention_graph,
                  shared_matmul_graph] + self._pattern_donors()
        fired = set()
        for rule in exact_ruleset():
            for graph in donors:
                matches = rule.find_matches(graph)
                if not matches:
                    continue
                transformed = rule.apply(graph, matches[0])
                # Both backends agree on the rewritten graph, and the
                # interpreter's own equivalence check accepts the rewrite.
                self._assert_backends_agree(transformed, rule.name)
                assert graphs_equivalent(graph, transformed), rule.name
                fired.add(rule.name)
                break
        # Nearly all of the exact ruleset fires across the donors;
        # chained-pattern rules (conv-bn-relu fusion, fold-after-push)
        # get their own differential coverage in tests/exec.
        assert len(fired) >= 10, sorted(fired)

    @staticmethod
    def _pattern_donors():
        donors = []

        b = GraphBuilder("dbl_t")
        x = b.input((2, 3, 4), name="x")
        donors.append(b.build([b.relu(
            b.transpose(b.transpose(x, (0, 2, 1)), (0, 2, 1)))]))

        b = GraphBuilder("slice_cat")
        x = b.input((2, 4), name="x")
        y = b.weight((2, 6), name="y")
        donors.append(b.build([b.relu(
            b.slice(b.concat([x, y], axis=1), axis=1, start=0, end=4))]))

        b = GraphBuilder("mul_add")
        x = b.input((2, 8), name="x")
        y = b.weight((2, 8), name="y")
        c = b.constant((1,), name="c")
        donors.append(b.build([b.mul(b.add(x, y), c)]))

        b = GraphBuilder("reassoc")
        x = b.input((4, 8), name="x")
        a = b.weight((8, 16), name="a")
        c2 = b.weight((16, 4), name="c2")
        donors.append(b.build([b.matmul(b.matmul(x, a), c2)]))

        b = GraphBuilder("mul_reshape")
        x = b.input((2, 12), name="x")
        c3 = b.constant((1,), name="c3")
        donors.append(b.build([b.mul(b.reshape(x, (2, 3, 4)), c3)]))

        b = GraphBuilder("par_convs")
        x = b.input((1, 4, 8, 8), name="x")
        donors.append(b.build([b.concat(
            [b.conv2d(x, 6, kernel=3), b.conv2d(x, 10, kernel=3)], axis=1)]))

        return donors
