"""Tests for the experiment harness (fast, reduced-size configurations)."""

import pytest

from repro.experiments import (ExperimentReport, benchmark_config,
                               build_small_model, format_table, run_figure4,
                               run_figure8, run_table1, run_table2, run_table3,
                               optimise_suite, small_model_kwargs)
from repro.models import PAPER_EVAL_MODELS


@pytest.fixture(scope="module")
def tiny_rl_config():
    return benchmark_config(num_episodes=2, max_steps=6, max_candidates=12,
                            update_frequency=2, num_gat_layers=1,
                            hidden_dim=16, embedding_dim=16,
                            mlp_head_sizes=(16,), eval_episodes=1)


class TestReportInfrastructure:
    def test_report_columns_and_formatting(self):
        report = ExperimentReport("X", "demo")
        report.add("a", one=1.0, two=2.0)
        report.add("b", one=3.0)
        assert report.column("one") == {"a": 1.0, "b": 3.0}
        text = format_table(report)
        assert "X" in text and "one" in text and "a" in text

    def test_empty_report(self):
        assert "(no rows)" in format_table(ExperimentReport("Y", "empty"))

    def test_small_models_build(self):
        for name in PAPER_EVAL_MODELS:
            graph = build_small_model(name)
            graph.validate()
            assert isinstance(small_model_kwargs(name), dict)


class TestTables:
    def test_table1_shape(self):
        report = run_table1(models=["bert", "squeezenet"])
        diffs = report.column("diff_percent")
        assert set(diffs) == {"bert", "squeezenet"}
        # The paper reports discrepancies between roughly 5% and 24%.
        assert all(1.0 <= d <= 35.0 for d in diffs.values())

    def test_table2_crossover(self):
        report = run_table2(max_iterations=15)
        pet = report.column("pet_ms")
        taso = report.column("taso_ms")
        assert pet["resnet18"] < taso["resnet18"]

    def test_table3_complexity_ordering(self):
        report = run_table3(models=["inception_v3", "resnext50", "bert"])
        complexity = report.column("complexity")
        # InceptionV3 offers the most rewrite opportunities (as in the paper).
        assert complexity["inception_v3"] > complexity["resnext50"]


class TestFigures:
    def test_figure4_and_6_from_shared_suite(self, tiny_rl_config):
        results = optimise_suite(models=["squeezenet"], config=tiny_rl_config,
                                 taso_iterations=10)
        fig4 = run_figure4(results=results)
        fig6 = __import__("repro.experiments", fromlist=["run_figure6"]).run_figure6(
            results=results)
        xrl = fig4.column("xrlflow_speedup_pct")["squeezenet"]
        taso = fig4.column("taso_speedup_pct")["squeezenet"]
        assert xrl >= -1e-6 and taso >= -1e-6
        assert fig6.column("taso_seconds")["squeezenet"] > 0

    def test_figure8_runs(self, tiny_rl_config):
        report = run_figure8(models=["bert"], config=tiny_rl_config, tensat_rounds=2)
        assert "bert" in report.column("xrlflow_speedup_pct")
