"""Unit tests for the shared :class:`repro.core.lru.LRUCache`."""

import threading

import pytest

from repro.core.lru import LRUCache


def test_basic_get_put():
    cache = LRUCache(max_entries=4)
    assert cache.get("a") is None
    assert cache.get("a", 7) == 7
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert "a" in cache
    assert len(cache) == 1
    assert cache.hits == 1 and cache.misses == 2


def test_lru_eviction_order():
    cache = LRUCache(max_entries=3)
    for key in "abc":
        cache.put(key, key.upper())
    cache.get("a")           # refresh "a" — "b" becomes the oldest
    cache.put("d", "D")
    assert "b" not in cache
    assert list(cache) == ["c", "a", "d"]
    assert cache.evictions == 1


def test_overwrite_does_not_evict():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)       # overwrite, still 2 entries
    assert len(cache) == 2
    assert cache.evictions == 0
    assert cache.get("a") == 10


def test_zero_capacity_disables_cache():
    cache = LRUCache(max_entries=0)
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None
    assert cache.misses == 1


def test_negative_capacity_is_unbounded():
    cache = LRUCache(max_entries=-1)
    for i in range(1000):
        cache.put(i, i)
    assert len(cache) == 1000
    assert cache.evictions == 0


def test_peek_and_pop_do_not_count():
    cache = LRUCache(max_entries=4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1
    assert cache.peek("zz", "dflt") == "dflt"
    assert cache.pop("a") == 1
    assert cache.pop("a", "gone") == "gone"
    assert cache.hits == 0 and cache.misses == 0
    # peek must not refresh recency: "b" was inserted after "a", so after
    # peeking "b" the oldest entry is still evicted in insertion order.
    cache2 = LRUCache(max_entries=2)
    cache2.put("x", 1)
    cache2.put("y", 2)
    cache2.peek("x")
    cache2.put("z", 3)
    assert "x" not in cache2 and "y" in cache2


def test_clear_keeps_counters():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1 and cache.misses == 1
    cache.reset_stats()
    assert cache.hits == 0 and cache.misses == 0


def test_stats_shape_and_prefix():
    cache = LRUCache(max_entries=2, name="decision")
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    stats = cache.stats()
    assert stats["decision_hits"] == 1.0
    assert stats["decision_misses"] == 1.0
    assert stats["decision_hit_rate"] == pytest.approx(0.5)
    assert stats["decision_entries"] == 1.0
    unnamed = LRUCache(max_entries=2).stats()
    assert set(unnamed) == {"hits", "misses", "evictions", "hit_rate",
                            "entries"}
    assert unnamed["hit_rate"] == 0.0


def test_external_lock_is_used():
    class CountingLock:
        def __init__(self):
            self.inner = threading.Lock()
            self.acquisitions = 0

        def __enter__(self):
            self.inner.acquire()
            self.acquisitions += 1
            return self

        def __exit__(self, *exc):
            self.inner.release()

    lock = CountingLock()
    cache = LRUCache(max_entries=8, lock=lock)
    cache.put("a", 1)
    cache.get("a")
    cache.peek("a")
    cache.pop("a")
    cache.clear()
    assert lock.acquisitions == 5


def test_threaded_puts_respect_capacity():
    cache = LRUCache(max_entries=16, lock=threading.Lock())

    def worker(base):
        for i in range(200):
            cache.put((base, i), i)
            cache.get((base, i))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(cache) <= 16
    assert cache.hits + cache.misses == 800
