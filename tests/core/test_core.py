"""Tests for the X-RLflow public API: config, optimiser, generalisation."""

import numpy as np
import pytest

from repro import XRLflow, XRLflowConfig
from repro.core import PAPER_TABLE4, ShapeVariant, evaluate_generalisation
from repro.models import build_model


def tiny_transformer(**overrides):
    kwargs = dict(num_layers=1, seq_len=16, hidden=32, num_heads=2, vocab_size=64)
    kwargs.update(overrides)
    return build_model("bert", **kwargs)


@pytest.fixture(scope="module")
def tiny_config():
    return XRLflowConfig.fast(num_episodes=3, max_steps=6, max_candidates=12,
                              update_frequency=2, num_gat_layers=1,
                              hidden_dim=16, embedding_dim=16,
                              mlp_head_sizes=(16,), eval_episodes=1)


class TestConfig:
    def test_defaults_match_paper_table4(self):
        cfg = XRLflowConfig.paper_defaults()
        assert cfg.learning_rate == PAPER_TABLE4["learning_rate"]
        assert cfg.value_loss_coef == PAPER_TABLE4["value_loss_coef"]
        assert cfg.entropy_loss_coef == PAPER_TABLE4["entropy_loss_coef"]
        assert cfg.edge_attr_norm == PAPER_TABLE4["edge_attr_norm"]
        assert cfg.num_gat_layers == PAPER_TABLE4["num_gat_layers"]
        assert cfg.update_frequency == PAPER_TABLE4["update_frequency"]
        assert cfg.feedback_interval == PAPER_TABLE4["feedback_interval"]
        assert tuple(cfg.mlp_head_sizes) == tuple(PAPER_TABLE4["mlp_head_sizes"])
        assert cfg.batch_size == PAPER_TABLE4["batch_size"]

    def test_fast_overrides(self):
        cfg = XRLflowConfig.fast(num_episodes=99)
        assert cfg.num_episodes == 99
        cfg.validate()

    def test_validation_rejects_bad_values(self):
        for field, value in [("learning_rate", -1.0), ("clip_epsilon", 2.0),
                             ("feedback_interval", 0), ("num_gat_layers", 0),
                             ("max_candidates", 0), ("num_episodes", 0)]:
            cfg = XRLflowConfig()
            setattr(cfg, field, value)
            with pytest.raises(ValueError):
                cfg.validate()

    def test_to_dict_round_trips_keys(self):
        d = XRLflowConfig().to_dict()
        assert "learning_rate" in d and "max_candidates" in d


class TestXRLflow:
    def test_optimise_returns_valid_result(self, tiny_config):
        graph = tiny_transformer()
        result = XRLflow(tiny_config).optimise(graph, "tiny-bert")
        result.final_graph.validate()
        assert result.optimiser == "xrlflow"
        assert result.final_latency_ms <= result.initial_latency_ms + 1e-9
        assert result.stats["episodes_trained"] == tiny_config.num_episodes

    def test_training_history_available(self, tiny_config):
        opt = XRLflow(tiny_config)
        graph = tiny_transformer()
        history = opt.train(graph, num_episodes=2)
        assert len(history.episodes) == 2

    def test_optimise_without_training_requires_agent(self, tiny_config):
        opt = XRLflow(tiny_config)
        graph = tiny_transformer()
        # train=False but no agent yet: optimise() trains automatically.
        result = opt.optimise(graph, train=False)
        assert result.final_graph is not None

    def test_inference_only_reuses_trained_agent(self, tiny_config):
        opt = XRLflow(tiny_config)
        opt.train(tiny_transformer(), num_episodes=2)
        result = opt.optimise(tiny_transformer(seq_len=24), "bert-24", train=False)
        assert result.stats["train_time_s"] == 0.0
        assert result.final_latency_ms <= result.initial_latency_ms + 1e-9

    def test_save_and_load_agent(self, tiny_config, tmp_path):
        opt = XRLflow(tiny_config)
        opt.train(tiny_transformer(), num_episodes=2)
        path = str(tmp_path / "agent.npz")
        opt.save_agent(path)
        other = XRLflow(tiny_config)
        other.load_agent(path)
        for a, b in zip(opt.agent.parameters(), other.agent.parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_save_without_training_fails(self, tiny_config, tmp_path):
        with pytest.raises(RuntimeError):
            XRLflow(tiny_config).save_agent(str(tmp_path / "agent.npz"))


class TestGeneralisation:
    def test_requires_exactly_one_training_shape(self, tiny_config):
        variants = [ShapeVariant("a", {"seq_len": 16}),
                    ShapeVariant("b", {"seq_len": 24})]
        with pytest.raises(ValueError):
            evaluate_generalisation(tiny_transformer, variants, tiny_config)

    def test_generalisation_report(self, tiny_config):
        variants = [
            ShapeVariant("seq16", {"seq_len": 16}, is_training_shape=True),
            ShapeVariant("seq24", {"seq_len": 24}),
        ]
        report = evaluate_generalisation(tiny_transformer, variants, tiny_config,
                                         model_name="tiny-bert")
        assert len(report.results) == 2
        speedups = report.speedups()
        assert all(s >= 1.0 - 1e-9 for s in speedups.values())
        assert "tiny-bert" in report.summary()
