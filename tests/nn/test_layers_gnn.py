"""Tests for dense layers, optimisers and the GNN encoder."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    GraphEmbeddingNetwork,
    Linear,
    MLP,
    SGD,
    Tensor,
    clip_grad_norm)
from repro.rl.features import build_meta_graph
from repro.ir import GraphBuilder


def tiny_batch(num_graphs=2):
    graphs = []
    for _ in range(num_graphs):
        b = GraphBuilder()
        x = b.input((2, 4))
        graphs.append(b.build([b.relu(b.linear(x, 4, 4))]))
    return build_meta_graph(graphs)


class TestLayers:
    def test_linear_shapes_and_params(self):
        layer = Linear(4, 3)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)
        assert len(layer.parameters()) == 2

    def test_mlp_forward_and_param_collection(self):
        mlp = MLP([4, 8, 2])
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(mlp.parameters()) == 4

    def test_mlp_rejects_single_size(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_state_dict_round_trip(self):
        mlp = MLP([4, 8, 2])
        state = mlp.state_dict()
        other = MLP([4, 8, 2])
        other.load_state_dict(state)
        for a, b in zip(mlp.parameters(), other.parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_state_dict_shape_mismatch(self):
        mlp = MLP([4, 8, 2])
        with pytest.raises(ValueError):
            MLP([4, 4, 2]).load_state_dict(mlp.state_dict())


class TestOptimisers:
    def _loss(self, layer):
        x = Tensor(np.ones((8, 4)))
        target = Tensor(np.zeros((8, 2)))
        pred = layer(x)
        return ((pred - target) ** 2).mean()

    def test_sgd_reduces_loss(self):
        layer = Linear(4, 2, rng=np.random.default_rng(1))
        opt = SGD(layer.parameters(), lr=0.05)
        initial = float(self._loss(layer).numpy())
        for _ in range(20):
            opt.zero_grad()
            loss = self._loss(layer)
            loss.backward()
            opt.step()
        assert float(self._loss(layer).numpy()) < initial

    def test_adam_reduces_loss(self):
        layer = Linear(4, 2, rng=np.random.default_rng(1))
        opt = Adam(layer.parameters(), lr=0.01)
        initial = float(self._loss(layer).numpy())
        for _ in range(20):
            opt.zero_grad()
            loss = self._loss(layer)
            loss.backward()
            opt.step()
        assert float(self._loss(layer).numpy()) < initial

    def test_clip_grad_norm(self):
        layer = Linear(4, 2)
        loss = self._loss(layer) * 1e6
        loss.backward()
        norm = clip_grad_norm(layer.parameters(), max_norm=1.0)
        assert norm > 1.0
        clipped = np.sqrt(sum(float((p.grad ** 2).sum()) for p in layer.parameters()))
        assert clipped == pytest.approx(1.0, rel=1e-6)


class TestGNN:
    def test_embedding_shape(self):
        batch = tiny_batch(3)
        net = GraphEmbeddingNetwork(node_dim=batch.node_features.shape[1],
                                    edge_dim=batch.edge_features.shape[1],
                                    hidden_dim=16, embedding_dim=8,
                                    num_gat_layers=2)
        out = net(batch)
        assert out.shape == (3, 8)
        assert np.isfinite(out.numpy()).all()

    def test_gradients_reach_all_parameters(self):
        batch = tiny_batch(2)
        net = GraphEmbeddingNetwork(node_dim=batch.node_features.shape[1],
                                    edge_dim=batch.edge_features.shape[1],
                                    hidden_dim=8, embedding_dim=8, num_gat_layers=2)
        net(batch).sum().backward()
        grads = [p.grad for p in net.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_distinct_graphs_get_distinct_embeddings(self):
        b1 = GraphBuilder()
        x = b1.input((2, 4))
        g1 = b1.build([b1.relu(x)])
        b2 = GraphBuilder()
        x = b2.input((2, 4))
        g2 = b2.build([b2.tanh(b2.linear(x, 4, 4))])
        batch = build_meta_graph([g1, g2])
        net = GraphEmbeddingNetwork(node_dim=batch.node_features.shape[1],
                                    edge_dim=batch.edge_features.shape[1],
                                    hidden_dim=16, embedding_dim=8, num_gat_layers=2)
        out = net(batch).numpy()
        assert not np.allclose(out[0], out[1])


class TestDefaultRngIndependence:
    """Regression: layers built without an explicit rng used to share
    ``default_rng(0)`` and therefore start with *identical* weights."""

    def test_two_default_linear_layers_differ(self):
        a, b = Linear(8, 8), Linear(8, 8)
        assert not np.array_equal(a.weight.data, b.weight.data)

    def test_default_mlp_hidden_layers_differ_from_each_other(self):
        mlp = MLP([8, 8, 8])
        w0, w1 = mlp.layers[0].weight.data, mlp.layers[1].weight.data
        assert not np.array_equal(w0, w1)

    def test_two_default_gat_layers_differ(self):
        from repro.nn import GATLayer
        a, b = GATLayer(8), GATLayer(8)
        assert not np.array_equal(a.transform.weight.data,
                                  b.transform.weight.data)
        assert not np.array_equal(a.attn_src.data, b.attn_src.data)

    def test_explicit_rng_stays_reproducible(self):
        a = Linear(8, 8, rng=np.random.default_rng(7))
        b = Linear(8, 8, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
