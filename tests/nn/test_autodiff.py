"""Numeric gradient checks and behaviour tests for the autodiff engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, concat, segment_softmax, segment_sum, stack


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    out = np.zeros_like(flat)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x.copy())
        flat[i] = orig - eps
        minus = fn(x.copy())
        flat[i] = orig
        out[i] = (plus - minus) / (2 * eps)
    return out.reshape(x.shape)


def check_gradient(op, x_data, atol=1e-5):
    x = Tensor(x_data, requires_grad=True)
    out = op(x)
    loss = out.sum() if out.data.size > 1 else out
    loss.backward()

    def scalar_fn(data):
        value = op(Tensor(data)).data
        return float(value.sum())

    expected = numeric_grad(scalar_fn, np.asarray(x_data, dtype=float))
    np.testing.assert_allclose(x.grad, expected, atol=atol)


class TestGradients:
    def test_add_mul(self):
        check_gradient(lambda x: x * 3.0 + x * x, np.random.default_rng(0).normal(size=(3, 4)))

    def test_matmul(self):
        w = Tensor(np.random.default_rng(1).normal(size=(4, 2)))
        check_gradient(lambda x: x @ w, np.random.default_rng(0).normal(size=(3, 4)))

    def test_relu_tanh_sigmoid_exp(self):
        data = np.random.default_rng(2).normal(size=(5,)) + 0.1
        check_gradient(lambda x: x.relu(), data)
        check_gradient(lambda x: x.tanh(), data)
        check_gradient(lambda x: x.sigmoid(), data)
        check_gradient(lambda x: x.exp(), data)

    def test_log_and_division(self):
        data = np.abs(np.random.default_rng(3).normal(size=(4,))) + 0.5
        check_gradient(lambda x: x.log(), data)
        check_gradient(lambda x: 1.0 / x, data)

    def test_softmax_log_softmax(self):
        data = np.random.default_rng(4).normal(size=(2, 5))
        check_gradient(lambda x: x.softmax(axis=-1), data, atol=1e-4)
        check_gradient(lambda x: x.log_softmax(axis=-1), data, atol=1e-4)

    def test_reshape_transpose_slice(self):
        data = np.random.default_rng(5).normal(size=(2, 6))
        check_gradient(lambda x: x.reshape(3, 4), data)
        check_gradient(lambda x: x.transpose(1, 0), data)
        check_gradient(lambda x: x[0:1], data)

    def test_mean_max(self):
        data = np.random.default_rng(6).normal(size=(3, 4))
        check_gradient(lambda x: x.mean(axis=0), data)
        check_gradient(lambda x: x.max(axis=1), data, atol=1e-4)

    def test_broadcasting_gradients(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_concat_and_stack(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        concat([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        a.zero_grad(); b.zero_grad()
        (stack([a, b], axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_gather_rows(self):
        x = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        idx = np.array([0, 2, 2])
        x.gather_rows(idx).sum().backward()
        np.testing.assert_allclose(x.grad, [[1, 1, 1], [0, 0, 0], [2, 2, 2], [0, 0, 0]])

    def test_clip(self):
        data = np.array([-2.0, 0.5, 3.0])
        check_gradient(lambda x: x.clip(-1.0, 1.0), data)


class TestSegmentOps:
    def test_segment_sum_forward_backward(self):
        values = Tensor(np.arange(8, dtype=float).reshape(4, 2), requires_grad=True)
        ids = np.array([0, 0, 1, 1])
        out = segment_sum(values, ids, 2)
        np.testing.assert_allclose(out.data, [[2, 4], [10, 12]])
        out.sum().backward()
        np.testing.assert_allclose(values.grad, np.ones((4, 2)))

    def test_segment_softmax_normalises_per_segment(self):
        logits = Tensor(np.array([[1.0], [2.0], [3.0], [0.5]]), requires_grad=True)
        ids = np.array([0, 0, 1, 1])
        out = segment_softmax(logits, ids, 2)
        sums = segment_sum(out, ids, 2)
        np.testing.assert_allclose(sums.data, np.ones((2, 1)), atol=1e-9)

    def test_segment_softmax_gradients_flow(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 1)), requires_grad=True)
        ids = np.array([0, 0, 1, 1, 1])
        (segment_softmax(logits, ids, 2) * np.arange(5).reshape(5, 1)).sum().backward()
        assert logits.grad is not None
        assert np.isfinite(logits.grad).all()


class TestBackwardMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_grad_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).sum()
        y.backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))

    def test_detach_stops_gradients(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.detach() * 2).sum()
        assert x.grad is None

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shapes_property(self, n, m):
        a = Tensor(np.ones((n, m)), requires_grad=True)
        b = Tensor(np.ones((m, 3)), requires_grad=True)
        out = a @ b
        assert out.shape == (n, 3)
        out.sum().backward()
        assert a.grad.shape == (n, m) and b.grad.shape == (m, 3)
