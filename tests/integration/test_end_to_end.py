"""Integration tests: the full pipeline from model zoo to optimised graph."""

import pytest

from repro import XRLflow, XRLflowConfig
from repro.cost import CostModel, E2ESimulator
from repro.ir import graph_from_dict, graph_to_dict
from repro.models import build_model
from repro.rules import RuleSet, default_ruleset, graphs_equivalent
from repro.search import TASOOptimizer, TensatOptimizer


@pytest.fixture(scope="module")
def bert_small():
    return build_model("bert", num_layers=1, seq_len=32, hidden=64, num_heads=2,
                       vocab_size=128)


@pytest.fixture(scope="module")
def rl_config():
    return XRLflowConfig.fast(num_episodes=8, max_steps=20, max_candidates=24,
                              update_frequency=4, num_gat_layers=1,
                              hidden_dim=16, embedding_dim=16,
                              mlp_head_sizes=(32,), eval_episodes=2)


class TestFullPipeline:
    def test_xrlflow_beats_or_matches_unoptimised(self, bert_small, rl_config):
        result = XRLflow(rl_config).optimise(bert_small, "bert-small")
        assert result.speedup >= 1.0
        result.final_graph.validate()

    def test_xrlflow_at_least_matches_taso_on_transformer(self, bert_small, rl_config):
        e2e = E2ESimulator()
        taso = TASOOptimizer(max_iterations=25, e2e=e2e).optimise(bert_small, "bert")
        xrl = XRLflow(rl_config, e2e=e2e).optimise(bert_small, "bert")
        # The paper's headline claim, at reduced scale: X-RLflow is never
        # (meaningfully) worse than the greedy cost-model search.  The test
        # budget is a few seconds of training, so allow a 10% tolerance; the
        # benchmark harness trains longer and reports the full comparison.
        assert xrl.final_latency_ms <= taso.final_latency_ms * 1.10

    def test_exact_rules_preserve_model_semantics_through_search(self, bert_small):
        exact = RuleSet([r for r in default_ruleset() if r.exactly_equivalent])
        result = TASOOptimizer(ruleset=exact, max_iterations=15).optimise(bert_small)
        assert graphs_equivalent(bert_small, result.final_graph)

    def test_optimised_graph_survives_serialisation(self, bert_small):
        result = TensatOptimizer(round_limit=2).optimise(bert_small, "bert")
        restored = graph_from_dict(graph_to_dict(result.final_graph))
        assert restored.structural_hash() == result.final_graph.structural_hash()
        assert E2ESimulator().latency_ms(restored) == pytest.approx(
            result.final_latency_ms)

    def test_cost_model_and_e2e_disagree_but_correlate(self):
        cm, e2e = CostModel(), E2ESimulator()
        costs, latencies = [], []
        for name in ("squeezenet", "bert"):
            graph = build_model(name)
            costs.append(cm.estimate(graph))
            latencies.append(e2e.latency_ms(graph))
        # Same ordering (correlated) but not equal (discrepancy).
        assert (costs[0] < costs[1]) == (latencies[0] < latencies[1])
        assert all(abs(c - lat) > 1e-6 for c, lat in zip(costs, latencies))
