"""Tests for the model zoo: every builder produces a valid, sensible graph."""

import pytest

from repro.ir import OpType
from repro.models import (MODEL_REGISTRY, PAPER_EVAL_MODELS, TABLE1_MODELS,
                          TENSAT_MODELS, build_model, list_models)


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_model_builds_and_validates(name):
    graph = build_model(name)
    graph.validate()
    assert graph.num_nodes > 20
    assert graph.sink_nodes(), "every model must expose at least one output"


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_model_has_single_connected_output_interface(name):
    graph = build_model(name)
    sinks = graph.sink_nodes()
    assert all(graph.nodes[s].op_type is OpType.OUTPUT for s in sinks)


class TestFamilies:
    def test_convnets_contain_convolutions(self):
        for name in list_models(family="convolutional"):
            counts = build_model(name).op_type_counts()
            assert counts.get("Conv2D", 0) + counts.get("GroupConv2D", 0) > 0

    def test_transformers_contain_attention(self):
        for name in list_models(family="transformer"):
            counts = build_model(name).op_type_counts()
            assert counts.get("BatchMatMul", 0) >= 2
            assert counts.get("Softmax", 0) >= 1
            assert counts.get("LayerNorm", 0) >= 1

    def test_resnext_uses_grouped_convolutions(self):
        counts = build_model("resnext50").op_type_counts()
        assert counts.get("GroupConv2D", 0) >= 4

    def test_squeezenet_fire_modules(self):
        counts = build_model("squeezenet").op_type_counts()
        assert counts.get("Concat", 0) == 8  # one concat per fire module


class TestParameterisation:
    def test_bert_depth_scales_node_count(self):
        small = build_model("bert", num_layers=1)
        large = build_model("bert", num_layers=3)
        assert large.num_nodes > small.num_nodes

    def test_inception_image_size(self):
        graph = build_model("inception_v3", image_size=225)
        input_node = graph.nodes[graph.input_nodes()[0]]
        assert input_node.output_spec.shape.dims[-1] == 225

    def test_vit_patch_count(self):
        graph = build_model("vit", image_size=128, patch_size=16, num_layers=1)
        graph.validate()

    def test_dalle_sequence_concatenation(self):
        graph = build_model("dalle", text_len=16, image_tokens=32, num_layers=1)
        graph.validate()


class TestRegistry:
    def test_registry_lists(self):
        assert set(PAPER_EVAL_MODELS) <= set(MODEL_REGISTRY)
        assert set(TABLE1_MODELS) <= set(MODEL_REGISTRY)
        assert set(TENSAT_MODELS) <= set(MODEL_REGISTRY)
        assert len(PAPER_EVAL_MODELS) == 7

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_name_normalisation(self):
        graph = build_model("ResNeXt50".lower().replace("x", "x"))
        graph.validate()

    def test_list_models_filter(self):
        assert "bert" in list_models("transformer")
        assert "bert" not in list_models("convolutional")
