"""Shared fixtures: small graphs exercising every rule family quickly."""

from __future__ import annotations

import os

import pytest

from repro.ir import GraphBuilder

# Hermetic runs: a developer's persisted calibration preset must not leak
# into test expectations.  Tests that exercise preset loading opt back in
# by pointing REPRO_DEVICE_PRESET at a tmp file.
os.environ.setdefault("REPRO_DEVICE_PRESET", "off")


@pytest.fixture
def mlp_graph():
    """x -> matmul -> add bias -> relu -> matmul -> add bias (two dense layers)."""
    b = GraphBuilder("mlp")
    x = b.input((4, 16), name="x")
    h = b.relu(b.linear(x, 16, 32, name="fc1"))
    out = b.linear(h, 32, 8, name="fc2")
    return b.build([out])


@pytest.fixture
def conv_graph():
    """Small conv -> bn -> relu -> conv -> relu graph (fusion fodder)."""
    b = GraphBuilder("convnet")
    x = b.input((1, 3, 16, 16), name="image")
    h = b.conv_bn_relu(x, 8, kernel=3)
    h = b.conv2d(h, 8, kernel=3)
    h = b.relu(h)
    return b.build([h])


@pytest.fixture
def fire_graph():
    """SqueezeNet-style fire module: squeeze 1x1 then parallel 1x1 / 3x3."""
    b = GraphBuilder("fire")
    x = b.input((1, 8, 8, 8), name="image")
    s = b.relu(b.conv2d(x, 4, kernel=1))
    e1 = b.relu(b.conv2d(s, 8, kernel=1))
    e3 = b.relu(b.conv2d(s, 8, kernel=3))
    out = b.concat([e1, e3], axis=1)
    return b.build([out])


@pytest.fixture
def attention_graph():
    """One tiny self-attention block (merge-matmuls and fold-chain fodder)."""
    b = GraphBuilder("attention")
    x = b.input((1, 8, 16), name="tokens")
    out = b.multi_head_attention(x, hidden=16, num_heads=2, seq_len=8,
                                 batch=1, name="attn")
    return b.build([out])


@pytest.fixture
def shared_matmul_graph():
    """Two matmuls sharing one input (the classic TASO merge example)."""
    b = GraphBuilder("shared_mm")
    x = b.input((4, 8), name="x")
    w1 = b.weight((8, 6), name="w1")
    w2 = b.weight((8, 10), name="w2")
    a = b.matmul(x, w1)
    c = b.matmul(x, w2)
    out = b.concat([a, c], axis=1)
    return b.build([out])
