"""CI workflow hygiene: the config in ``.github/workflows/ci.yml`` must
stay consistent with the repository it gates.

Plain-text assertions (no YAML dependency in the container): the
workflow is small and the properties checked here are structural —
ignore-lists that reference real files, cache keys that depend on the
requirements stanza, and the importer job wiring."""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
CI = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()


def test_tier1_ignore_list_references_existing_files():
    """Every --ignore'd path must exist — a renamed benchmark would turn
    the ignore into a no-op and silently double-run the file in tier1."""
    ignored = re.findall(r"--ignore=(\S+)", CI)
    assert ignored, "tier1 ignore list disappeared"
    for path in ignored:
        assert (REPO_ROOT / path).is_file(), f"stale ignore: {path}"


def test_tier1_ignores_exactly_the_bench_files_the_bench_job_runs():
    """The ignore list and the bench job must cover the same files: a
    benchmark ignored in tier1 but not run by bench would never run."""
    ignored = {Path(p).name for p in re.findall(r"--ignore=(\S+)", CI)}
    bench_runs = set(re.findall(r"pytest (benchmarks/\S+\.py)", CI))
    assert ignored == {Path(p).name for p in bench_runs}


def test_pip_cache_key_tracks_the_requirements_file():
    """Cache keys must depend on the explicit requirements stanza, not on
    ci.yml itself — editing an unrelated step should not cold-start pip."""
    assert (REPO_ROOT / ".github" / "requirements-ci.txt").is_file()
    deps = re.findall(r"cache-dependency-path:\s*(\S+)", CI)
    assert deps, "pip cache configuration disappeared"
    assert all(d == ".github/requirements-ci.txt" for d in deps)


def test_install_steps_use_the_requirements_file():
    """The requirements stanza only keys the cache correctly if installs
    actually read it."""
    assert "pip install -r .github/requirements-ci.txt" in CI


def test_requirements_file_has_no_unvetted_dependencies():
    """The container bakes in numpy/pytest; anything beyond the vetted
    set needs an explicit decision (and an offline-install story)."""
    allowed = {"numpy", "pytest", "pytest-benchmark", "ruff"}
    lines = (REPO_ROOT / ".github" / "requirements-ci.txt").read_text()
    for line in lines.splitlines():
        line = line.split("#")[0].strip()
        if not line:
            continue
        name = re.split(r"[<>=~!\[]", line)[0].strip()
        assert name in allowed, f"unvetted CI dependency: {name}"


def test_importer_job_exists_and_gates_coverage():
    assert "importer:" in CI
    assert "tools/check_import_coverage.py" in CI
    assert "GITHUB_STEP_SUMMARY" in CI
    assert "IMPORT_CONFORMANCE=1" in CI


def test_concurrency_cancels_superseded_runs():
    assert "cancel-in-progress: true" in CI
