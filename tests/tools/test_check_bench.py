"""Tests for the CI benchmark-regression gate (``tools/check_bench.py``)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "check_bench", REPO_ROOT / "tools" / "check_bench.py")
check_bench = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_bench", check_bench)
_SPEC.loader.exec_module(check_bench)


def _doc(smoke: bool = False, cores: int = 1, **speedups: float) -> dict:
    """A minimal BENCH_search.json-shaped document."""
    return {
        "benchmark": "search", "schema": 1, "smoke": smoke,
        "results": {
            "candidate_throughput": {
                "bert": {"speedup": speedups.get("throughput", 5.0),
                         "candidates": 21},
            },
            "taso_end_to_end": {
                "bert": {"speedup": speedups.get("e2e", 2.5),
                         "iterations": 30},
            },
            "intra_search_parallel": {
                "cores": cores,
                "bert": {
                    "speedup": speedups.get("parallel", 0.9),
                    "workers": 4,
                    "equivalence": {"final_hash": "matched",
                                    "final_cost_float64": "matched",
                                    "rules_checked": 2},
                },
            },
            "measured_end_to_end": {
                "bert": {"speedup": speedups.get("measured", 1.05),
                         "rules_applied": 8},
            },
        },
    }


class TestFlatten:
    def test_numeric_leaves_only(self):
        leaves = check_bench.flatten_numbers(
            {"a": {"b": 1.5, "name": "x", "flag": True}, "c": 2})
        assert leaves == {"a.b": 1.5, "c": 2.0}

    def test_gated_keys_glob_matching(self):
        leaves = {"candidate_throughput.bert.speedup": 5.0,
                  "candidate_throughput.bert.candidates": 21.0,
                  "parallel_scaling.speedup": 0.9}
        floors = check_bench.gated_keys(
            leaves, {"candidate_throughput.*.speedup": 3.0})
        assert floors == {"candidate_throughput.bert.speedup": 3.0}


class TestEvaluate:
    GATES = {"candidate_throughput.*.speedup": 3.0,
             "taso_end_to_end.*.speedup": 2.0}

    def test_full_mode_passes_within_tolerance(self):
        problems, notes = check_bench.evaluate(
            _doc(throughput=5.0, e2e=2.5), _doc(throughput=4.0, e2e=2.0),
            self.GATES, smoke=False, tolerance=0.30)
        assert problems == []
        assert len(notes) == 2

    def test_full_mode_fails_beyond_tolerance(self):
        problems, _ = check_bench.evaluate(
            _doc(throughput=5.0), _doc(throughput=3.0),
            self.GATES, smoke=False, tolerance=0.30)
        assert len(problems) == 1
        assert "candidate_throughput.bert.speedup" in problems[0]
        assert "regressed" in problems[0]

    def test_smoke_mode_uses_absolute_floors(self):
        # 3.2x would be a >30% regression vs a 5x baseline, but it clears
        # the 3x smoke floor — reduced-budget runs are not ratio-comparable.
        problems, _ = check_bench.evaluate(
            _doc(throughput=5.0), _doc(smoke=True, throughput=3.2),
            self.GATES, smoke=True)
        assert problems == []
        problems, _ = check_bench.evaluate(
            _doc(throughput=5.0), _doc(smoke=True, throughput=2.0),
            self.GATES, smoke=True)
        assert len(problems) == 1
        assert "smoke floor" in problems[0]

    def test_missing_fresh_key_fails(self):
        fresh = _doc()
        del fresh["results"]["taso_end_to_end"]
        problems, _ = check_bench.evaluate(_doc(), fresh, self.GATES,
                                           smoke=False)
        assert any("missing from the fresh results" in p for p in problems)

    def test_new_benchmark_without_baseline_passes(self):
        baseline = _doc()
        del baseline["results"]["taso_end_to_end"]
        problems, notes = check_bench.evaluate(baseline, _doc(), self.GATES,
                                               smoke=False)
        assert problems == []
        assert any("no committed baseline" in n for n in notes)

    def test_ungated_keys_are_ignored(self):
        baseline = _doc()
        fresh = _doc()
        fresh["results"]["candidate_throughput"]["bert"]["candidates"] = 1.0
        problems, _ = check_bench.evaluate(baseline, fresh, self.GATES,
                                           smoke=False)
        assert problems == []


class TestCoreGates:
    """Core-aware scaling floors (the ``parallel_scaling`` family)."""

    CORE_GATES = check_bench.CORE_GATES["BENCH_search.json"]

    def _evaluate(self, fresh: dict, smoke: bool = True):
        return check_bench.evaluate(_doc(), fresh, {}, smoke=smoke,
                                    core_gates=self.CORE_GATES)

    def test_single_core_recording_gates_on_overhead_floor_only(self):
        # 0.5x would fail the 1.2x bar, but one core cannot scale: only
        # the pathological-overhead floor applies.
        problems, notes = self._evaluate(_doc(cores=1, parallel=0.5))
        assert problems == []
        assert any("1-core recording" in n for n in notes)

    def test_single_core_pathological_overhead_fails(self):
        problems, _ = self._evaluate(_doc(cores=1, parallel=0.1))
        assert len(problems) == 1
        assert "below the core-aware floor 0.15x" in problems[0]

    def test_multi_core_recording_must_scale(self):
        problems, _ = self._evaluate(_doc(cores=4, parallel=1.5))
        assert problems == []
        problems, _ = self._evaluate(_doc(cores=4, parallel=1.0))
        assert len(problems) == 1
        assert "below the core-aware floor 1.20x" in problems[0]
        assert "4-core recording" in problems[0]

    def test_enforced_in_full_mode_too(self):
        problems, _ = self._evaluate(_doc(cores=4, parallel=1.0),
                                     smoke=False)
        assert len(problems) == 1

    def test_missing_speedup_key_fails(self):
        fresh = _doc()
        del fresh["results"]["intra_search_parallel"]["bert"]["speedup"]
        problems, _ = self._evaluate(fresh)
        assert any("missing from the fresh results" in p for p in problems)

    def test_section_never_recorded_fails(self):
        baseline = _doc()
        fresh = _doc()
        del baseline["results"]["intra_search_parallel"]
        del fresh["results"]["intra_search_parallel"]
        problems, _ = check_bench.evaluate(baseline, fresh, {}, smoke=True,
                                           core_gates=self.CORE_GATES)
        assert any("no matching key" in p for p in problems)


class TestParallelEquivalenceWitnesses:
    """The new BENCH_search witnesses ride through check_file-level gates."""

    POSITIVE = check_bench.REQUIRED_POSITIVE["BENCH_search.json"]
    LITERAL = check_bench.REQUIRED_LITERAL["BENCH_search.json"]

    def _evaluate(self, fresh: dict):
        return check_bench.evaluate(
            _doc(), fresh, {}, smoke=True,
            required_positive=self.POSITIVE, required_literal=self.LITERAL)

    def test_witnessed_doc_passes(self):
        problems, _ = self._evaluate(_doc())
        assert problems == []

    def test_diverged_hash_fails(self):
        fresh = _doc()
        fresh["results"]["intra_search_parallel"]["bert"][
            "equivalence"]["final_hash"] = "diverged"
        problems, _ = self._evaluate(fresh)
        assert any("final_hash" in p and "diverged" in p for p in problems)

    def test_missing_cores_witness_fails(self):
        fresh = _doc()
        del fresh["results"]["intra_search_parallel"]["cores"]
        problems, _ = self._evaluate(fresh)
        assert any("cores" in p for p in problems)

    def test_search_without_rewrites_fails(self):
        fresh = _doc()
        fresh["results"]["measured_end_to_end"]["bert"]["rules_applied"] = 0
        problems, _ = self._evaluate(fresh)
        assert any("rules_applied" in p for p in problems)


def _rl_doc(smoke: bool = True, *, act: float = 2.0, match: float = 1.4,
            step: float = 2.0, checks: float = 10.0,
            trajectory: str = "passed", equivalence: bool = True) -> dict:
    """A minimal BENCH_rl.json-shaped document (one model)."""
    payload = {
        "speedup": 2.5,
        "stages": {"act_speedup": act, "match_speedup": match,
                   "step_speedup": step},
        "lru": {"observation_hit_rate": 0.3, "decision_hit_rate": 0.3,
                "embed_state_hit_rate": 0.5, "match_state_hit_rate": 0.45,
                "flat_ids_hit_rate": 0.8},
    }
    if equivalence:
        payload["equivalence"] = {"embedder_checks": checks,
                                  "trajectory_float64": trajectory}
    return {"benchmark": "rl", "schema": 1, "smoke": smoke,
            "results": {"env_steps": {"bert": payload}}}


class TestRequiredWitnesses:
    RL_GATES = check_bench.GATES["BENCH_rl.json"]
    POSITIVE = check_bench.REQUIRED_POSITIVE["BENCH_rl.json"]
    LITERAL = check_bench.REQUIRED_LITERAL["BENCH_rl.json"]

    def _evaluate(self, fresh: dict, smoke: bool = True):
        return check_bench.evaluate(
            _rl_doc(), fresh, self.RL_GATES, smoke=smoke,
            required_positive=self.POSITIVE, required_literal=self.LITERAL)

    def test_flatten_strings_collects_string_leaves_only(self):
        leaves = check_bench.flatten_strings(
            {"a": {"status": "passed", "n": 3}, "top": "x"})
        assert leaves == {"a.status": "passed", "top": "x"}

    def test_witnessed_run_passes_both_modes(self):
        for smoke in (True, False):
            problems, notes = self._evaluate(_rl_doc(smoke=smoke),
                                             smoke=smoke)
            assert problems == []
            assert any("gate executed" in n for n in notes)

    def test_zero_equivalence_checks_fail(self):
        problems, _ = self._evaluate(_rl_doc(checks=0.0))
        assert any("never executed" in p for p in problems)

    def test_missing_equivalence_section_fails(self):
        # Skipped entirely — no key matches either witness pattern.
        problems, _ = self._evaluate(_rl_doc(equivalence=False))
        assert sum("equivalence gate skipped" in p for p in problems) == 2

    def test_failed_trajectory_literal_fails(self):
        problems, _ = self._evaluate(_rl_doc(trajectory="failed"))
        assert any("!= expected 'passed'" in p for p in problems)

    def test_witnesses_are_enforced_in_full_mode_too(self):
        problems, _ = self._evaluate(_rl_doc(smoke=False, checks=0.0),
                                     smoke=False)
        assert any("never executed" in p for p in problems)

    def test_stage_speedups_have_smoke_floors(self):
        problems, _ = self._evaluate(_rl_doc(act=1.0))
        assert any("stages.act_speedup" in p and "smoke floor" in p
                   for p in problems)

    def test_lru_hit_rates_have_smoke_floors(self):
        fresh = _rl_doc()
        fresh["results"]["env_steps"]["bert"]["lru"][
            "observation_hit_rate"] = 0.01
        problems, _ = self._evaluate(fresh)
        assert any("lru.observation_hit_rate" in p for p in problems)


class TestCli:
    def _write(self, path: Path, doc: dict) -> Path:
        path.write_text(json.dumps(doc))
        return path

    def test_clean_gate_exits_zero(self, tmp_path, capsys):
        (tmp_path / "b").mkdir()
        baseline = self._write(tmp_path / "b" / "BENCH_search.json", _doc())
        fresh = self._write(tmp_path / "BENCH_search.json",
                            _doc(smoke=True, throughput=4.0, e2e=2.2))
        return_code = check_bench.main(["--baseline", str(baseline),
                                        "--fresh", str(fresh)])
        out = capsys.readouterr().out
        assert return_code == 0
        assert "smoke gate" in out  # auto-detected from the fresh flag
        assert "benchmark gates clean" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "b").mkdir()
        baseline = self._write(tmp_path / "b" / "BENCH_search.json", _doc())
        fresh = self._write(tmp_path / "BENCH_search.json",
                            _doc(throughput=1.5))
        return_code = check_bench.main(["--baseline", str(baseline),
                                        "--fresh", str(fresh), "--full"])
        out = capsys.readouterr().out
        assert return_code == 1
        assert "FAIL" in out

    def test_real_committed_files_pass_their_own_gate(self, capsys):
        """The repo's committed numbers must clear their own full gate."""
        for name in ("BENCH_search.json", "BENCH_service.json",
                     "BENCH_rl.json", "BENCH_exec.json"):
            path = REPO_ROOT / name
            return_code = check_bench.main(["--baseline", str(path),
                                           "--fresh", str(path), "--full"])
            assert return_code == 0, capsys.readouterr().out

    def test_unknown_file_is_rejected(self, tmp_path):
        path = self._write(tmp_path / "BENCH_unknown.json", _doc())
        with pytest.raises(SystemExit, match="no gates"):
            check_bench.main(["--baseline", str(path), "--fresh", str(path)])


def _exec_doc(smoke: bool = True, *, pass_rate: float = 1.0,
              improvement: float = 2.0, status: str = "passed",
              rules: float = 15.0, equivalence: bool = True) -> dict:
    """A minimal BENCH_exec.json-shaped document."""
    results = {
        "models": {"bert": {"execute_ms": 18.0, "sim_ms": 0.3,
                            "ratio": 60.0, "nodes": 105.0}},
        "calibration": {"samples": 120.0, "error_before": 4.0,
                        "error_after": 1.3, "improvement": improvement},
        "op_class_ratio": {"MatMul": 0.7},
    }
    if equivalence:
        results["equivalence"] = {
            "rules_checked": rules, "optimiser_checks": 9.0,
            "total_checks": 24.0, "pass_rate": pass_rate,
            "status": status, "rtol": 1e-5, "atol": 1e-6}
    return {"benchmark": "exec", "schema": 1, "smoke": smoke,
            "results": results}


class TestExecWitnesses:
    """BENCH_exec.json gates: the differential sweep must run and pass."""

    EXEC_GATES = check_bench.GATES["BENCH_exec.json"]
    POSITIVE = check_bench.REQUIRED_POSITIVE["BENCH_exec.json"]
    LITERAL = check_bench.REQUIRED_LITERAL["BENCH_exec.json"]

    def _evaluate(self, fresh: dict, smoke: bool = True):
        return check_bench.evaluate(
            _exec_doc(), fresh, self.EXEC_GATES, smoke=smoke,
            required_positive=self.POSITIVE, required_literal=self.LITERAL)

    def test_witnessed_run_passes_both_modes(self):
        for smoke in (True, False):
            problems, notes = self._evaluate(_exec_doc(smoke=smoke),
                                             smoke=smoke)
            assert problems == []
            assert any("gate executed" in n for n in notes)

    def test_skipped_equivalence_sweep_fails(self):
        problems, _ = self._evaluate(_exec_doc(equivalence=False))
        assert any("equivalence gate skipped" in p for p in problems)
        # pass_rate is also gated, so its absence fails separately.
        assert any("equivalence.pass_rate" in p for p in problems)

    def test_partial_pass_rate_fails(self):
        problems, _ = self._evaluate(_exec_doc(pass_rate=0.96))
        assert any("equivalence.pass_rate" in p and "smoke floor" in p
                   for p in problems)

    def test_failed_status_literal_fails(self):
        problems, _ = self._evaluate(_exec_doc(status="failed"))
        assert any("!= expected 'passed'" in p for p in problems)

    def test_calibration_must_not_worsen_fit(self):
        problems, _ = self._evaluate(_exec_doc(improvement=0.8))
        assert any("calibration.improvement" in p for p in problems)
