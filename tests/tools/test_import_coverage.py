"""Tests for the importer coverage gate (``tools/check_import_coverage.py``)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "check_import_coverage",
    REPO_ROOT / "tools" / "check_import_coverage.py")
check_import_coverage = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_import_coverage", check_import_coverage)
_SPEC.loader.exec_module(check_import_coverage)


def test_live_bridge_table_is_clean():
    assert check_import_coverage.check() == []


def test_floor_violation_is_reported():
    rows = check_import_coverage.collect()
    problems = check_import_coverage.check(rows, min_ops=10_000)
    assert any("floor" in p for p in problems)


def test_missing_conformance_case_is_reported():
    rows = check_import_coverage.collect()
    victim = next(r for r in rows if r["domain"] == "(default)")
    victim["case"] = False
    problems = check_import_coverage.check(rows)
    assert any(f"bridged op {victim['op']} has no conformance case" == p
               for p in problems)


def test_unclean_import_is_reported():
    rows = check_import_coverage.collect()
    victim = next(r for r in rows if r["domain"] == "(default)")
    victim["fallbacks"] = 2
    problems = check_import_coverage.check(rows)
    assert any("does not import cleanly" in p for p in problems)


def test_dropped_bridge_flags_stale_case():
    rows = check_import_coverage.collect()
    rows = [r for r in rows
            if not (r["domain"] == "(default)" and r["op"] == "Relu")]
    problems = check_import_coverage.check(rows)
    assert any("Relu" in p and "no longer bridged" in p for p in problems)


def test_markdown_table_lists_every_bridge():
    rows = check_import_coverage.collect()
    table = check_import_coverage.markdown_table(rows)
    for row in rows:
        assert f"| `{row['op']}` |" in table
    assert ":x:" not in table  # live table is fully green


def test_main_writes_summary_file(tmp_path, capsys):
    out = tmp_path / "summary.md"
    code = check_import_coverage.main(["--output", str(out)])
    assert code == 0
    assert "ONNX importer coverage" in out.read_text()
    assert "importer coverage OK" in capsys.readouterr().out


def test_main_fails_on_unreachable_floor(capsys):
    code = check_import_coverage.main(["--min-ops", "10000"])
    assert code == 1
    assert "FAILED" in capsys.readouterr().err
