"""Tests for the Graph data structure: construction, traversal, invariants."""

import pytest

from repro.ir import Graph, GraphBuilder, GraphValidationError, OpType
from repro.ir.serialize import graph_from_dict, graph_to_dict


def small_graph():
    b = GraphBuilder("g")
    x = b.input((2, 4), name="x")
    w = b.weight((4, 8), name="w")
    mm = b.matmul(x, w)
    r = b.relu(mm)
    return b.graph, (x, w, mm, r)


class TestConstruction:
    def test_add_node_infers_shapes(self):
        g, (x, w, mm, r) = small_graph()
        assert g.nodes[mm].output_spec.shape.dims == (2, 8)
        assert g.nodes[r].output_spec.shape.dims == (2, 8)
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_add_node_unknown_input(self):
        g = Graph()
        with pytest.raises(GraphValidationError):
            g.add_node(OpType.RELU, (99,))

    def test_add_node_bad_arity(self):
        g, (x, w, mm, r) = small_graph()
        with pytest.raises(ValueError):
            g.add_node(OpType.MATMUL, (x,))

    def test_remove_node(self):
        g, (x, w, mm, r) = small_graph()
        g.remove_node(r)
        assert r not in g.nodes
        assert g.successors(mm) == []

    def test_remove_missing_node(self):
        g, _ = small_graph()
        with pytest.raises(GraphValidationError):
            g.remove_node(1234)

    def test_rewire_input(self):
        g, (x, w, mm, r) = small_graph()
        other = g.add_node(OpType.RELU, (mm,))
        g.rewire_input(r, 0, other)
        assert g.predecessors(r) == [other]
        assert r in g.successors(other)

    def test_rewire_missing_slot(self):
        g, (x, w, mm, r) = small_graph()
        with pytest.raises(GraphValidationError):
            g.rewire_input(r, 5, mm)


class TestQueries:
    def test_sources_and_sinks(self):
        g, (x, w, mm, r) = small_graph()
        assert set(g.source_nodes()) == {x, w}
        assert g.input_nodes() == [x]
        assert g.sink_nodes() == [r]
        assert g.operator_nodes() == [mm, r]

    def test_input_specs_in_slot_order(self):
        g, (x, w, mm, r) = small_graph()
        specs = g.input_specs(mm)
        assert specs[0].shape.dims == (2, 4)
        assert specs[1].shape.dims == (4, 8)

    def test_op_type_counts(self):
        g, _ = small_graph()
        counts = g.op_type_counts()
        assert counts["MatMul"] == 1 and counts["Relu"] == 1

    def test_total_flops_positive(self):
        g, _ = small_graph()
        assert g.total_flops() > 0


class TestTraversal:
    def test_topological_order_respects_edges(self):
        g, (x, w, mm, r) = small_graph()
        order = g.topological_order()
        assert order.index(x) < order.index(mm) < order.index(r)
        assert order.index(w) < order.index(mm)

    def test_iteration_yields_topological_nodes(self):
        g, _ = small_graph()
        ids = [node.node_id for node in g]
        assert ids == g.topological_order()

    def test_cycle_detection(self):
        g, (x, w, mm, r) = small_graph()
        # Manually create a cycle (bypassing add_node protections).
        from repro.ir.graph import Edge
        bad = Edge(src=r, dst=mm, src_slot=0, dst_slot=0)
        g._in_edges[mm].append(bad)
        g._out_edges[r].append(bad)
        with pytest.raises(GraphValidationError):
            g.topological_order()


class TestValidationAndCopy:
    def test_validate_ok(self, mlp_graph):
        mlp_graph.validate()

    def test_validate_detects_stale_shape(self):
        g, (x, w, mm, r) = small_graph()
        g.nodes[r].outputs[0] = g.nodes[r].outputs[0].with_shape((3, 3))
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_refresh_shapes_repairs(self):
        g, (x, w, mm, r) = small_graph()
        g.nodes[r].outputs[0] = g.nodes[r].outputs[0].with_shape((3, 3))
        g.refresh_shapes()
        g.validate()

    def test_copy_is_independent(self, mlp_graph):
        clone = mlp_graph.copy()
        clone.remove_node(clone.sink_nodes()[0])
        assert clone.num_nodes == mlp_graph.num_nodes - 1
        mlp_graph.validate()

    def test_structural_hash_ignores_ids(self, mlp_graph):
        direct = mlp_graph.structural_hash()
        round_trip = graph_from_dict(graph_to_dict(mlp_graph)).structural_hash()
        assert direct == round_trip

    def test_structural_hash_differs_for_different_graphs(self, mlp_graph, conv_graph):
        assert mlp_graph.structural_hash() != conv_graph.structural_hash()

    def test_repr(self, mlp_graph):
        assert "Graph" in repr(mlp_graph)
