"""Round-trip tests for the ONNX-like JSON serialisation."""

import json

import pytest

from repro.ir import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.models import build_model


class TestRoundTrip:
    def test_round_trip_preserves_structure(self, mlp_graph):
        restored = graph_from_dict(graph_to_dict(mlp_graph))
        assert restored.structural_hash() == mlp_graph.structural_hash()
        assert restored.num_nodes == mlp_graph.num_nodes
        assert restored.num_edges == mlp_graph.num_edges

    def test_round_trip_preserves_attrs(self, conv_graph):
        restored = graph_from_dict(graph_to_dict(conv_graph))
        restored.validate()
        for nid, node in conv_graph.nodes.items():
            assert restored.nodes[nid].attrs == node.attrs

    def test_file_round_trip(self, tmp_path, attention_graph):
        path = tmp_path / "graph.json"
        save_graph(attention_graph, path)
        loaded = load_graph(path)
        assert loaded.structural_hash() == attention_graph.structural_hash()
        # The file is plain JSON.
        json.loads(path.read_text())

    def test_model_zoo_round_trip(self):
        graph = build_model("squeezenet")
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.structural_hash() == graph.structural_hash()

    def test_bad_version_rejected(self, mlp_graph):
        data = graph_to_dict(mlp_graph)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            graph_from_dict(data)
