"""Round-trip property tests for the binary graph wire format.

The parallel search engine's determinism contract rests on the codec being
*exact*: a decoded replica must agree with the original on node ids, the
private id counter, attrs, output specs, edges — and therefore on the
structural hash and on every cost estimate.  These tests sweep the whole
model zoo plus a band of fuzzer-generated graphs to hold that line as the
op registry grows.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "exec"))
from graphgen import random_graph  # noqa: E402

from repro.cost import CostModel
from repro.ir import (GraphBuilder, WireFormatError, apply_delta,
                      decode_graph, delta_summary, encode_delta, encode_graph,
                      roundtrip_equal)
from repro.models import build_model, list_models
from repro.rules import default_ruleset

FUZZ_SEEDS = range(20)


def _assert_replica(original, replica):
    """The full exactness contract, not just hash equality."""
    assert roundtrip_equal(original, replica)
    assert replica.structural_hash() == original.structural_hash()
    assert sorted(replica.nodes) == sorted(original.nodes)
    assert list(replica.nodes) == list(original.nodes)  # iteration order
    assert replica._next_id == original._next_id
    for nid, node in original.nodes.items():
        twin = replica.nodes[nid]
        assert twin.op_type == node.op_type
        assert twin.attrs == node.attrs
        assert [tuple(o.shape.dims) for o in twin.outputs] == \
            [tuple(o.shape.dims) for o in node.outputs]
    cm = CostModel()
    assert cm.estimate(replica) == cm.estimate(original)


@pytest.mark.parametrize("name", sorted(list_models()))
def test_zoo_model_roundtrip(name):
    graph = build_model(name)
    replica = decode_graph(encode_graph(graph), validate=True)
    _assert_replica(graph, replica)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzed_graph_roundtrip(seed):
    graph = random_graph(seed=seed, num_ops=16)
    replica = decode_graph(encode_graph(graph), validate=True)
    _assert_replica(graph, replica)


@pytest.mark.parametrize("seed", [0, 7, 13])
def test_delta_roundtrip_through_rewrites(seed):
    """apply_delta(parent, encode_delta(parent, child)) is exact."""
    graph = build_model("squeezenet")
    ruleset = default_ruleset()
    applied = 0
    current = graph
    for candidate in ruleset.all_candidates(current):
        child = candidate.graph
        payload = encode_delta(current, child)
        rebuilt = apply_delta(current, payload, validate=True)
        _assert_replica(child, rebuilt)
        summary = delta_summary(payload)
        assert summary["installed"] + summary["removed"] > 0
        assert summary["payload_bytes"] == len(payload)
        assert len(payload) < len(encode_graph(child)), \
            "delta should be smaller than re-shipping the graph"
        current = child
        applied += 1
        if applied >= 5 + seed % 3:
            break
    assert applied > 0


def test_delta_chain_replica_tracks_originals():
    """A replica advanced only by deltas stays bit-identical for ever."""
    graph = build_model("resnet18")
    ruleset = default_ruleset()
    replica = decode_graph(encode_graph(graph))
    current = graph
    cm_orig, cm_repl = CostModel(), CostModel()
    for _ in range(6):
        candidates = ruleset.all_candidates(current)
        if not candidates:
            break
        child = candidates[0].graph
        replica = apply_delta(replica, encode_delta(current, child))
        assert replica.structural_hash() == child.structural_hash()
        assert cm_repl.estimate_cached(replica) == cm_orig.estimate_cached(child)
        current = child


def test_id_counter_roundtrips():
    """Replicas allocate the same node ids the original would."""
    graph = build_model("squeezenet")
    replica = decode_graph(encode_graph(graph))
    ruleset = default_ruleset()
    cand_a = ruleset.all_candidates(graph)
    cand_b = ruleset.all_candidates(replica)
    assert [c.rule_name for c in cand_a] == [c.rule_name for c in cand_b]
    for a, b in zip(cand_a, cand_b):
        assert a.graph.structural_hash() == b.graph.structural_hash()
        assert sorted(a.graph.nodes) == sorted(b.graph.nodes)  # same new ids


def test_attr_values_roundtrip():
    builder = GraphBuilder("attrs")
    x = builder.input([1, 8, 8, 8], "x")
    builder.output(builder.maxpool(x, kernel=3, stride=2, padding=1))
    graph = builder.graph
    pool_nid = next(nid for nid, n in graph.nodes.items()
                    if n.op_type.name == "MAXPOOL2D")
    graph.nodes[pool_nid].attrs.update({
        "f": 1.5, "s": "winograd", "flag": True, "t": (1, 2, 3),
        "nested": (1.0, "x"), "none": None,
    })
    replica = decode_graph(encode_graph(graph))
    attrs = replica.nodes[pool_nid].attrs
    assert attrs["f"] == 1.5 and attrs["s"] == "winograd"
    assert attrs["flag"] is True
    assert attrs["t"] == (1, 2, 3) and isinstance(attrs["t"], tuple)
    assert attrs["nested"] == (1.0, "x")
    assert attrs["none"] is None


def test_malformed_payloads_raise():
    graph = build_model("tt")
    payload = encode_graph(graph)
    with pytest.raises(WireFormatError):
        decode_graph(payload[:10])
    with pytest.raises(WireFormatError):
        decode_graph(b"XX" + payload[2:])
    with pytest.raises(WireFormatError):
        apply_delta(graph, payload)  # graph payload where a delta is expected
    with pytest.raises(WireFormatError):
        decode_graph(encode_delta(graph, graph))


def test_wire_is_compact():
    """The binary codec beats the JSON dict transport it replaces."""
    import json

    from repro.ir import graph_to_dict
    for name in ("squeezenet", "bert"):
        graph = build_model(name)
        wire = len(encode_graph(graph))
        as_json = len(json.dumps(graph_to_dict(graph)))
        assert wire * 2 < as_json, \
            f"{name}: wire {wire}B not <2x JSON {as_json}B"
