"""Tests for the fluent GraphBuilder API."""


from repro.ir import GraphBuilder, OpType


class TestBasicOps:
    def test_linear_with_bias(self):
        b = GraphBuilder()
        x = b.input((2, 16))
        out = b.linear(x, 16, 32)
        g = b.build([out])
        assert g.nodes[out].op_type is OpType.ADD
        counts = g.op_type_counts()
        assert counts["MatMul"] == 1 and counts["Weight"] == 2

    def test_linear_without_bias(self):
        b = GraphBuilder()
        x = b.input((2, 16))
        out = b.linear(x, 16, 32, bias=False)
        assert b.graph.nodes[out].op_type is OpType.MATMUL

    def test_conv_defaults_infer_in_channels(self):
        b = GraphBuilder()
        x = b.input((1, 3, 8, 8))
        c = b.conv2d(x, 16, kernel=3)
        assert b.graph.nodes[c].output_spec.shape.dims == (1, 16, 8, 8)

    def test_group_and_depthwise_conv(self):
        b = GraphBuilder()
        x = b.input((1, 8, 8, 8))
        gc = b.group_conv2d(x, 8, groups=4)
        dw = b.depthwise_conv2d(x)
        assert b.graph.nodes[gc].output_spec.shape.dims == (1, 8, 8, 8)
        assert b.graph.nodes[dw].output_spec.shape.dims == (1, 8, 8, 8)

    def test_pooling_and_norms(self):
        b = GraphBuilder()
        x = b.input((1, 4, 8, 8))
        assert b.graph.nodes[b.maxpool(x)].output_spec.shape.dims == (1, 4, 4, 4)
        assert b.graph.nodes[b.global_avgpool(x)].output_spec.shape.dims == (1, 4)
        bn = b.batchnorm(x)
        assert b.graph.nodes[bn].output_spec.shape.dims == (1, 4, 8, 8)

    def test_build_validates(self):
        b = GraphBuilder()
        x = b.input((2, 4))
        out = b.relu(x)
        g = b.build([out])
        assert g.nodes[g.sink_nodes()[0]].op_type is OpType.OUTPUT


class TestCompositeBlocks:
    def test_conv_bn_relu_block(self):
        b = GraphBuilder()
        x = b.input((1, 3, 16, 16))
        out = b.conv_bn_relu(x, 8)
        counts = b.graph.op_type_counts()
        assert counts["Conv2D"] == 1 and counts["BatchNorm"] == 1 and counts["Relu"] == 1
        assert b.graph.nodes[out].output_spec.shape.dims == (1, 8, 16, 16)

    def test_multi_head_attention_shapes(self):
        b = GraphBuilder()
        x = b.input((1, 8, 32))
        out = b.multi_head_attention(x, hidden=32, num_heads=4, seq_len=8, batch=1)
        assert b.graph.nodes[out].output_spec.shape.dims == (1, 8, 32)
        counts = b.graph.op_type_counts()
        assert counts["BatchMatMul"] == 2 and counts["Softmax"] == 1

    def test_transformer_block_residuals(self):
        b = GraphBuilder()
        x = b.input((1, 8, 32))
        out = b.transformer_block(x, hidden=32, num_heads=4, seq_len=8)
        g = b.build([out])
        assert g.nodes[out].op_type is OpType.ADD
        assert g.nodes[out].output_spec.shape.dims == (1, 8, 32)

    def test_transformer_ffn_activation_choice(self):
        b = GraphBuilder()
        x = b.input((1, 4, 16))
        b.transformer_ffn(x, 16, 32, activation="relu")
        assert "Relu" in b.graph.op_type_counts()
