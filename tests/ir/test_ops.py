"""Tests for operator signatures and shape inference."""

import pytest

from repro.ir.ops import (OP_REGISTRY, OpType, infer_output_spec, num_op_types,
                          op_index)
from repro.ir.tensor import make_spec


def spec(*dims, constant=False):
    return make_spec(*dims, constant=constant)


class TestRegistry:
    def test_all_ops_registered(self):
        assert set(OP_REGISTRY) == set(OpType)

    def test_op_index_is_stable_and_unique(self):
        indices = [op_index(op) for op in OpType]
        assert sorted(indices) == list(range(num_op_types()))

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            OP_REGISTRY[OpType.MATMUL].validate_arity(3)
        OP_REGISTRY[OpType.MATMUL].validate_arity(2)


class TestShapeInference:
    def test_matmul(self):
        out = infer_output_spec(OpType.MATMUL, [spec(4, 8), spec(8, 16)])
        assert out.shape.dims == (4, 16)

    def test_matmul_batched(self):
        out = infer_output_spec(OpType.BATCH_MATMUL, [spec(2, 4, 8), spec(2, 8, 3)])
        assert out.shape.dims == (2, 4, 3)

    def test_matmul_mismatch(self):
        with pytest.raises(ValueError):
            infer_output_spec(OpType.MATMUL, [spec(4, 8), spec(9, 16)])

    def test_conv2d_same_padding(self):
        out = infer_output_spec(OpType.CONV2D, [spec(1, 3, 32, 32), spec(8, 3, 3, 3)],
                                {"stride": 1, "padding": "same"})
        assert out.shape.dims == (1, 8, 32, 32)

    def test_conv2d_stride_two(self):
        out = infer_output_spec(OpType.CONV2D, [spec(1, 3, 32, 32), spec(8, 3, 3, 3)],
                                {"stride": 2, "padding": "same"})
        assert out.shape.dims == (1, 8, 16, 16)

    def test_conv2d_valid_padding(self):
        out = infer_output_spec(OpType.CONV2D, [spec(1, 3, 32, 32), spec(8, 3, 3, 3)],
                                {"stride": 1, "padding": "valid"})
        assert out.shape.dims == (1, 8, 30, 30)

    def test_pooling(self):
        out = infer_output_spec(OpType.MAXPOOL2D, [spec(1, 8, 16, 16)],
                                {"kernel": 2, "stride": 2})
        assert out.shape.dims == (1, 8, 8, 8)

    def test_global_avgpool(self):
        out = infer_output_spec(OpType.GLOBAL_AVGPOOL, [spec(2, 8, 7, 7)])
        assert out.shape.dims == (2, 8)

    def test_broadcast_add(self):
        out = infer_output_spec(OpType.ADD, [spec(4, 8), spec(8)])
        assert out.shape.dims == (4, 8)

    def test_broadcast_incompatible(self):
        with pytest.raises(ValueError):
            infer_output_spec(OpType.ADD, [spec(4, 8), spec(5)])

    def test_reshape(self):
        out = infer_output_spec(OpType.RESHAPE, [spec(2, 6)], {"shape": (3, 4)})
        assert out.shape.dims == (3, 4)

    def test_reshape_element_mismatch(self):
        with pytest.raises(ValueError):
            infer_output_spec(OpType.RESHAPE, [spec(2, 6)], {"shape": (5, 3)})

    def test_transpose_default_and_perm(self):
        out = infer_output_spec(OpType.TRANSPOSE, [spec(2, 3, 4)], {"perm": (0, 2, 1)})
        assert out.shape.dims == (2, 4, 3)
        out = infer_output_spec(OpType.TRANSPOSE, [spec(2, 3)])
        assert out.shape.dims == (3, 2)

    def test_transpose_invalid_perm(self):
        with pytest.raises(ValueError):
            infer_output_spec(OpType.TRANSPOSE, [spec(2, 3)], {"perm": (0, 0)})

    def test_concat(self):
        out = infer_output_spec(OpType.CONCAT, [spec(1, 4, 8, 8), spec(1, 6, 8, 8)],
                                {"axis": 1})
        assert out.shape.dims == (1, 10, 8, 8)

    def test_split(self):
        out = infer_output_spec(OpType.SPLIT, [spec(1, 8, 4, 4)], {"axis": 1, "parts": 2})
        assert out.shape.dims == (1, 4, 4, 4)

    def test_split_indivisible(self):
        with pytest.raises(ValueError):
            infer_output_spec(OpType.SPLIT, [spec(1, 7, 4, 4)], {"axis": 1, "parts": 2})

    def test_slice(self):
        out = infer_output_spec(OpType.SLICE, [spec(1, 10, 4, 4)],
                                {"axis": 1, "start": 2, "end": 7})
        assert out.shape.dims == (1, 5, 4, 4)

    def test_slice_out_of_range(self):
        with pytest.raises(ValueError):
            infer_output_spec(OpType.SLICE, [spec(1, 4)], {"axis": 1, "start": 2, "end": 6})

    def test_reduce(self):
        out = infer_output_spec(OpType.REDUCE_MEAN, [spec(2, 5, 7)], {"axis": 1})
        assert out.shape.dims == (2, 7)
        out = infer_output_spec(OpType.REDUCE_MEAN, [spec(2, 5, 7)],
                                {"axis": 1, "keepdims": True})
        assert out.shape.dims == (2, 1, 7)

    def test_embedding(self):
        out = infer_output_spec(OpType.EMBEDDING, [spec(100, 16), spec(2, 12)])
        assert out.shape.dims == (2, 12, 16)

    def test_flatten(self):
        out = infer_output_spec(OpType.FLATTEN, [spec(2, 3, 4, 5)])
        assert out.shape.dims == (2, 60)

    def test_sources_require_shape(self):
        with pytest.raises(ValueError):
            infer_output_spec(OpType.INPUT, [], {})
        out = infer_output_spec(OpType.WEIGHT, [], {"shape": (3, 3)})
        assert out.is_constant

    def test_elementwise_unary_passthrough(self):
        for op in (OpType.RELU, OpType.GELU, OpType.SOFTMAX, OpType.LAYERNORM):
            out = infer_output_spec(op, [spec(2, 8)])
            assert out.shape.dims == (2, 8)


class TestExecutorFoundRegressions:
    """Shape-inference bugs surfaced by the numpy executor (the executed
    shape is the oracle — see tests/exec/test_executor_shapes.py)."""

    def test_rank1_reduce_yields_scalar(self):
        # Reducing the only axis without keepdims is a scalar (), not (1,):
        # numpy's sum over axis 0 of a (5,) array has shape ().
        out = infer_output_spec(OpType.REDUCE_SUM, [spec(5)], {"axis": 0})
        assert out.shape.dims == ()
        out = infer_output_spec(OpType.REDUCE_SUM, [spec(5)],
                                {"axis": 0, "keepdims": True})
        assert out.shape.dims == (1,)

    def test_batch_matmul_broadcasts_batch_dims(self):
        # numpy matmul broadcasts leading batch dims; inference must agree.
        out = infer_output_spec(OpType.BATCH_MATMUL,
                                [spec(1, 3, 4, 5), spec(2, 1, 5, 6)])
        assert out.shape.dims == (2, 3, 4, 6)
        out = infer_output_spec(OpType.BATCH_MATMUL,
                                [spec(7, 4, 5), spec(5, 6)])
        assert out.shape.dims == (7, 4, 6)

    def test_batch_matmul_incompatible_batch_dims_rejected(self):
        with pytest.raises(ValueError):
            infer_output_spec(OpType.BATCH_MATMUL,
                              [spec(2, 4, 5), spec(3, 5, 6)])
