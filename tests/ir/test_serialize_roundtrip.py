"""Cache-key correctness: serialisation round-trips must preserve
``structural_hash()`` for every model in the zoo.

The fingerprint cache keys on ``Graph.structural_hash()``; the persistent
tier stores graphs through ``graph_to_dict``/``graph_from_dict``.  If a
round-trip perturbed the hash, a reloaded cache entry would never match the
request that produced it.
"""

import json

import pytest

from repro.experiments import build_small_model
from repro.ir import graph_from_dict, graph_to_dict
from repro.models import MODEL_REGISTRY, build_model
from repro.service import request_fingerprint


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
class TestRegistryRoundTrip:
    def test_full_size_round_trip_preserves_hash(self, name):
        graph = build_model(name)
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.structural_hash() == graph.structural_hash()
        assert restored.num_nodes == graph.num_nodes
        assert restored.num_edges == graph.num_edges

    def test_reduced_size_round_trip_survives_json_text(self, name):
        # The persistent cache tier goes through actual JSON text, not just
        # dicts — exercise the same path.
        graph = build_small_model(name)
        data = json.loads(json.dumps(graph_to_dict(graph)))
        restored = graph_from_dict(data)
        assert restored.structural_hash() == graph.structural_hash()

    def test_round_trip_preserves_request_fingerprint(self, name):
        graph = build_small_model(name)
        restored = graph_from_dict(graph_to_dict(graph))
        assert request_fingerprint(restored, "taso", {"max_iterations": 10}) \
            == request_fingerprint(graph, "taso", {"max_iterations": 10})
