"""Tests for tensor shape and spec descriptors."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.tensor import DataType, TensorShape, TensorSpec, make_spec, MAX_RANK


class TestTensorShape:
    def test_basic_properties(self):
        shape = TensorShape((2, 3, 4))
        assert shape.rank == 3
        assert shape.num_elements == 24
        assert shape.dim(1) == 3
        assert shape.dim(-1) == 4
        assert list(shape) == [2, 3, 4]
        assert len(shape) == 3
        assert shape[0] == 2

    def test_scalar_shape(self):
        shape = TensorShape(())
        assert shape.rank == 0
        assert shape.num_elements == 1

    def test_rejects_negative_dims(self):
        with pytest.raises(ValueError):
            TensorShape((2, -1))

    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError):
            TensorShape((0, 4))

    def test_rejects_excess_rank(self):
        with pytest.raises(ValueError):
            TensorShape((1, 2, 3, 4, 5))

    def test_padded_encoding(self):
        assert TensorShape((3, 5)).padded(4) == (0, 0, 3, 5)
        assert TensorShape((1, 3, 5, 5)).padded(4) == (1, 3, 5, 5)

    def test_padded_rejects_larger_rank(self):
        with pytest.raises(ValueError):
            TensorShape((1, 2, 3)).padded(2)

    def test_with_dim(self):
        assert TensorShape((2, 3)).with_dim(1, 7).dims == (2, 7)

    def test_concat(self):
        a = TensorShape((2, 3, 4))
        b = TensorShape((2, 5, 4))
        assert a.concat(b, axis=1).dims == (2, 8, 4)

    def test_concat_mismatch(self):
        with pytest.raises(ValueError):
            TensorShape((2, 3)).concat(TensorShape((4, 3)), axis=1)

    def test_concat_rank_mismatch(self):
        with pytest.raises(ValueError):
            TensorShape((2, 3)).concat(TensorShape((2, 3, 1)), axis=0)

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=0, max_size=MAX_RANK))
    def test_num_elements_is_product(self, dims):
        shape = TensorShape(dims)
        product = 1
        for d in dims:
            product *= d
        assert shape.num_elements == product

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=MAX_RANK))
    def test_padded_preserves_trailing_dims(self, dims):
        padded = TensorShape(dims).padded()
        assert padded[-len(dims):] == tuple(dims)
        assert all(d == 0 for d in padded[:-len(dims)])


class TestTensorSpec:
    def test_size_bytes(self):
        spec = TensorSpec(TensorShape((2, 4)), DataType.FLOAT32)
        assert spec.size_bytes == 2 * 4 * 4
        half = TensorSpec(TensorShape((2, 4)), DataType.FLOAT16)
        assert half.size_bytes == 2 * 4 * 2

    def test_with_shape(self):
        spec = make_spec(1, 2, 3, constant=True, name="w")
        new = spec.with_shape((6,))
        assert new.shape.dims == (6,)
        assert new.is_constant and new.name == "w"

    def test_round_trip_dict(self):
        spec = make_spec(1, 3, 8, 8, constant=True, name="weights")
        restored = TensorSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_dtype_sizes(self):
        assert DataType.INT64.size_bytes == 8
        assert DataType.BOOL.size_bytes == 1
