"""Tests for the baseline optimisers (TASO, Tensat, PET, random search)."""

import pytest

from repro.cost import CostModel
from repro.models import build_model
from repro.rules import default_ruleset, graphs_equivalent
from repro.search import (GraphSpace, GreedyOptimizer, PETOptimizer,
                          RandomSearchOptimizer, TASOOptimizer, TensatOptimizer,
                          pet_ruleset)
from repro.search.pet import ConvToWinogradGemm


@pytest.fixture(scope="module")
def squeezenet():
    return build_model("squeezenet")


class TestTASO:
    def test_never_worse_than_input_on_cost_model(self, conv_graph):
        result = TASOOptimizer(max_iterations=10).optimise(conv_graph, "conv")
        assert result.final_cost_ms <= result.initial_cost_ms + 1e-12
        result.final_graph.validate()

    def test_finds_fusions_on_conv_graph(self, conv_graph):
        result = TASOOptimizer(max_iterations=10).optimise(conv_graph, "conv")
        assert result.speedup > 1.0
        assert any(name.startswith("fuse") for name in result.applied_rules)

    def test_result_metadata(self, conv_graph):
        result = TASOOptimizer(max_iterations=5).optimise(conv_graph, "conv")
        assert result.optimiser == "taso"
        assert result.model == "conv"
        assert result.stats["iterations"] <= 5
        assert "ms ->" in result.summary()
        assert sum(result.rule_counts().values()) == len(result.applied_rules)

    def test_transformation_preserves_semantics(self, attention_graph):
        # Restrict to exactly-equivalent rules so the interpreter can verify
        # the whole transformation sequence end to end.
        from repro.rules import RuleSet
        exact = RuleSet([r for r in default_ruleset() if r.exactly_equivalent])
        result = TASOOptimizer(ruleset=exact, max_iterations=15).optimise(
            attention_graph, "attention")
        assert graphs_equivalent(attention_graph, result.final_graph)

    def test_budget_zero_returns_input(self, conv_graph):
        result = TASOOptimizer(max_iterations=0).optimise(conv_graph, "conv")
        assert result.final_graph.structural_hash() == conv_graph.structural_hash()

    def test_greedy_variant_is_taso_without_tolerance(self, conv_graph):
        greedy = GreedyOptimizer(max_iterations=10)
        assert greedy.alpha == 1.0
        result = greedy.optimise(conv_graph, "conv")
        assert result.optimiser == "greedy"
        assert result.final_cost_ms <= result.initial_cost_ms + 1e-12


class TestTensat:
    def test_explore_is_bounded(self, conv_graph):
        space = GraphSpace(default_ruleset(), node_limit=200, round_limit=3)
        population, stats = space.explore(conv_graph)
        assert stats.graphs_explored == len(population)
        assert stats.total_nodes <= 200 + max(g.num_nodes for g, _ in population)

    def test_extraction_picks_cheapest(self, conv_graph):
        space = GraphSpace(default_ruleset(), node_limit=5000, round_limit=3)
        population, _ = space.explore(conv_graph)
        cm = CostModel()
        best, _, best_cost = space.extract(population, cm)
        assert best_cost == min(cm.estimate(g) for g, _ in population)

    def test_optimise_improves_or_matches(self, conv_graph):
        result = TensatOptimizer(round_limit=3).optimise(conv_graph, "conv")
        assert result.final_cost_ms <= result.initial_cost_ms + 1e-12
        result.final_graph.validate()

    def test_multi_pattern_limit_restricts_merges(self, attention_graph):
        liberal = GraphSpace(default_ruleset(), node_limit=50000, round_limit=3,
                             multi_pattern_rounds=3, per_round_cap=100)
        strict = GraphSpace(default_ruleset(), node_limit=50000, round_limit=3,
                            multi_pattern_rounds=0, per_round_cap=100)
        _, stats_liberal = liberal.explore(attention_graph)
        _, stats_strict = strict.explore(attention_graph)
        assert stats_strict.applied_rules.get("merge-matmuls", 0) == 0
        assert stats_liberal.applied_rules.get("merge-matmuls", 0) >= 1


class TestPET:
    def test_winograd_rule_matches_dense_3x3_only(self, fire_graph):
        rule = ConvToWinogradGemm()
        matches = rule.find_matches(fire_graph)
        # fire module has exactly one 3x3 stride-1 convolution
        assert len(matches) == 1
        transformed = rule.apply(fire_graph, matches[0])
        transformed.validate()
        conv_attrs = [n.attrs.get("algorithm") for n in transformed.nodes.values()
                      if n.op_type.value == "Conv2D"]
        assert "winograd" in conv_attrs

    def test_pet_ruleset_includes_partial_rule(self):
        assert "conv-to-winograd" in pet_ruleset().names()

    def test_pet_uses_elementwise_blind_cost_model(self):
        assert PETOptimizer().cost_model.ignore_elementwise

    def test_pet_beats_taso_on_resnet18_style_graph(self):
        # Needs enough search depth for PET to rewrite most 3x3 convolutions
        # to the Winograd algorithm (the paper's Table 2 crossover).
        graph = build_model("resnet18")
        taso = TASOOptimizer(max_iterations=60).optimise(graph, "resnet18")
        pet = PETOptimizer(max_iterations=60).optimise(graph, "resnet18")
        assert pet.final_latency_ms < taso.final_latency_ms


class TestRandomSearch:
    def test_random_search_never_worse(self, conv_graph):
        result = RandomSearchOptimizer(num_walks=2, horizon=5, seed=1).optimise(
            conv_graph, "conv")
        assert result.final_latency_ms <= result.initial_latency_ms + 1e-12
        result.final_graph.validate()

    def test_random_search_deterministic_given_seed(self, conv_graph):
        a = RandomSearchOptimizer(num_walks=2, horizon=5, seed=7).optimise(conv_graph)
        b = RandomSearchOptimizer(num_walks=2, horizon=5, seed=7).optimise(conv_graph)
        assert a.final_latency_ms == pytest.approx(b.final_latency_ms)
