"""The parallel search engine's determinism and resilience contract.

``parallel=True`` is an *execution strategy*, not a different search: every
optimiser must retrace its serial trajectory bit-for-bit (float64 costs,
byte-identical hashes, identical rule sequences).  These tests hold that
line for all five optimisers plus the RL environment's batched candidate
costing, and prove the pool degrades to inline evaluation — with unchanged
results — when workers die mid-search.
"""

import pytest

from repro.cost import CostModel
from repro.models import build_model
from repro.rl.env import GraphRewriteEnv
from repro.rules import default_ruleset
from repro.search import (GreedyOptimizer, PETOptimizer,
                          RandomSearchOptimizer, TASOOptimizer,
                          TensatOptimizer, WorkerPool, close_shared_pool,
                          shared_pool)
from repro.search.parallel import open_session
from repro.service.registry import create_optimiser


@pytest.fixture(scope="module")
def pool():
    """One prewarmed 2-worker pool shared by the whole module (spawning
    processes per test would dominate the runtime)."""
    with WorkerPool(num_workers=2) as p:
        yield p


@pytest.fixture(scope="module")
def squeezenet():
    return build_model("squeezenet")


def _assert_same_search(serial, parallel):
    """Bit-for-bit: costs are float64-equal, not approx-equal."""
    assert parallel.final_cost_ms == serial.final_cost_ms
    assert parallel.initial_cost_ms == serial.initial_cost_ms
    assert parallel.final_graph.structural_hash() \
        == serial.final_graph.structural_hash()
    assert parallel.applied_rules == serial.applied_rules


class TestTrajectoryEquivalence:
    """Serial and pooled searches are the same search."""

    @pytest.mark.parametrize("incremental", [True, False])
    def test_taso(self, pool, squeezenet, incremental):
        serial = TASOOptimizer(max_iterations=8, incremental=incremental)
        pooled = TASOOptimizer(max_iterations=8, incremental=incremental,
                               pool=pool)
        s = serial.optimise(squeezenet, "squeezenet")
        p = pooled.optimise(squeezenet, "squeezenet")
        _assert_same_search(s, p)
        assert s.stats["iterations"] == p.stats["iterations"]
        assert s.stats["candidates_evaluated"] == \
            p.stats["candidates_evaluated"]
        assert p.stats["parallel"] and not s.stats["parallel"]
        assert p.stats["fallback_batches"] == 0
        assert p.stats["bytes_shipped"] > 0

    def test_greedy(self, pool, squeezenet):
        s = GreedyOptimizer(max_iterations=8).optimise(squeezenet, "sq")
        p = GreedyOptimizer(max_iterations=8, pool=pool).optimise(
            squeezenet, "sq")
        _assert_same_search(s, p)

    def test_pet(self, pool, conv_graph):
        s = PETOptimizer(max_iterations=8).optimise(conv_graph, "conv")
        p = PETOptimizer(max_iterations=8, pool=pool).optimise(
            conv_graph, "conv")
        _assert_same_search(s, p)

    def test_tensat(self, pool, squeezenet):
        s = TensatOptimizer(round_limit=3).optimise(squeezenet, "sq")
        p = TensatOptimizer(round_limit=3, pool=pool).optimise(
            squeezenet, "sq")
        _assert_same_search(s, p)
        assert s.stats["graphs_explored"] == p.stats["graphs_explored"]

    def test_random_search(self, pool, squeezenet):
        s = RandomSearchOptimizer(num_walks=3, horizon=8, seed=11).optimise(
            squeezenet, "sq")
        p = RandomSearchOptimizer(num_walks=3, horizon=8, seed=11,
                                  pool=pool).optimise(squeezenet, "sq")
        _assert_same_search(s, p)

    def test_num_workers_knob_spins_private_pool(self, conv_graph):
        s = TASOOptimizer(max_iterations=5).optimise(conv_graph, "conv")
        p = TASOOptimizer(max_iterations=5, parallel=True,
                          num_workers=2).optimise(conv_graph, "conv")
        _assert_same_search(s, p)

    def test_registry_wires_parallel_config_through(self, pool, conv_graph):
        opt = create_optimiser("taso", max_iterations=5, parallel=True,
                               num_workers=2)
        assert opt.parallel and opt.num_workers == 2
        s = create_optimiser("taso", max_iterations=5).optimise(
            conv_graph, "conv")
        _assert_same_search(s, opt.optimise(conv_graph, "conv"))


class TestRLBatchedCosting:
    def test_candidate_costs_match_serial(self, pool, conv_graph):
        serial_env = GraphRewriteEnv(conv_graph)
        pooled_env = GraphRewriteEnv(conv_graph, pool=pool)
        serial_env.reset()
        pooled_env.reset()
        for _ in range(3):
            expected = serial_env.candidate_costs()
            got = pooled_env.candidate_costs()
            assert got == expected  # float64-exact, not approx
            obs = serial_env._observe()
            if not obs.candidates:
                break
            action = 0
            serial_env.step(action)
            pooled_env.step(action)


class TestResilience:
    """A dying worker degrades throughput, never results."""

    def test_kill_one_worker_mid_session(self, squeezenet):
        """A worker killed *after* the session opened: its shard falls back
        to inline evaluation and the results are unchanged."""
        from repro.search.parallel import evaluate_candidates_inline

        ruleset = default_ruleset()
        cost_model = CostModel()
        candidates = ruleset.all_candidates(squeezenet)
        expected = [res for _, res in evaluate_candidates_inline(
            squeezenet, ruleset,
            [(i, c.rule_name, c.match) for i, c in enumerate(candidates)],
            cost_model=cost_model)]
        with WorkerPool(num_workers=2) as pool:
            session = pool.start_search(squeezenet, ruleset,
                                        cost_model=cost_model)
            victim = pool.alive_workers()[0]
            victim.process.kill()
            victim.process.join(timeout=5)
            got = session.evaluate(squeezenet, candidates)
            assert session.fallback_batches > 0
            session.close()
        assert got == expected

    def test_dead_worker_before_search_keeps_results(self, squeezenet):
        serial = TASOOptimizer(max_iterations=8).optimise(squeezenet, "sq")
        with WorkerPool(num_workers=2) as pool:
            victim = pool.alive_workers()[0]
            victim.process.kill()
            victim.process.join(timeout=5)
            pooled = TASOOptimizer(max_iterations=8, pool=pool).optimise(
                squeezenet, "sq")
        _assert_same_search(serial, pooled)

    def test_all_workers_dead_falls_back_inline(self, squeezenet):
        serial = TASOOptimizer(max_iterations=6).optimise(squeezenet, "sq")
        with WorkerPool(num_workers=2) as pool:
            for worker in pool.alive_workers():
                worker.process.kill()
                worker.process.join(timeout=5)
            pooled = TASOOptimizer(max_iterations=6, pool=pool).optimise(
                squeezenet, "sq")
        _assert_same_search(serial, pooled)

    def test_closed_pool_session_is_refused(self, conv_graph):
        pool = WorkerPool(num_workers=1)
        pool.close()
        assert not pool.healthy
        session = open_session(True, pool, None, conv_graph,
                               default_ruleset(), cost_model=CostModel())
        assert session is None


class TestPoolLifecycle:
    def test_shared_pool_is_reused_and_closable(self):
        a = shared_pool(num_workers=1)
        b = shared_pool(num_workers=1)
        assert a is b
        assert a.healthy
        close_shared_pool()
        assert not a.healthy
        c = shared_pool(num_workers=1)
        assert c is not a and c.healthy
        close_shared_pool()

    def test_serial_mode_opens_no_session(self, conv_graph):
        session = open_session(False, None, None, conv_graph,
                               default_ruleset(), cost_model=CostModel())
        assert session is None

    def test_stats_report_pool_shape(self, pool, conv_graph):
        result = TASOOptimizer(max_iterations=5, pool=pool).optimise(
            conv_graph, "conv")
        assert result.stats["pool_workers"] == 2
