"""Per-op bridge conformance: every bridged ONNX op imports faithfully.

Each case in :data:`repro.frontend.conformance.CONFORMANCE_CASES` is a
minimal foreign model for one bridged op.  Importing it must produce zero
fallbacks, execute to exactly the declared output shapes, and survive an
export -> import round-trip hash-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import ImportError_, import_model, to_spec
from repro.frontend.conformance import CONFORMANCE_CASES
from repro.frontend.ops_bridge import bridged_ops
from repro.frontend.serialize import (GraphSpec, ModelSpec, NodeSpec,
                                      TensorInfo, ValueInfo,
                                      loads_model_spec, model_spec_to_bytes)
from repro.exec import NumpyExecutor
from repro.ir.ops import OpType


def test_every_bridged_op_has_a_conformance_case():
    assert set(CONFORMANCE_CASES) == set(bridged_ops(""))


def test_bridge_table_meets_the_coverage_floor():
    assert len(bridged_ops("")) >= 30


@pytest.mark.parametrize("op", sorted(CONFORMANCE_CASES))
def test_conformance_case_imports_without_fallbacks(op):
    graph, report = import_model(CONFORMANCE_CASES[op]())
    assert report.num_fallbacks == 0, report.summary()
    graph.validate()


@pytest.mark.parametrize("op", sorted(CONFORMANCE_CASES))
def test_conformance_case_executes_to_declared_shapes(op):
    spec = CONFORMANCE_CASES[op]()
    graph, _ = import_model(spec)
    declared = sorted(tuple(v.dims) for v in spec.graph.outputs)

    # Inferred shapes feeding the sink must match the declared outputs...
    sink = [n for n, node in graph.nodes.items()
            if node.op_type is OpType.OUTPUT][0]
    inferred = sorted(tuple(s.shape.dims) for s in graph.input_specs(sink))
    assert inferred == declared

    # ... and execution must realise the sink's spec (the IR Output node
    # exposes its first input, so multi-output graphs check slot 0 here).
    outputs, _ = NumpyExecutor().run(graph)
    executed = sorted(np.asarray(v).shape for v in outputs.values())
    expected = sorted(tuple(s.shape.dims)
                      for s in graph.nodes[sink].outputs)
    assert executed == expected


@pytest.mark.parametrize("op", sorted(CONFORMANCE_CASES))
def test_conformance_case_round_trips_hash_identically(op):
    graph, _ = import_model(CONFORMANCE_CASES[op]())
    again, report = import_model(
        loads_model_spec(model_spec_to_bytes(to_spec(graph))))
    assert report.num_fallbacks == 0, report.summary()
    assert graph.structural_hash() == again.structural_hash()


# ---------------------------------------------------------------------------
# Targeted bridge behaviours
# ---------------------------------------------------------------------------

def _ops_of(graph):
    return [graph.nodes[n].op_type for n in graph.topological_order()]


def test_gemm_transb_lowers_to_transpose_matmul_add():
    graph, _ = import_model(CONFORMANCE_CASES["Gemm"]())
    ops = _ops_of(graph)
    assert OpType.TRANSPOSE in ops and OpType.MATMUL in ops
    assert OpType.ADD in ops


def test_matmul_rank_rule_selects_batch_matmul():
    g = GraphSpec(name="bmm")
    g.inputs.append(ValueInfo("a", (2, 3, 4)))
    g.inputs.append(ValueInfo("b", (2, 4, 5)))
    g.nodes.append(NodeSpec("MatMul", ("a", "b"), ("y",), {}, "mm"))
    g.outputs.append(ValueInfo("y", (2, 3, 5)))
    graph, _ = import_model(ModelSpec(g))
    assert OpType.BATCH_MATMUL in _ops_of(graph)

    # rank-3 x rank-2 is the builder's Linear: plain MatMul
    g2 = GraphSpec(name="linear")
    g2.inputs.append(ValueInfo("a", (2, 3, 4)))
    g2.initializers.append(TensorInfo("w", (4, 5)))
    g2.nodes.append(NodeSpec("MatMul", ("a", "w"), ("y",), {}, "mm"))
    g2.outputs.append(ValueInfo("y", (2, 3, 5)))
    graph2, _ = import_model(ModelSpec(g2))
    ops = _ops_of(graph2)
    assert OpType.MATMUL in ops and OpType.BATCH_MATMUL not in ops


def test_pow_square_lowers_to_mul():
    graph, _ = import_model(CONFORMANCE_CASES["Pow"]())
    ops = _ops_of(graph)
    assert OpType.MUL in ops


def test_neg_lowers_to_mul_by_minus_one():
    graph, _ = import_model(CONFORMANCE_CASES["Neg"]())
    ops = _ops_of(graph)
    assert OpType.MUL in ops and OpType.CONSTANT in ops


def test_global_average_pool_lowers_to_pool_plus_reshape():
    graph, _ = import_model(CONFORMANCE_CASES["GlobalAveragePool"]())
    ops = _ops_of(graph)
    assert OpType.GLOBAL_AVGPOOL in ops and OpType.RESHAPE in ops


def test_gather_over_rank2_table_becomes_embedding():
    graph, _ = import_model(CONFORMANCE_CASES["Gather"]())
    assert OpType.EMBEDDING in _ops_of(graph)


def test_unsupported_attr_degrades_to_custom_fallback():
    g = GraphSpec(name="dilated")
    g.inputs.append(ValueInfo("x", (1, 3, 8, 8)))
    g.initializers.append(TensorInfo("w", (4, 3, 3, 3)))
    g.nodes.append(NodeSpec("Conv", ("x", "w"), ("y",),
                            {"kernel_shape": (3, 3), "dilations": (2, 2)},
                            "conv"))
    g.outputs.append(ValueInfo("y", (1, 4, 4, 4)))
    graph, report = import_model(ModelSpec(g))
    assert report.fallbacks == {"Conv": 1}
    assert "dilated" in report.fallback_reasons["conv"]
    assert any(graph.nodes[n].op_type is OpType.CUSTOM for n in graph.nodes)


def test_strict_mode_raises_on_unbridged_op():
    g = GraphSpec(name="strict")
    g.inputs.append(ValueInfo("x", (2, 4)))
    g.nodes.append(NodeSpec("Mish", ("x",), ("y",), {}, "mish"))
    g.outputs.append(ValueInfo("y", (2, 4)))
    with pytest.raises(ImportError_):
        import_model(ModelSpec(g), strict=True)


def test_import_report_summary_names_fallbacks():
    g = GraphSpec(name="report")
    g.inputs.append(ValueInfo("x", (2, 4)))
    g.nodes.append(NodeSpec("Mish", ("x",), ("y",), {}, "mish"))
    g.nodes.append(NodeSpec("Relu", ("y",), ("z",), {}, "relu"))
    g.outputs.append(ValueInfo("z", (2, 4)))
    g.value_infos.append(ValueInfo("y", (2, 4)))
    _, report = import_model(ModelSpec(g))
    assert report.total_nodes == 2
    assert report.num_fallbacks == 1
    assert report.coverage == pytest.approx(0.5)
    assert "FALLBACK Mish" in report.summary()
