"""Zoo conformance: every generated spec imports cleanly and round-trips.

By default only the smoke subset runs (one variant per family — the
PR-sized gate).  Set ``IMPORT_CONFORMANCE=1`` to sweep the full zoo, as
the CI importer job does on the main branch.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exec import NumpyExecutor
from repro.frontend import import_model, to_spec
from repro.frontend.serialize import loads_model_spec, model_spec_to_bytes
from repro.frontend.zoo import zoo_specs, write_zoo
from repro.models.registry import build_model

FULL = os.environ.get("IMPORT_CONFORMANCE", "") == "1"
SPECS = zoo_specs(smoke=not FULL)


def test_zoo_has_all_three_families():
    families = {name.split("-")[1] for name in zoo_specs()}
    assert families == {"resnet", "bert", "vit"}
    assert len(zoo_specs()) >= 24  # depth/width/batch sweep


@pytest.mark.parametrize("name", sorted(SPECS))
def test_zoo_spec_imports_with_zero_fallbacks(name):
    graph, report = import_model(SPECS[name])
    assert report.num_fallbacks == 0, report.summary()
    graph.validate()


@pytest.mark.parametrize("name", sorted(SPECS))
def test_zoo_spec_round_trips_hash_identically(name):
    graph, _ = import_model(SPECS[name])
    wire = loads_model_spec(model_spec_to_bytes(to_spec(graph)))
    again, report = import_model(wire)
    assert report.num_fallbacks == 0, report.summary()
    assert graph.structural_hash() == again.structural_hash()


@pytest.mark.parametrize("name", sorted(SPECS))
def test_zoo_spec_executes_to_declared_output_shapes(name):
    spec = SPECS[name]
    graph, _ = import_model(spec)
    outputs, _ = NumpyExecutor().run(graph)
    declared = sorted(tuple(v.dims) for v in spec.graph.outputs)
    executed = sorted(np.asarray(v).shape for v in outputs.values())
    assert executed == declared


def test_write_zoo_files_load_through_the_registry(tmp_path):
    paths = write_zoo(tmp_path, fmt="onnx", smoke=True)
    assert len(paths) == 3
    for path in paths:
        graph = build_model(f"onnx:{path}")
        assert len(graph.nodes) > 5


def test_write_zoo_json_flavour(tmp_path):
    (path,) = write_zoo(tmp_path, fmt="json", smoke=True)[:1]
    assert path.suffix == ".json"
    graph = build_model(f"onnx:{path}")
    graph.validate()
