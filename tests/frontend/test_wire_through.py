"""Imported graphs as first-class citizens: registry scheme, service CLI,
and the search/RL stack running over a model that came in through ONNX."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import differential_check
from repro.frontend import to_onnx
from repro.frontend.zoo import build_bert_spec, build_resnet_spec
from repro.frontend.serialize import save_model_spec
from repro.models.registry import build_model
from repro.rl.env import GraphRewriteEnv
from repro.rules import exact_ruleset
from repro.search import TASOOptimizer
from repro.service.cli import main as service_main


@pytest.fixture()
def resnet_path(tmp_path):
    path = tmp_path / "resnet.onnx"
    save_model_spec(build_resnet_spec(blocks=1, width=8), path)
    return path


def test_registry_scheme_builds_imported_graph(resnet_path):
    graph = build_model(f"onnx:{resnet_path}")
    graph.validate()
    assert len(graph.nodes) > 10


def test_registry_scheme_strict_kwarg(resnet_path):
    graph = build_model(f"onnx:{resnet_path}", strict=True)
    graph.validate()


def test_registry_scheme_rejects_builder_kwargs(resnet_path):
    with pytest.raises(TypeError):
        build_model(f"onnx:{resnet_path}", batch=4)


def test_registry_scheme_missing_file_errors():
    with pytest.raises(OSError):
        build_model("onnx:/nonexistent/model.onnx")


def test_unknown_name_mentions_the_onnx_scheme():
    with pytest.raises(KeyError, match="onnx:"):
        build_model("definitely_not_a_model")


def test_service_cli_import_flag(resnet_path, capsys):
    code = service_main(["--import", str(resnet_path), "--workers", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[import]" in out and "coverage 100.0%" in out
    assert "onnx:resnet" in out


def test_service_cli_import_missing_file():
    with pytest.raises(SystemExit):
        service_main(["--import", "/nonexistent/model.onnx"])


def test_taso_search_improves_imported_model(resnet_path):
    graph = build_model(f"onnx:{resnet_path}")
    result = TASOOptimizer(ruleset=exact_ruleset(),
                           max_iterations=12).optimise(graph, "zoo-resnet")
    assert result.final_cost_ms <= result.initial_cost_ms
    report = differential_check(graph, result.final_graph)
    assert report.equivalent, report.problems


def test_rl_episode_over_imported_model(tmp_path):
    path = tmp_path / "bert.onnx"
    save_model_spec(build_bert_spec(layers=1, hidden=32, heads=2, seq=8),
                    path)
    graph = build_model(f"onnx:{path}")
    env = GraphRewriteEnv(graph, ruleset=exact_ruleset(), max_steps=6)
    obs = env.reset()
    rng = np.random.default_rng(0)
    for _ in range(6):
        valid = np.flatnonzero(obs.action_mask)
        step = env.step(int(rng.choice(valid)))
        obs = step.observation
        if step.done:
            break
    report = differential_check(graph, env.current_graph,
                                require_values=False)
    assert report.equivalent, report.problems


def test_exported_registry_model_reimports_through_scheme(tmp_path):
    graph = build_model("squeezenet")
    path = tmp_path / "squeezenet.onnx"
    to_onnx(graph, path)
    again = build_model(f"onnx:{path}")
    assert graph.structural_hash() == again.structural_hash()
