"""Export -> import round-trip fidelity for real and fuzzed graphs.

The gate: every registry model and every fuzzer graph must survive
``to_spec`` / ``to_onnx`` and come back with an *identical structural
hash* — imported graphs are first-class citizens of the rewrite engine,
not approximations — and must execute to the same values.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "exec"))
from graphgen import random_graph  # noqa: E402

from repro.exec import NumpyExecutor, random_inputs
from repro.experiments.common import build_small_model
from repro.frontend import import_model, to_onnx, to_spec
from repro.frontend.serialize import (loads_model_spec, model_spec_to_bytes,
                                      model_spec_to_json)
from repro.models.registry import MODEL_REGISTRY

ENCODINGS = {
    "spec": lambda s: s,
    "protobuf": lambda s: loads_model_spec(model_spec_to_bytes(s)),
    "json": lambda s: loads_model_spec(model_spec_to_json(s).encode("utf-8")),
}


@pytest.mark.parametrize("encoding", sorted(ENCODINGS))
@pytest.mark.parametrize("model", sorted(MODEL_REGISTRY))
def test_registry_model_round_trips_hash_identically(model, encoding):
    graph = build_small_model(model)
    spec = ENCODINGS[encoding](to_spec(graph))
    again, report = import_model(spec)
    assert report.num_fallbacks == 0, report.summary()
    assert graph.structural_hash() == again.structural_hash()


def test_to_onnx_file_round_trips(tmp_path):
    graph = build_small_model("squeezenet")
    path = tmp_path / "squeezenet.onnx"
    to_onnx(graph, path)
    again, report = import_model(path)
    assert report.num_fallbacks == 0
    assert graph.structural_hash() == again.structural_hash()


def test_export_records_source_ranks():
    graph = build_small_model("bert")
    spec = to_spec(graph)
    ranked = set(spec.graph.source_ranks)
    sources = {v.name for v in spec.graph.inputs}
    sources |= {t.name for t in spec.graph.initializers}
    assert sources <= ranked  # every input/weight carries its creation rank


@pytest.mark.parametrize("seed", range(10))
def test_fuzzed_graph_round_trips_and_matches_executed_values(seed):
    graph = random_graph(seed=seed)
    spec = loads_model_spec(model_spec_to_bytes(to_spec(graph)))
    again, report = import_model(spec)
    assert report.num_fallbacks == 0, report.summary()
    assert graph.structural_hash() == again.structural_hash()

    # Differential execution across the serialisation boundary.  Input
    # nodes correspond positionally (source-rank replay preserves
    # creation order), so feeds transfer by position.
    executor = NumpyExecutor()
    feeds = random_inputs(graph, seed=seed + 100)
    before_names = [graph.nodes[n].name for n in graph.input_nodes()]
    after_names = [again.nodes[n].name for n in again.input_nodes()]
    out_before, _ = executor.run(graph, feeds)
    out_after, _ = executor.run(
        again, {b: feeds[a] for a, b in zip(before_names, after_names)})
    assert sorted(v.shape for v in out_before.values()) == \
        sorted(v.shape for v in out_after.values())
    for key_b, key_a in zip(sorted(out_before), sorted(out_after)):
        np.testing.assert_allclose(out_before[key_b], out_after[key_a],
                                   rtol=1e-5, atol=1e-6)


def test_double_round_trip_is_stable():
    graph = build_small_model("resnext50")
    once, _ = import_model(to_spec(graph))
    twice, _ = import_model(to_spec(once))
    assert once.structural_hash() == twice.structural_hash()
    assert graph.structural_hash() == twice.structural_hash()
