"""End-to-end life of an unknown foreign op: import as an opaque Custom
node, survive optimisation untouched, execute as a counted pass-through,
and fingerprint deterministically for the service cache."""

from __future__ import annotations

from repro.exec import NumpyExecutor, differential_check
from repro.frontend import import_model, to_spec
from repro.frontend.serialize import (GraphSpec, ModelSpec, NodeSpec,
                                      TensorInfo, ValueInfo,
                                      loads_model_spec, model_spec_to_bytes)
from repro.ir.ops import OPAQUE_OPS, OpType
from repro.rules import exact_ruleset
from repro.search import TASOOptimizer
from repro.service.cache import request_fingerprint


def _mish_model() -> ModelSpec:
    """Conv -> Mish (unknown op) -> Relu, with the Mish shape declared."""
    g = GraphSpec(name="mishnet")
    g.inputs.append(ValueInfo("x", (1, 3, 8, 8)))
    g.initializers.append(TensorInfo("w", (8, 3, 3, 3)))
    g.nodes.append(NodeSpec("Conv", ("x", "w"), ("c",),
                            {"kernel_shape": (3, 3), "strides": (1, 1),
                             "auto_pad": "SAME_UPPER"}, "conv"))
    g.nodes.append(NodeSpec("Mish", ("c",), ("m",), {"beta": 1.0}, "mish"))
    g.nodes.append(NodeSpec("Relu", ("m",), ("y",), {}, "relu"))
    g.outputs.append(ValueInfo("y", (1, 8, 8, 8)))
    g.value_infos.append(ValueInfo("m", (1, 8, 8, 8)))
    return ModelSpec(g)


def _custom_nodes(graph):
    return [node for node in graph.nodes.values()
            if node.op_type is OpType.CUSTOM]


def test_unknown_op_imports_as_custom_with_declared_shape():
    graph, report = import_model(_mish_model())
    assert report.fallbacks == {"Mish": 1}
    assert "bridge" in report.fallback_reasons["mish"]
    (custom,) = _custom_nodes(graph)
    assert custom.attrs["op"] == "Mish"
    assert tuple(custom.attrs["shape"]) == (1, 8, 8, 8)
    assert tuple(custom.outputs[0].shape.dims) == (1, 8, 8, 8)


def test_optimiser_never_rewrites_into_the_opaque_node():
    graph, _ = import_model(_mish_model())
    before = _custom_nodes(graph)[0].attrs
    result = TASOOptimizer(ruleset=exact_ruleset(),
                           max_iterations=10).optimise(graph, "mishnet")
    after = _custom_nodes(result.final_graph)
    assert len(after) == 1  # the opaque node is never fused or eliminated
    assert after[0].attrs == before
    report = differential_check(graph, result.final_graph,
                                require_values=False)
    assert report.equivalent, report.problems


def test_executor_counts_the_custom_pass_through():
    graph, _ = import_model(_mish_model())
    execution = NumpyExecutor().run_detailed(graph)
    assert execution.fallback_ops == {"Custom:Mish": 1}
    assert execution.outputs["output"].shape == (1, 8, 8, 8)


def test_custom_is_opaque_by_contract():
    assert OpType.CUSTOM in OPAQUE_OPS


def test_import_is_deterministic_for_cache_fingerprints():
    spec_bytes = model_spec_to_bytes(_mish_model())
    g1, _ = import_model(loads_model_spec(spec_bytes))
    g2, _ = import_model(loads_model_spec(spec_bytes))
    assert g1.structural_hash() == g2.structural_hash()
    assert request_fingerprint(g1, "taso", {"max_iterations": 10}) == \
        request_fingerprint(g2, "taso", {"max_iterations": 10})


def test_custom_node_round_trips_through_the_repro_domain():
    graph, _ = import_model(_mish_model())
    spec = to_spec(graph)
    custom = [n for n in spec.graph.nodes if n.op_type == "Custom"]
    assert len(custom) == 1 and custom[0].domain == "ai.repro"
    again, report = import_model(spec)
    assert report.num_fallbacks == 0  # repro::Custom is a bridged op
    assert graph.structural_hash() == again.structural_hash()
