"""Wire-codec tests: the protobuf-free .onnx parser and the JSON fallback."""

from __future__ import annotations

import pytest

from repro.frontend.serialize import (GraphSpec, ModelSpec, NodeSpec,
                                      TensorInfo, ValueInfo, load_model_spec,
                                      loads_model_spec, model_spec_to_bytes,
                                      model_spec_to_json, save_model_spec)


def _spec() -> ModelSpec:
    g = GraphSpec(name="wire-test")
    g.inputs.append(ValueInfo("x", (2, 4)))
    g.inputs.append(ValueInfo("idx", (3,), "int64"))
    g.initializers.append(TensorInfo("w", (2, 4), "float32",
                                     (0.1, -2.5, 3.0, 0.0, 1.0, 2.0, 3.0, 4.0)))
    g.initializers.append(TensorInfo("bounds", (2,), "int64", (-1, 7)))
    g.nodes.append(NodeSpec("Add", ("x", "w"), ("sum",), {}, "add0"))
    g.nodes.append(NodeSpec(
        "Fancy", ("sum",), ("y",),
        {"axis": -1, "name": "payload", "ratio": 0.25,
         "ints": (1, -2, 3), "floats": (0.5, 1.5), "strs": ("a", "b"),
         "tensor": TensorInfo("t", (2,), "float32", (1.0, 2.0))},
        "fancy0", "custom.domain"))
    g.outputs.append(ValueInfo("y", (2, 4)))
    g.value_infos.append(ValueInfo("sum", (2, 4)))
    g.source_ranks = {"x": 0, "w": 1, "idx": 2}
    return ModelSpec(g, {"": 17, "custom.domain": 1}, producer="test")


def _assert_specs_equal(a: ModelSpec, b: ModelSpec) -> None:
    assert a.opset == b.opset
    ga, gb = a.graph, b.graph
    assert ga.name == gb.name
    assert [(v.name, tuple(v.dims), v.dtype) for v in ga.inputs] == \
        [(v.name, tuple(v.dims), v.dtype) for v in gb.inputs]
    assert [(v.name, tuple(v.dims)) for v in ga.outputs] == \
        [(v.name, tuple(v.dims)) for v in gb.outputs]
    assert ga.source_ranks == gb.source_ranks
    assert len(ga.nodes) == len(gb.nodes)
    for na, nb in zip(ga.nodes, gb.nodes):
        assert (na.op_type, na.domain) == (nb.op_type, nb.domain)
        assert tuple(na.inputs) == tuple(nb.inputs)
        assert tuple(na.outputs) == tuple(nb.outputs)
        assert set(na.attrs) == set(nb.attrs)


def test_protobuf_round_trip_preserves_structure():
    spec = _spec()
    again = loads_model_spec(model_spec_to_bytes(spec))
    _assert_specs_equal(spec, again)


def test_protobuf_round_trip_preserves_attr_values():
    spec = _spec()
    attrs = loads_model_spec(model_spec_to_bytes(spec)).graph.nodes[1].attrs
    assert attrs["axis"] == -1
    assert attrs["name"] == "payload"
    assert attrs["ratio"] == pytest.approx(0.25)
    assert tuple(attrs["ints"]) == (1, -2, 3)
    assert tuple(attrs["floats"]) == (0.5, 1.5)
    assert tuple(attrs["strs"]) == ("a", "b")
    tensor = attrs["tensor"]
    assert isinstance(tensor, TensorInfo)
    assert tuple(tensor.data) == (1.0, 2.0)


def test_protobuf_round_trip_preserves_int64_payloads():
    spec = _spec()
    again = loads_model_spec(model_spec_to_bytes(spec))
    bounds = [t for t in again.graph.initializers if t.name == "bounds"][0]
    assert tuple(bounds.data) == (-1, 7)
    assert bounds.dtype == "int64"


def test_json_round_trip_preserves_structure():
    spec = _spec()
    again = loads_model_spec(model_spec_to_json(spec).encode("utf-8"))
    _assert_specs_equal(spec, again)


def test_loads_sniffs_json_vs_protobuf():
    spec = _spec()
    assert loads_model_spec(model_spec_to_bytes(spec)).graph.name == "wire-test"
    assert loads_model_spec(
        model_spec_to_json(spec).encode()).graph.name == "wire-test"


def test_save_load_by_extension(tmp_path):
    spec = _spec()
    for suffix in (".onnx", ".json"):
        path = tmp_path / f"m{suffix}"
        save_model_spec(spec, path)
        _assert_specs_equal(spec, load_model_spec(path))
    # .onnx files are binary protobuf, .json files are text
    assert (tmp_path / "m.onnx").read_bytes()[:1] != b"{"
    assert (tmp_path / "m.json").read_text().lstrip()[0] == "{"


def test_large_float_payloads_are_dropped():
    g = GraphSpec(name="big")
    g.initializers.append(TensorInfo("w", (100, 100), "float32",
                                     tuple(float(i) for i in range(10000))))
    g.inputs.append(ValueInfo("x", (100, 100)))
    g.nodes.append(NodeSpec("Add", ("x", "w"), ("y",), {}, "add"))
    g.outputs.append(ValueInfo("y", (100, 100)))
    again = loads_model_spec(model_spec_to_bytes(ModelSpec(g)))
    w = again.graph.initializers[0]
    assert w.data is None  # payload discarded; shape/dtype kept
    assert tuple(w.dims) == (100, 100)
