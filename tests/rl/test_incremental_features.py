"""Equivalence gate for the fast RL stack.

The RL perf work (incremental observation encoding, batched PPO forward,
no-grad rollouts, bincount segment kernels) must be behaviour-preserving:
every assertion here compares the fast path against the seed semantics and
requires *exact* float64 equality — feature arrays bit-for-bit, batched
``evaluate_actions`` outputs bit-for-bit per transition, identical action
sequences with and without the autograd tape.
"""

import numpy as np
import pytest

from repro.experiments import build_small_model
from repro.ir import GraphBuilder
from repro.nn import Tensor, no_grad, reference_kernels, segment_sum
from repro.rl import (FeatureCache, GraphRewriteEnv, Observation, PPOTrainer,
                      PPOUpdater, RolloutBuffer, Transition, XRLflowAgent,
                      build_meta_graph, encode_graph)
from repro.rules import default_ruleset

MODELS = ["squeezenet", "resnext50", "bert", "vit"]


def scaled_attention_graph():
    """Mul-of-batch-matmul chain: push-mul-bmm then fold-mul-matmul fodder."""
    b = GraphBuilder("scaled_attention")
    x = b.input((2, 4, 8), name="x")
    w = b.weight((8, 8), name="w")
    q = b.matmul(x, w)
    kt = b.transpose(x, (0, 2, 1))
    scores = b.batch_matmul(q, kt)
    scale = b.constant((1,), name="scale")
    return b.build([b.mul(scores, scale)])


def algebra_cleanup_graph():
    """distribute-mul-add, reassoc-matmul, double-transpose, slice-concat."""
    b = GraphBuilder("algebra")
    x = b.input((4, 8), name="x")
    a = b.weight((8, 16), name="a")
    c = b.weight((16, 4), name="c")
    chain = b.matmul(b.matmul(x, a), c)
    y = b.weight((4, 4), name="y")
    k = b.constant((1,), name="k")
    dist = b.mul(b.add(chain, y), k)
    t = b.input((2, 3, 4), name="t")
    double_t = b.relu(b.transpose(b.transpose(t, (0, 2, 1)), (0, 2, 1)))
    u = b.input((2, 4), name="u")
    v = b.weight((2, 6), name="v")
    sl = b.relu(b.slice(b.concat([u, v], axis=1), axis=1, start=0, end=4))
    r = b.input((2, 3, 4), name="r")
    k2 = b.constant((1,), name="k2")
    pushed = b.mul(b.transpose(r, (0, 2, 1)), k2)  # push-mul-reshape fodder
    return b.build([dist, double_t, sl, pushed])


def probe_graphs():
    """Graphs that, together, let every curated rule produce candidates."""
    return [build_small_model(name) for name in MODELS] + \
        [scaled_attention_graph(), algebra_cleanup_graph()]


def assert_features_equal(fast, ref):
    for field in ("node_features", "edge_features", "edge_src", "edge_dst"):
        a, b = getattr(fast, field), getattr(ref, field)
        assert a.dtype == b.dtype, field
        assert a.shape == b.shape, field
        assert np.array_equal(a, b), field


def candidate_closure(graph, depth=2):
    """All (parent-sharing) candidate graphs up to ``depth`` rewrites deep."""
    ruleset = default_ruleset()
    out = []
    frontier = [graph]
    for _ in range(depth):
        nxt = []
        for parent in frontier:
            for candidate in ruleset.all_candidates(parent):
                out.append((candidate.rule_name, candidate.graph))
                nxt.append(candidate.graph)
        # A couple of grandchildren per level keeps the closure small.
        frontier = nxt[:3]
    return out


# ---------------------------------------------------------------------------
# (a) Incremental encoding == reference encoding, bit-for-bit
# ---------------------------------------------------------------------------

class TestIncrementalEncoding:
    @pytest.mark.parametrize("name", MODELS)
    def test_fresh_graph_matches_reference(self, name):
        graph = build_small_model(name)
        assert_features_equal(encode_graph(graph),
                              encode_graph(graph, incremental=False))

    def test_delta_patched_candidates_cover_every_curated_rule(self):
        """Candidates share the parent's per-node blocks (the delta-patched
        path); their encodings must equal a from-scratch reference encode
        for every rule in the curated set."""
        covered = set()
        for graph in probe_graphs():
            # Encode the parent first so candidates genuinely patch cached
            # blocks rather than building everything themselves.
            encode_graph(graph)
            for rule_name, child in candidate_closure(graph):
                covered.add(rule_name)
                assert_features_equal(
                    encode_graph(child),
                    encode_graph(child, incremental=False))
        assert covered == set(default_ruleset().names())

    def test_meta_graph_assembly_matches_reference(self):
        graph = build_small_model("squeezenet")
        candidates = default_ruleset().all_candidates(graph)
        graphs = [graph] + [c.graph for c in candidates]
        cache = FeatureCache()
        fast = build_meta_graph(graphs, cache=cache)
        ref = build_meta_graph(graphs, incremental=False)
        for field in ("node_features", "edge_features", "edge_src",
                      "edge_dst", "graph_ids", "global_features"):
            assert np.array_equal(getattr(fast, field), getattr(ref, field)), field
        assert fast.num_graphs == ref.num_graphs

    def test_feature_cache_hits_and_eviction(self):
        graph = build_small_model("squeezenet")
        cache = FeatureCache(max_entries=2)
        graph.structural_hash()  # hash memoised -> eligible for the LRU tier
        clone = graph.copy()     # carries the hash memo, not the features
        first = cache.encode(graph)
        assert cache.encode(graph) is first  # object-memo hit
        assert cache.stats()["hits"] == 1.0
        # A structurally identical object hits via the (memoised) hash.
        assert cache.encode(clone) is first
        assert cache.stats()["hits"] == 2.0
        # Filling past max_entries evicts the least recently used entry.
        candidates = default_ruleset().all_candidates(graph)
        for cand in candidates[:2]:
            cand.graph.structural_hash()
            cache.encode(cand.graph)
        assert len(cache) == 2
        assert cache.hit_rate == pytest.approx(2.0 / 5.0)

    def test_fresh_candidates_skip_hashing(self):
        """A candidate whose hash is not yet memoised is delta-encoded
        without paying for a structural hash."""
        graph = build_small_model("squeezenet")
        cache = FeatureCache()
        candidate = default_ruleset().all_candidates(graph)[0].graph
        cache.encode(candidate)
        assert candidate.memo_peek("hash") is None  # never hashed
        assert len(cache) == 0  # not in the hash tier
        assert cache.encode(candidate) is not None  # object memo serves it

    def test_env_cache_hit_on_revisited_graph(self):
        """The chosen candidate becomes the next step's current graph — a
        guaranteed cache hit once the meta batches are materialised.

        Rollouts defer meta assembly (``LazyMetaGraph``); a PPO update or
        gradient forward triggers it, which is emulated here."""
        graph = build_small_model("squeezenet")
        env = GraphRewriteEnv(graph, max_candidates=8, max_steps=4, seed=0)
        obs = env.reset()
        assert not obs.meta_graph.is_materialised
        obs.meta_graph.materialise()
        result = env.step(0)
        result.observation.meta_graph.materialise()
        stats = env.encode_cache_stats()
        assert stats["hits"] >= 1.0
        assert stats["hit_rate"] > 0.0


# ---------------------------------------------------------------------------
# (a2) Incremental GNN forward == full forward, bit-for-bit (float64)
# ---------------------------------------------------------------------------

def _embed_observation(parent, candidates):
    """An env-shaped observation: current graph first, then candidates."""
    graphs = [parent] + [c.graph for c in candidates]
    mask = np.ones(len(graphs), dtype=bool)
    return Observation(meta_graph=build_meta_graph(graphs, incremental=False),
                       action_mask=mask, candidates=list(candidates),
                       graphs=graphs)


class TestIncrementalGNNForward:
    def test_bitwise_across_every_curated_rule_and_closures(self):
        """The delta forward must agree with the full encoder bit-for-bit
        (float64) for candidates of *every* curated rule, including
        grandchildren two rewrites deep (where the cached parent state is
        itself the product of a delta forward).  ``verify=True`` makes the
        embedder raise on the first diverging bit."""
        agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                             num_gat_layers=2, head_sizes=(16,), seed=0,
                             dtype=np.float64)
        embedder = agent.embedder
        embedder.verify = True
        ruleset = default_ruleset()
        covered = set()
        for graph in probe_graphs():
            frontier = [graph]
            for _depth in range(2):
                next_frontier = []
                for parent in frontier:
                    candidates = [c for c in ruleset.lazy_candidates(parent)
                                  if c.materialise() is not None]
                    if not candidates:
                        continue
                    covered.update(c.rule_name for c in candidates)
                    embedder.embed(_embed_observation(parent, candidates))
                    next_frontier.extend(c.graph for c in candidates[:2])
                frontier = next_frontier[:3]
        stats = embedder.stats()
        assert stats["embed_delta_forwards"] > 0
        assert stats["embed_equivalence_checks"] > 0
        assert covered == set(ruleset.names())

    def test_rollout_exercises_delta_forward_with_verification(self):
        """An actual agent rollout through the environment keeps the
        equivalence gate green while taking the delta path."""
        agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                             num_gat_layers=2, head_sizes=(16,), seed=0,
                             dtype=np.float64)
        agent.embedder.verify = True
        env = GraphRewriteEnv(build_small_model("squeezenet"),
                              max_candidates=8, max_steps=4, seed=0)
        obs = env.reset()
        done = False
        while not done:
            decision = agent.act(obs)
            result = env.step(decision.action)
            obs, done = result.observation, result.done
        stats = agent.embedder.stats()
        assert stats["embed_delta_forwards"] > 0
        assert stats["embed_equivalence_checks"] > 0
        assert stats["embed_fallback_fulls"] == 0


# ---------------------------------------------------------------------------
# (b) Batched evaluate_actions == per-transition loop (float64)
# ---------------------------------------------------------------------------

def collect_buffer(graph, agent, steps=12, seed=0):
    env = GraphRewriteEnv(graph, max_candidates=12, max_steps=8, seed=seed)
    buffer = RolloutBuffer()
    obs = env.reset()
    for _ in range(steps):
        decision = agent.act(obs)
        step = env.step(decision.action)
        buffer.add(Transition(obs, decision.action, decision.log_prob,
                              decision.value, step.reward, step.done))
        obs = step.observation
        if step.done:
            obs = env.reset()
    return buffer


class TestBatchedEvaluate:
    @pytest.mark.parametrize("name", ["squeezenet", "bert"])
    def test_batch_matches_per_transition_bitwise(self, name):
        graph = build_small_model(name)
        agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                             num_gat_layers=2, head_sizes=(16,), seed=0)
        buffer = collect_buffer(graph, agent)
        observations, actions, _ = buffer.gather(np.arange(len(buffer)))
        log_probs, values, entropies = agent.evaluate_actions_batch(
            observations, actions)
        for i, (obs, action) in enumerate(zip(observations, actions)):
            lp, value, entropy = agent.evaluate_actions(obs, int(action))
            assert lp.numpy()[0] == log_probs.numpy()[i]
            assert value.numpy()[0] == values.numpy()[i]
            assert float(entropy.numpy()) == entropies.numpy()[i]

    def test_batched_update_matches_loop_update(self):
        graph = build_small_model("squeezenet")
        seed_agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                                  num_gat_layers=1, head_sizes=(16,), seed=0)
        buffer = collect_buffer(graph, seed_agent)
        agents = {}
        for batched in (True, False):
            agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                                 num_gat_layers=1, head_sizes=(16,), seed=0)
            updater = PPOUpdater(agent, epochs=2, batch_size=4,
                                 batched=batched, seed=0)
            stats = updater.update(buffer)
            agents[batched] = (agent, stats)
        agent_b, stats_b = agents[True]
        agent_l, stats_l = agents[False]
        # Per-transition outputs are bit-equal; the minibatch reduction
        # (np.mean vs sequential sum) rounds differently, so parameters
        # agree to float64 round-off accumulated over the Adam steps.
        assert stats_b.policy_loss == pytest.approx(stats_l.policy_loss,
                                                    rel=1e-9, abs=1e-12)
        assert stats_b.value_loss == pytest.approx(stats_l.value_loss,
                                                   rel=1e-9, abs=1e-12)
        for p_b, p_l in zip(agent_b.parameters(), agent_l.parameters()):
            np.testing.assert_allclose(p_b.data, p_l.data,
                                       rtol=1e-8, atol=1e-9)

    def test_batched_update_trains(self):
        graph = build_small_model("squeezenet")
        agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                             num_gat_layers=1, head_sizes=(16,), seed=0)
        env = GraphRewriteEnv(graph, max_candidates=8, max_steps=6, seed=0)
        updater = PPOUpdater(agent, epochs=1, batch_size=4, batched=True)
        trainer = PPOTrainer(env, agent, updater, update_frequency=2)
        before = [p.data.copy() for p in agent.parameters()]
        history = trainer.train(num_episodes=2)
        assert any(not np.array_equal(b, p.data)
                   for b, p in zip(before, agent.parameters()))
        assert "encode_cache_hit_rate" in history.update_stats[0]


# ---------------------------------------------------------------------------
# (c) no_grad rollouts: identical actions, no tape
# ---------------------------------------------------------------------------

class TestNoGrad:
    def test_rollout_actions_identical_with_and_without_tape(self):
        graph = build_small_model("squeezenet")
        trajectories = []
        for grad in (False, True):
            agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                                 num_gat_layers=2, head_sizes=(16,), seed=0)
            env = GraphRewriteEnv(graph, max_candidates=12, max_steps=8,
                                  seed=0)
            obs = env.reset()
            actions, done = [], False
            while not done:
                decision = agent.act(obs, grad=grad)
                actions.append(decision.action)
                step = env.step(decision.action)
                obs, done = step.observation, step.done
            trajectories.append(actions)
        assert trajectories[0] == trajectories[1]

    def test_no_grad_builds_no_tape(self):
        weight = Tensor(np.ones((3, 3)), requires_grad=True)
        with no_grad():
            out = (Tensor(np.ones((2, 3))) @ weight).relu().sum()
        assert not out.requires_grad
        assert out._parents == ()
        # Outside the context the tape comes back.
        out = (Tensor(np.ones((2, 3))) @ weight).relu().sum()
        assert out.requires_grad


# ---------------------------------------------------------------------------
# (d) bincount segment kernels == np.add.at reference kernels
# ---------------------------------------------------------------------------

class TestSegmentKernels:
    def test_segment_sum_matches_reference_bitwise(self):
        rng = np.random.default_rng(0)
        for num_segments, rows, cols in [(7, 40, 5), (1, 3, 4), (5, 0, 4)]:
            values = rng.normal(size=(rows, cols))
            ids = rng.integers(0, num_segments, size=rows)
            fast = segment_sum(Tensor(values), ids, num_segments).numpy()
            with reference_kernels():
                ref = segment_sum(Tensor(values), ids, num_segments).numpy()
            assert np.array_equal(fast, ref)

    def test_gather_rows_backward_matches_reference_bitwise(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(6, 4))
        index = np.array([0, 2, 2, 5, 0, 0])
        grads = []
        for use_reference in (False, True):
            t = Tensor(values.copy(), requires_grad=True)
            if use_reference:
                with reference_kernels():
                    t.gather_rows(index).sum().backward()
            else:
                t.gather_rows(index).sum().backward()
            grads.append(t.grad.copy())
        assert np.array_equal(grads[0], grads[1])


# ---------------------------------------------------------------------------
# (e) float32 training
# ---------------------------------------------------------------------------

class TestFloat32:
    def test_agent_parameters_and_outputs_use_requested_dtype(self):
        agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                             num_gat_layers=1, head_sizes=(16,), seed=0,
                             dtype=np.float32)
        assert all(p.data.dtype == np.float32 for p in agent.parameters())
        graph = build_small_model("squeezenet")
        env = GraphRewriteEnv(graph, max_candidates=8, max_steps=4, seed=0)
        logits, value = agent.forward(env.reset())
        assert logits.numpy().dtype == np.float32
        assert value.numpy().dtype == np.float32

    def test_load_agent_preserves_checkpoint_dtype(self, tmp_path):
        """A float64 checkpoint (saved before float32 became the training
        default) must reload bit-exactly, not be downcast to config.dtype."""
        from repro.core.config import XRLflowConfig
        from repro.core.xrlflow import XRLflow
        saver = XRLflow(XRLflowConfig.fast(dtype="float64"))
        saver.agent = saver._build_agent()
        path = str(tmp_path / "agent.npz")
        saver.save_agent(path)

        loader = XRLflow(XRLflowConfig.fast(dtype="float32"))
        loader.load_agent(path)
        assert all(p.data.dtype == np.float64
                   for p in loader.agent.parameters())
        for a, b in zip(saver.agent.parameters(),
                        loader.agent.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_float32_training_reaches_float64_greedy_sequence(self):
        """Training in float32 must land on the same greedy transformation
        sequence as the float64 run on a small model (the precisions explore
        identically-seeded trajectories; round-off must not flip the learnt
        argmax decisions)."""
        graph = build_small_model("squeezenet")
        sequences = {}
        for dtype in (np.float64, np.float32):
            agent = XRLflowAgent(hidden_dim=16, embedding_dim=16,
                                 num_gat_layers=1, head_sizes=(16,), seed=0,
                                 dtype=dtype)
            env = GraphRewriteEnv(graph, max_candidates=8, max_steps=6,
                                  seed=0)
            updater = PPOUpdater(agent, epochs=1, batch_size=4, seed=0)
            trainer = PPOTrainer(env, agent, updater, update_frequency=2)
            trainer.train(num_episodes=4)
            # Greedy evaluation episode.
            obs = env.reset()
            actions, done = [], False
            while not done:
                decision = agent.act(obs, deterministic=True)
                actions.append(decision.action)
                step = env.step(decision.action)
                obs, done = step.observation, step.done
            sequences[np.dtype(dtype).name] = actions
            # float32 state stays float32 through the whole run.
            if dtype == np.float32:
                assert all(p.data.dtype == np.float32
                           for p in agent.parameters())
        assert sequences["float32"] == sequences["float64"]
