"""Tests for the RL substrate: features, environment, GAE, PPO, training."""

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.rl import (GraphRewriteEnv, PPOTrainer, PPOUpdater, RolloutBuffer,
                      Transition, XRLflowAgent, build_meta_graph, compute_gae,
                      encode_graph)
from repro.rl.features import EDGE_FEATURE_DIM, NODE_FEATURE_DIM
from repro.rules import default_ruleset


@pytest.fixture
def small_env(conv_graph):
    return GraphRewriteEnv(conv_graph, feedback_interval=2, max_candidates=8,
                           max_steps=6, seed=0)


@pytest.fixture
def small_agent():
    return XRLflowAgent(hidden_dim=16, embedding_dim=16, num_gat_layers=1,
                        head_sizes=(16,), seed=0)


class TestFeatures:
    def test_encode_graph_dimensions(self, mlp_graph):
        feats = encode_graph(mlp_graph)
        assert feats.node_features.shape == (mlp_graph.num_nodes, NODE_FEATURE_DIM)
        assert feats.edge_features.shape[1] == EDGE_FEATURE_DIM
        assert feats.edge_src.shape == feats.edge_dst.shape
        # One-hot: every node row sums to exactly one.
        np.testing.assert_allclose(feats.node_features.sum(axis=1), 1.0)

    def test_edge_features_normalised(self, mlp_graph):
        feats = encode_graph(mlp_graph)
        assert np.all(feats.edge_features >= 0.0)
        assert np.all(feats.edge_features <= 1.0)

    def test_meta_graph_offsets(self, mlp_graph, conv_graph):
        batch = build_meta_graph([mlp_graph, conv_graph])
        assert batch.num_graphs == 2
        assert batch.num_nodes == mlp_graph.num_nodes + conv_graph.num_nodes
        assert batch.graph_ids.max() == 1
        # Edges never cross graph boundaries.
        assert (batch.graph_ids[batch.edge_src] == batch.graph_ids[batch.edge_dst]).all()


class TestEnvironment:
    def test_reset_returns_candidates_and_mask(self, small_env):
        obs = small_env.reset()
        assert obs.action_mask[-1]  # No-Op always valid
        assert obs.action_mask[: len(obs.candidates)].all()
        assert not obs.action_mask[len(obs.candidates):-1].any()
        assert obs.meta_graph.num_graphs == len(obs.candidates) + 1

    def test_step_applies_candidate(self, small_env):
        obs = small_env.reset()
        before = small_env.current_graph.structural_hash()
        step = small_env.step(0)
        assert small_env.current_graph.structural_hash() != before
        assert small_env.applied_rules
        assert isinstance(step.reward, float)

    def test_noop_terminates(self, small_env):
        obs = small_env.reset()
        step = small_env.step(obs.noop_index)
        assert step.done

    def test_invalid_action_treated_as_noop(self, small_env):
        obs = small_env.reset()
        step = small_env.step(len(obs.candidates))  # first padded slot
        assert step.done

    def test_feedback_interval_reward(self, conv_graph):
        env = GraphRewriteEnv(conv_graph, feedback_interval=2, step_reward=0.1,
                              max_candidates=8, max_steps=6)
        env.reset()
        first = env.step(0)
        assert first.reward == pytest.approx(0.1)
        second = env.step(0)
        # Measurement step: reward is the latency improvement (non-constant).
        assert second.reward != pytest.approx(0.1)

    def test_best_graph_tracked(self, small_env):
        small_env.reset()
        done = False
        while not done:
            result = small_env.step(0)
            done = result.done
        assert small_env.best_latency_ms <= small_env.initial_latency_ms + 1e-9

    def test_episode_terminates_within_max_steps(self, small_env):
        small_env.reset()
        steps = 0
        done = False
        while not done and steps < 50:
            done = small_env.step(0).done
            steps += 1
        assert done

    def test_custom_reward_callback(self, conv_graph):
        calls = []

        def reward_fn(prev, cur, initial):
            calls.append((prev, cur, initial))
            return 1.0

        env = GraphRewriteEnv(conv_graph, feedback_interval=1, reward_fn=reward_fn,
                              max_candidates=4, max_steps=2)
        env.reset()
        step = env.step(0)
        assert step.reward == pytest.approx(1.0)
        assert calls


class TestSetGraph:
    def test_set_graph_clears_stale_episode_state(self, conv_graph, mlp_graph):
        env = GraphRewriteEnv(conv_graph, feedback_interval=2,
                              max_candidates=8, max_steps=4, seed=0)
        env.reset()
        env.step(0)
        assert env.applied_rules
        old_best = env.best_latency_ms

        env.set_graph(mlp_graph)
        # No state from the previous target may survive: in particular the
        # best graph must not belong to the old model.
        assert env.initial_graph is mlp_graph
        assert env.best_graph is mlp_graph
        assert env.best_latency_ms == float("inf")
        assert env.applied_rules == []
        assert env.step_count == 0

        env.reset()
        assert env.best_graph.structural_hash() == mlp_graph.structural_hash()
        assert env.best_latency_ms == env.initial_latency_ms
        assert env.best_latency_ms != old_best

    def test_step_before_reset_after_set_graph_raises(self, conv_graph,
                                                      mlp_graph):
        env = GraphRewriteEnv(conv_graph, max_candidates=8, max_steps=4)
        env.reset()
        env.set_graph(mlp_graph)
        with pytest.raises(RuntimeError):
            env.step(0)


class TestCandidateSelection:
    @pytest.fixture
    def parallel_conv_graph(self):
        """Three parallel conv+relu branches: two rule families, many matches."""
        b = GraphBuilder("parallel")
        x = b.input((1, 4, 8, 8), name="image")
        outs = [b.relu(b.conv2d(x, 4, kernel=3)) for _ in range(3)]
        return b.build([b.concat(outs, axis=1)])

    def test_round_robin_when_over_capacity(self, parallel_conv_graph):
        from repro.rules import default_ruleset
        all_cands = default_ruleset().all_candidates(parallel_conv_graph)
        by_rule = {}
        for c in all_cands:
            by_rule[c.rule_name] = by_rule.get(c.rule_name, 0) + 1
        assert by_rule == {"fuse-conv-relu": 3, "merge-convs": 3}

        env = GraphRewriteEnv(parallel_conv_graph, max_candidates=4,
                              max_steps=4)
        obs = env.reset()
        assert len(obs.candidates) == 4
        shown = {}
        for c in obs.candidates:
            shown[c.rule_name] = shown.get(c.rule_name, 0) + 1
        # The quota is split across rules instead of the first rule's
        # matches monopolising the prefix.
        assert shown == {"fuse-conv-relu": 2, "merge-convs": 2}

    def test_no_truncation_preserves_full_enumeration(self, parallel_conv_graph):
        from repro.rules import default_ruleset
        env = GraphRewriteEnv(parallel_conv_graph, max_candidates=16,
                              max_steps=4)
        obs = env.reset()
        eager = default_ruleset().all_candidates(parallel_conv_graph)
        assert [c.match for c in obs.candidates] == [c.match for c in eager]

    def test_only_selected_candidates_are_materialised(self, parallel_conv_graph):
        env = GraphRewriteEnv(parallel_conv_graph, max_candidates=4,
                              max_steps=4)
        obs = env.reset()
        assert all(c.is_materialised for c in obs.candidates)
        assert len(obs.candidates) == 4


class TestGAE:
    def test_single_step_episode(self):
        adv, ret = compute_gae(np.array([1.0]), np.array([0.5]), np.array([True]),
                               gamma=0.9, lam=0.8)
        assert adv[0] == pytest.approx(0.5)
        assert ret[0] == pytest.approx(1.0)

    def test_no_bootstrapping_across_done(self):
        rewards = np.array([1.0, 1.0])
        values = np.array([0.0, 100.0])
        dones = np.array([True, True])
        adv, _ = compute_gae(rewards, values, dones, gamma=1.0, lam=1.0)
        assert adv[0] == pytest.approx(1.0)  # the 100 value never leaks back

    def test_discounting(self):
        rewards = np.array([0.0, 0.0, 1.0])
        values = np.zeros(3)
        dones = np.array([False, False, True])
        adv, _ = compute_gae(rewards, values, dones, gamma=0.5, lam=1.0)
        assert adv[0] == pytest.approx(0.25)

    def test_buffer_normalises_advantages(self, small_env, small_agent):
        buffer = RolloutBuffer()
        obs = small_env.reset()
        for _ in range(3):
            decision = small_agent.act(obs)
            step = small_env.step(decision.action)
            buffer.add(Transition(obs, decision.action, decision.log_prob,
                                  decision.value, step.reward, step.done))
            obs = step.observation
            if step.done:
                obs = small_env.reset()
        adv, ret = buffer.finalise()
        assert len(adv) == len(buffer)
        assert abs(float(adv.mean())) < 1e-6


class TestAgent:
    def test_action_probabilities_respect_mask(self, small_env, small_agent):
        obs = small_env.reset()
        decision = small_agent.act(obs)
        invalid = ~obs.action_mask
        assert decision.probabilities[invalid].sum() < 1e-6
        assert decision.probabilities.sum() == pytest.approx(1.0)
        assert obs.action_mask[decision.action]

    def test_deterministic_action_is_argmax(self, small_env, small_agent):
        obs = small_env.reset()
        decision = small_agent.act(obs, deterministic=True)
        assert decision.action == int(np.argmax(decision.probabilities))

    def test_evaluate_actions_differentiable(self, small_env, small_agent):
        obs = small_env.reset()
        log_prob, value, entropy = small_agent.evaluate_actions(obs, 0)
        (log_prob + value + entropy).sum().backward()
        assert any(p.grad is not None for p in small_agent.parameters())

    def test_state_dict_round_trip(self, small_agent):
        clone = XRLflowAgent(hidden_dim=16, embedding_dim=16, num_gat_layers=1,
                             head_sizes=(16,), seed=99)
        clone.load_state_dict(small_agent.state_dict())
        for a, b in zip(small_agent.parameters(), clone.parameters()):
            np.testing.assert_allclose(a.data, b.data)


class TestTraining:
    def test_ppo_update_changes_parameters(self, small_env, small_agent):
        updater = PPOUpdater(small_agent, epochs=1, batch_size=4)
        trainer = PPOTrainer(small_env, small_agent, updater, update_frequency=2)
        before = [p.data.copy() for p in small_agent.parameters()]
        trainer.train(num_episodes=2)
        after = [p.data for p in small_agent.parameters()]
        assert any(not np.allclose(a, b) for a, b in zip(before, after))

    def test_training_history_records_episodes(self, small_env, small_agent):
        updater = PPOUpdater(small_agent, epochs=1, batch_size=4)
        trainer = PPOTrainer(small_env, small_agent, updater, update_frequency=2)
        history = trainer.train(num_episodes=2)
        assert len(history.episodes) == 2
        assert history.best_episode is not None
        assert history.mean_reward() != 0.0 or history.episodes[0].steps >= 0
