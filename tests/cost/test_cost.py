"""Tests for the device model, op costs, cost model and E2E simulator."""

import numpy as np
import pytest

from repro.cost import (
    CostModel,
    E2ESimulator,
    default_device,
    is_zero_cost,
    op_flops,
    op_memory_bytes)
from repro.ir import GraphBuilder, OpType
from repro.ir.tensor import make_spec
from repro.models import build_model


class TestOpCost:
    def test_matmul_flops(self):
        flops = op_flops(OpType.MATMUL, [make_spec(4, 8), make_spec(8, 16)],
                         [make_spec(4, 16)])
        assert flops == 2 * 4 * 16 * 8

    def test_conv_flops(self):
        flops = op_flops(OpType.CONV2D,
                         [make_spec(1, 3, 8, 8), make_spec(16, 3, 3, 3)],
                         [make_spec(1, 16, 8, 8)])
        assert flops == 2 * 3 * 3 * 3 * (16 * 8 * 8)

    def test_winograd_reduces_flops(self):
        inputs = [make_spec(1, 3, 8, 8), make_spec(16, 3, 3, 3)]
        outputs = [make_spec(1, 16, 8, 8)]
        plain = op_flops(OpType.CONV2D, inputs, outputs, {})
        fast = op_flops(OpType.CONV2D, inputs, outputs, {"algorithm": "winograd"})
        assert fast < plain

    def test_zero_cost_ops(self):
        assert is_zero_cost(OpType.WEIGHT)
        assert is_zero_cost(OpType.IDENTITY)
        assert not is_zero_cost(OpType.CONV2D)
        assert op_flops(OpType.WEIGHT, [], [make_spec(8, 8)]) == 0.0

    def test_memory_bytes(self):
        bytes_moved = op_memory_bytes(OpType.RELU, [make_spec(4, 4)], [make_spec(4, 4)])
        assert bytes_moved == 2 * 16 * 4


class TestDevice:
    def test_kernel_time_monotone_in_flops(self):
        dev = default_device()
        small = dev.kernel_time_ms(OpType.MATMUL, 1e6, 1e4)
        large = dev.kernel_time_ms(OpType.MATMUL, 1e9, 1e4)
        assert large > small

    def test_launch_overhead_included(self):
        dev = default_device()
        t = dev.kernel_time_ms(OpType.RELU, 0.0, 0.0)
        assert t == pytest.approx(dev.launch_overhead_ms())
        assert dev.kernel_time_ms(OpType.RELU, 0.0, 0.0, include_launch=False) == 0.0

    def test_grouped_conv_penalty(self):
        dev = default_device()
        flops = 1e9
        dense = dev.kernel_time_ms(OpType.CONV2D, flops, 0.0)
        grouped = dev.kernel_time_ms(OpType.GROUP_CONV2D, flops, 0.0)
        assert grouped > dense

    def test_with_config_override(self):
        dev = default_device().with_config(kernel_launch_ms=1.0)
        assert dev.launch_overhead_ms() == 1.0


class TestCostModelAndE2E:
    def test_cost_breakdown_sums(self, conv_graph):
        cm = CostModel()
        breakdown = cm.breakdown(conv_graph)
        assert breakdown.total_ms == pytest.approx(sum(breakdown.per_node_ms.values()))
        assert breakdown.top_nodes(3)[0][1] >= breakdown.top_nodes(3)[-1][1]

    def test_ignore_elementwise_reduces_cost(self, conv_graph):
        full = CostModel().estimate(conv_graph)
        pet = CostModel(ignore_elementwise=True).estimate(conv_graph)
        assert pet < full

    def test_e2e_exceeds_cost_model_on_unoptimised_models(self):
        cm, e2e = CostModel(), E2ESimulator()
        graph = build_model("squeezenet")
        assert e2e.latency_ms(graph) > cm.estimate(graph)

    def test_discrepancy_within_paper_range(self):
        cm, e2e = CostModel(), E2ESimulator()
        for name in ("bert", "dalle"):
            graph = build_model(name)
            cost, lat = cm.estimate(graph), e2e.latency_ms(graph)
            diff = abs(lat - cost) / cost * 100
            assert 1.0 < diff < 30.0

    def test_constant_folding_detection(self):
        b = GraphBuilder()
        x = b.input((2, 4))
        w1 = b.weight((4, 4))
        w2 = b.weight((4, 4))
        ww = b.matmul(w1, w2)          # constant-only: foldable
        out = b.matmul(x, ww)          # depends on input: not foldable
        g = b.build([out])
        folded = E2ESimulator().constant_foldable_nodes(g)
        assert ww in folded and out not in folded

    def test_constant_folding_reduces_latency(self):
        b = GraphBuilder()
        x = b.input((64, 256))
        w1 = b.weight((256, 256))
        w2 = b.weight((256, 256))
        chained = b.matmul(b.matmul(x, w1), w2)
        g1 = b.build([chained])
        b2 = GraphBuilder()
        x = b2.input((64, 256))
        w1 = b2.weight((256, 256))
        w2 = b2.weight((256, 256))
        reassociated = b2.matmul(x, b2.matmul(w1, w2))
        g2 = b2.build([reassociated])
        e2e = E2ESimulator()
        assert e2e.latency_ms(g2) < e2e.latency_ms(g1)

    def test_measure_reports_noise(self, conv_graph):
        measurement = E2ESimulator(seed=3).measure(conv_graph, repeats=5)
        assert len(measurement.samples) == 5
        assert measurement.std_ms >= 0.0
        assert measurement.mean_ms == pytest.approx(np.mean(measurement.samples))

    def test_profile_accounts_for_every_node(self, conv_graph):
        profile = E2ESimulator().profile(conv_graph)
        assert set(profile.per_node_ms) == set(conv_graph.nodes)
        assert profile.total_ms == pytest.approx(sum(profile.per_node_ms.values()))
        assert profile.kernel_count > 0

    def test_runtime_fusion_flag(self, conv_graph):
        without = E2ESimulator(enable_runtime_fusion=False).latency_ms(conv_graph)
        with_fusion = E2ESimulator(enable_runtime_fusion=True).latency_ms(conv_graph)
        assert with_fusion <= without
