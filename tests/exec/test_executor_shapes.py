"""Shape-agreement suite: executed shapes are the oracle for the registry.

Runs every model in the zoo (at reduced size) and every fuzzer graph
through the numpy executor and asserts, node by node and slot by slot,
that what numpy actually computed matches what ``infer_output_spec``
declared.  Any disagreement is an inference bug — the executed shape
wins (ISSUE 8 satellite: the rank-1-reduce and batch-matmul-broadcast
fixes in ``ir/ops.py`` were found exactly this way).
"""

from __future__ import annotations

import numpy as np
import pytest
from graphgen import random_graph

from repro.exec import (NumpyExecutor, deterministic_tensor, random_inputs,
                        uncovered_ops)
from repro.ir.graph import Graph
from repro.ir.ops import SOURCE_OPS, OpType
from repro.models import build_model

#: Reduced-size kwargs keeping every zoo model under ~1 s of numpy time.
SMALL_MODEL_KWARGS = {
    "inception_v3": dict(image_size=75),
    "squeezenet": dict(image_size=64),
    "resnext50": dict(image_size=64),
    "resnet18": dict(image_size=64),
    "bert": dict(num_layers=1, seq_len=16, hidden=32, num_heads=2),
    "vit": dict(image_size=32, patch_size=16, hidden=32, num_heads=2,
                num_layers=1),
    "dalle": dict(text_len=8, image_tokens=16, num_layers=1),
    "tt": dict(audio_frames=16),
}

FUZZ_SEEDS = range(8)


def _executed_values(graph: Graph, seed: int = 0):
    """Execute ``graph`` keeping every intermediate, yield (node, slot, array)."""
    executor = NumpyExecutor(seed=seed)
    values = {}
    inputs = random_inputs(graph, seed=seed)
    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.op_type in SOURCE_OPS:
            if node.op_type is OpType.INPUT and node.name in inputs:
                values[(nid, 0)] = np.asarray(inputs[node.name],
                                              dtype=np.float64)
            else:
                prefix = "input:" if node.op_type is OpType.INPUT else "param:"
                values[(nid, 0)] = deterministic_tensor(
                    prefix + node.name, tuple(node.outputs[0].shape.dims))
            continue
        in_vals = [values[(e.src, e.src_slot)]
                   for e in graph.in_edges(nid)]
        out_shapes = [tuple(s.shape.dims) for s in node.outputs]
        kernel = executor.kernels.get(node.op_type)
        assert kernel is not None, f"no kernel for {node.op_type.name}"
        out_vals = kernel(in_vals, node.attrs, out_shapes)
        for slot, val in enumerate(out_vals):
            values[(nid, slot)] = val
            yield node, slot, val


@pytest.mark.parametrize("name", sorted(SMALL_MODEL_KWARGS))
def test_registry_model_shapes_match_inference(name):
    graph = build_model(name, **SMALL_MODEL_KWARGS[name])
    checked = 0
    for node, slot, val in _executed_values(graph):
        declared = tuple(node.outputs[slot].shape.dims)
        assert tuple(val.shape) == declared, (
            f"{name}: {node.op_type.name} node {node.name!r} slot {slot} "
            f"executed {tuple(val.shape)} but infer_output_spec declared "
            f"{declared}")
        assert np.all(np.isfinite(val)), (
            f"{name}: {node.op_type.name} produced non-finite values")
        checked += 1
    assert checked > 0


@pytest.mark.parametrize("name", sorted(SMALL_MODEL_KWARGS))
def test_registry_model_executes_without_fallbacks(name):
    graph = build_model(name, **SMALL_MODEL_KWARGS[name])
    executor = NumpyExecutor()
    report = executor.run_detailed(graph)
    assert report.num_fallbacks == 0, report.fallback_ops
    assert report.outputs, "model produced no sink outputs"
    assert report.wall_ms > 0.0


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzer_graph_shapes_match_inference(seed):
    graph = random_graph(seed)
    for node, slot, val in _executed_values(graph, seed=seed):
        declared = tuple(node.outputs[slot].shape.dims)
        assert tuple(val.shape) == declared, (
            f"seed {seed}: {node.op_type.name} executed {tuple(val.shape)} "
            f"!= declared {declared}")


def test_every_registry_op_has_a_kernel():
    """The dispatch table covers the whole OpType registry (no silent gaps)."""
    assert uncovered_ops() == []


def test_executor_is_deterministic(mlp_graph):
    ex = NumpyExecutor(seed=7)
    out1, _ = ex.run(mlp_graph)
    out2, _ = NumpyExecutor(seed=7).run(mlp_graph)
    assert sorted(out1) == sorted(out2)
    for key in out1:
        np.testing.assert_array_equal(out1[key], out2[key])


def test_materialisation_is_name_keyed_not_seed_keyed(mlp_graph):
    """Weights are seeded from the node name (interpreter parity), so two
    executors agree regardless of their ``seed`` — variation comes from
    feeding different explicit inputs (e.g. via ``random_inputs``)."""
    out1, _ = NumpyExecutor(seed=0).run(mlp_graph)
    out2, _ = NumpyExecutor(seed=1).run(mlp_graph)
    for key in out1:
        np.testing.assert_array_equal(out1[key], out2[key])
    feeds_a = random_inputs(mlp_graph, seed=0)
    feeds_b = random_inputs(mlp_graph, seed=1)
    assert any(not np.allclose(feeds_a[k], feeds_b[k]) for k in feeds_a)


def test_unknown_op_counted_not_silent(mlp_graph):
    """Removing a kernel degrades to counted pass-through, never a crash."""
    from repro.exec.kernels import KERNELS
    crippled = {op: k for op, k in KERNELS.items() if op is not OpType.RELU}
    executor = NumpyExecutor(kernels=crippled)
    report = executor.run_detailed(mlp_graph)
    assert report.fallback_ops.get("Relu", 0) >= 1
    assert report.num_fallbacks >= 1
    assert report.outputs  # still produced outputs end to end


def test_explicit_inputs_override_materialisation(mlp_graph):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 16))
    out_a, _ = NumpyExecutor().run(mlp_graph, {"x": x})
    out_b, _ = NumpyExecutor().run(mlp_graph, {"x": x + 1.0})
    key = sorted(out_a)[0]
    assert not np.allclose(out_a[key], out_b[key])


def test_measure_returns_best_of(mlp_graph):
    executor = NumpyExecutor()
    ms = executor.measure(mlp_graph, repeats=3)
    assert ms > 0.0
    # measured latency is memoised on the graph via MeasuredLatency
    from repro.exec import MeasuredLatency
    source = MeasuredLatency(executor, repeats=2)
    first = source.latency_ms(mlp_graph)
    second = source.latency_ms(mlp_graph)
    assert first == second  # memo hit returns the identical float
