"""Op-type-aware random graph generator for the differential suite.

Produces *valid* graphs directly against the op registry: the fuzzer
keeps a pool of available tensor values ``(node, slot, shape)``, and each
step picks an operator family and tries to assemble legal inputs and
attributes for it from the pool.  Shape inference is the arbiter —
``Graph.add_node`` re-runs :func:`repro.ir.ops.infer_output_spec`, and a
``ValueError`` simply discards the attempt — so the generator stays
correct by construction as the registry evolves.

Seeded and deterministic: ``random_graph(seed=k)`` always returns the
same graph.  Used by ``tests/exec`` to drive the executor and the
rewrite engine beyond the hand-written zoo models (ROADMAP item 3's
coverage fuzzer seed).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ir.graph import Graph
from repro.ir.ops import OpType

__all__ = ["random_graph", "GraphFuzzer"]

#: (node, slot, dims) — one value available as an operator input.
PoolEntry = Tuple[int, int, Tuple[int, ...]]


class GraphFuzzer:
    """Randomly grows one valid graph from the operator registry."""

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)
        self.graph = Graph(f"fuzz_{seed}")
        self.pool: List[PoolEntry] = []
        self._ops = [
            self._unary, self._unary, self._binary, self._binary,
            self._matmul, self._conv, self._grouped_conv, self._pool2d,
            self._global_pool, self._softmax, self._layernorm,
            self._batchnorm, self._reshape, self._transpose, self._concat,
            self._split, self._slice, self._squeeze, self._unsqueeze,
            self._flatten, self._pad, self._reduce, self._embedding,
            self._gather, self._fused_matmul_add,
        ]

    # -- helpers -------------------------------------------------------
    def _push(self, nid: int) -> int:
        for slot, spec in enumerate(self.graph.nodes[nid].outputs):
            self.pool.append((nid, slot, tuple(spec.shape.dims)))
        return nid

    def _pick(self, want=None) -> Optional[PoolEntry]:
        entries = [e for e in self.pool if want is None or want(e[2])]
        if not entries:
            return None
        return entries[int(self.rng.integers(len(entries)))]

    def _add(self, op, inputs, attrs=None) -> Optional[int]:
        try:
            return self._push(self.graph.add_node(op, inputs, attrs or {}))
        except (ValueError, IndexError, ZeroDivisionError):
            return None

    def _weight(self, shape) -> int:
        return self.graph.add_node(
            OpType.WEIGHT, (), {"shape": tuple(shape)},
            name=f"w{self.graph.num_nodes}")

    # -- inputs --------------------------------------------------------
    def _seed_inputs(self) -> None:
        # One conv-friendly NCHW image plus 1-2 generic tensors.
        c = int(self.rng.integers(2, 5))
        hw = int(self.rng.choice([4, 6, 8]))
        image = self.graph.add_node(
            OpType.INPUT, (), {"shape": (1, c, hw, hw)}, name="image")
        self._push(image)
        for index in range(int(self.rng.integers(1, 3))):
            rank = int(self.rng.integers(1, 4))
            dims = tuple(int(self.rng.integers(2, 7)) for _ in range(rank))
            self._push(self.graph.add_node(
                OpType.INPUT, (), {"shape": dims}, name=f"x{index}"))

    # -- op builders (each returns a node id or None) ------------------
    def _unary(self):
        entry = self._pick()
        if entry is None:
            return None
        op = OpType(self.rng.choice([
            OpType.RELU, OpType.GELU, OpType.SIGMOID, OpType.TANH,
            OpType.EXP, OpType.SQRT, OpType.ERF, OpType.IDENTITY,
            OpType.DROPOUT,
        ]))
        return self._add(op, [entry[:2]])

    def _binary(self):
        a = self._pick()
        if a is None:
            return None
        # Bias towards same-shape pairs, occasionally try broadcasting.
        if self.rng.random() < 0.7:
            b = self._pick(lambda s: s == a[2])
        else:
            b = self._pick()
        if b is None:
            return None
        op = OpType(self.rng.choice([
            OpType.ADD, OpType.SUB, OpType.MUL, OpType.DIV]))
        return self._add(op, [a[:2], b[:2]])

    def _matmul(self):
        a = self._pick(lambda s: len(s) >= 2)
        if a is None:
            return None
        k = a[2][-1]
        n = int(self.rng.integers(2, 7))
        w = self._weight((k, n))
        op = OpType.BATCH_MATMUL if len(a[2]) > 2 else OpType.MATMUL
        return self._add(op, [a[:2], (w, 0)])

    def _fused_matmul_add(self):
        a = self._pick(lambda s: len(s) == 2)
        if a is None:
            return None
        k, n = a[2][-1], int(self.rng.integers(2, 7))
        w = self._weight((k, n))
        bias = self._weight((n,))
        return self._add(OpType.FUSED_MATMUL_ADD, [a[:2], (w, 0), (bias, 0)])

    def _conv(self):
        x = self._pick(lambda s: len(s) == 4 and s[2] >= 2 and s[3] >= 2)
        if x is None:
            return None
        c_in = x[2][1]
        c_out = int(self.rng.integers(2, 7))
        kernel = int(self.rng.choice([1, 3]))
        stride = int(self.rng.choice([1, 2]))
        w = self._weight((c_out, c_in, kernel, kernel))
        return self._add(OpType.CONV2D, [x[:2], (w, 0)],
                         {"stride": stride, "padding": "same"})

    def _grouped_conv(self):
        x = self._pick(lambda s: len(s) == 4 and s[1] % 2 == 0 and s[2] >= 2)
        if x is None:
            return None
        c_in = x[2][1]
        if self.rng.random() < 0.5:
            w = self._weight((c_in, 1, 3, 3))
            return self._add(OpType.DEPTHWISE_CONV2D, [x[:2], (w, 0)],
                             {"stride": 1, "padding": "same"})
        groups = 2
        c_out = groups * int(self.rng.integers(1, 4))
        w = self._weight((c_out, c_in // groups, 3, 3))
        return self._add(OpType.GROUP_CONV2D, [x[:2], (w, 0)],
                         {"stride": 1, "padding": "same", "groups": groups})

    def _pool2d(self):
        x = self._pick(lambda s: len(s) == 4 and s[2] >= 2 and s[3] >= 2)
        if x is None:
            return None
        op = OpType.MAXPOOL2D if self.rng.random() < 0.5 else OpType.AVGPOOL2D
        padding = "same" if self.rng.random() < 0.3 else "valid"
        return self._add(op, [x[:2]],
                         {"kernel": 2, "stride": 2, "padding": padding})

    def _global_pool(self):
        x = self._pick(lambda s: len(s) == 4)
        return None if x is None else self._add(OpType.GLOBAL_AVGPOOL, [x[:2]])

    def _softmax(self):
        x = self._pick()
        return None if x is None else self._add(OpType.SOFTMAX, [x[:2]],
                                                {"axis": -1})

    def _layernorm(self):
        x = self._pick()
        return None if x is None else self._add(OpType.LAYERNORM, [x[:2]])

    def _batchnorm(self):
        x = self._pick(lambda s: len(s) >= 2)
        if x is None:
            return None
        c = x[2][1]
        scale, bias = self._weight((c,)), self._weight((c,))
        return self._add(OpType.BATCHNORM, [x[:2], (scale, 0), (bias, 0)])

    def _reshape(self):
        x = self._pick()
        if x is None:
            return None
        total = int(np.prod(x[2], dtype=np.int64)) if x[2] else 1
        # Random factorisation of the element count into <= 3 dims.
        dims = []
        rest = total
        for _ in range(int(self.rng.integers(1, 3))):
            divisors = [d for d in range(1, rest + 1) if rest % d == 0]
            d = int(self.rng.choice(divisors))
            dims.append(d)
            rest //= d
        dims.append(rest)
        return self._add(OpType.RESHAPE, [x[:2]], {"shape": tuple(dims)})

    def _transpose(self):
        x = self._pick(lambda s: len(s) >= 2)
        if x is None:
            return None
        perm = list(range(len(x[2])))
        self.rng.shuffle(perm)
        return self._add(OpType.TRANSPOSE, [x[:2]], {"perm": tuple(perm)})

    def _concat(self):
        a = self._pick()
        if a is None or not a[2]:
            return None
        axis = int(self.rng.integers(len(a[2])))
        b = self._pick(lambda s: len(s) == len(a[2]) and
                       all(x == y for i, (x, y) in enumerate(zip(s, a[2]))
                           if i != axis))
        if b is None:
            return None
        return self._add(OpType.CONCAT, [a[:2], b[:2]], {"axis": axis})

    def _split(self):
        x = self._pick(lambda s: any(d % 2 == 0 and d >= 2 for d in s))
        if x is None:
            return None
        axes = [i for i, d in enumerate(x[2]) if d % 2 == 0 and d >= 2]
        axis = int(self.rng.choice(axes))
        return self._add(OpType.SPLIT, [x[:2]], {"axis": axis, "parts": 2})

    def _slice(self):
        x = self._pick(lambda s: any(d >= 2 for d in s))
        if x is None:
            return None
        axes = [i for i, d in enumerate(x[2]) if d >= 2]
        axis = int(self.rng.choice(axes))
        dim = x[2][axis]
        start = int(self.rng.integers(0, dim - 1))
        end = int(self.rng.integers(start + 1, dim + 1))
        return self._add(OpType.SLICE, [x[:2]],
                         {"axis": axis, "start": start, "end": end})

    def _squeeze(self):
        x = self._pick(lambda s: 1 in s and len(s) > 1)
        if x is None:
            return None
        axis = x[2].index(1)
        return self._add(OpType.SQUEEZE, [x[:2]], {"axis": axis})

    def _unsqueeze(self):
        x = self._pick(lambda s: 0 < len(s) < 4)
        if x is None:
            return None
        axis = int(self.rng.integers(len(x[2]) + 1))
        return self._add(OpType.UNSQUEEZE, [x[:2]], {"axis": axis})

    def _flatten(self):
        x = self._pick(lambda s: len(s) >= 1)
        return None if x is None else self._add(OpType.FLATTEN, [x[:2]])

    def _pad(self):
        x = self._pick(lambda s: len(s) >= 1)
        if x is None:
            return None
        pads = []
        for _ in x[2]:
            pads.extend([int(self.rng.integers(0, 2)),
                         int(self.rng.integers(0, 2))])
        return self._add(OpType.PAD, [x[:2]], {"pads": tuple(pads)})

    def _reduce(self):
        x = self._pick(lambda s: len(s) >= 1)
        if x is None:
            return None
        op = OpType(self.rng.choice([
            OpType.REDUCE_SUM, OpType.REDUCE_MEAN, OpType.REDUCE_MAX]))
        axis = int(self.rng.integers(len(x[2])))
        keep = bool(self.rng.random() < 0.5)
        return self._add(op, [x[:2]], {"axis": axis, "keepdims": keep})

    def _embedding(self):
        idx = self._pick(lambda s: 1 <= len(s) <= 3)
        if idx is None:
            return None
        table = self._weight((int(self.rng.integers(4, 10)),
                              int(self.rng.integers(2, 6))))
        return self._add(OpType.EMBEDDING, [(table, 0), idx[:2]])

    def _gather(self):
        idx = self._pick(lambda s: len(s) >= 1)
        if idx is None:
            return None
        table = self._weight((int(self.rng.integers(4, 10)),
                              int(self.rng.integers(2, 6))))
        axis = int(self.rng.integers(2))
        return self._add(OpType.GATHER, [(table, 0), idx[:2]], {"axis": axis})

    # -- driver --------------------------------------------------------
    def build(self, num_ops: int = 12) -> Graph:
        """Grow ``num_ops`` random operators, then close over the sinks."""
        self._seed_inputs()
        added, attempts = 0, 0
        while added < num_ops and attempts < num_ops * 10:
            attempts += 1
            builder = self._ops[int(self.rng.integers(len(self._ops)))]
            if builder() is not None:
                added += 1
        sinks = [nid for nid in self.graph.sink_nodes()
                 if self.graph.nodes[nid].op_type not in
                 (OpType.WEIGHT, OpType.CONSTANT)]
        self.graph.add_node(OpType.OUTPUT, [(nid, 0) for nid in sinks],
                            name="out")
        self.graph.validate()
        return self.graph


def random_graph(seed: int = 0, num_ops: int = 12) -> Graph:
    """A deterministic random valid graph with roughly ``num_ops`` operators."""
    return GraphFuzzer(seed).build(num_ops)
