"""The fuzzer itself: graphs it emits are valid, deterministic, diverse."""

from __future__ import annotations

import pytest
from graphgen import GraphFuzzer, random_graph

from repro.exec import NumpyExecutor, random_inputs
from repro.ir.ops import OpType, infer_output_spec


@pytest.mark.parametrize("seed", range(10))
def test_fuzzed_graphs_validate(seed):
    graph = random_graph(seed)
    graph.validate()
    assert graph.num_nodes > 3
    # Exactly one terminal Output node collecting every non-source sink.
    outputs = [n for n in graph.nodes.values() if n.op_type is OpType.OUTPUT]
    assert len(outputs) == 1


@pytest.mark.parametrize("seed", range(5))
def test_fuzzer_is_deterministic(seed):
    a, b = random_graph(seed), random_graph(seed)
    assert a.structural_hash() == b.structural_hash()


def test_different_seeds_differ():
    hashes = {random_graph(seed).structural_hash() for seed in range(8)}
    assert len(hashes) == 8


def test_fuzzer_covers_many_op_types():
    ops = set()
    for seed in range(12):
        for node in random_graph(seed).nodes.values():
            ops.add(node.op_type)
    # The builder pool spans conv/pool/matmul/shape/reduce/normalisation
    # families; 12 seeds should comfortably exercise >25 distinct op types.
    assert len(ops) > 25


def test_fuzzed_specs_agree_with_inference():
    """Node specs recorded at build time re-derive identically."""
    graph = random_graph(3)
    for nid, node in graph.nodes.items():
        if not graph.in_edges(nid):
            continue
        for slot, spec in enumerate(node.outputs):
            rederived = infer_output_spec(
                node.op_type, graph.input_specs(nid), node.attrs, slot)
            assert tuple(rederived.shape.dims) == tuple(spec.shape.dims)


def test_fuzzed_graphs_execute_cleanly():
    executor = NumpyExecutor()
    for seed in range(6):
        graph = random_graph(seed)
        report = executor.run_detailed(graph, random_inputs(graph, seed=seed))
        assert report.num_fallbacks == 0, (seed, report.fallback_ops)
        assert report.outputs


def test_num_ops_scales_graph_size():
    small = GraphFuzzer(0).build(num_ops=4)
    large = GraphFuzzer(0).build(num_ops=20)
    assert large.num_nodes > small.num_nodes
