"""Persisted calibration presets: save once, load at every startup."""

from __future__ import annotations

import json

import pytest

from repro.cost.device import (GTX1080, clear_preset_cache, default_device,
                               load_preset, preset_path)
from repro.exec.calibrate import calibrate, save_preset


@pytest.fixture()
def preset_env(tmp_path, monkeypatch):
    """Point REPRO_DEVICE_PRESET at a tmp file and reset the memo cache."""
    path = tmp_path / "device_preset.json"
    monkeypatch.setenv("REPRO_DEVICE_PRESET", str(path))
    clear_preset_cache()
    yield path
    clear_preset_cache()


@pytest.fixture()
def calibration(mlp_graph):
    return calibrate([mlp_graph], repeats=1, grid=[0.5, 1.0, 2.0])


def test_off_disables_preset_loading(monkeypatch):
    monkeypatch.setenv("REPRO_DEVICE_PRESET", "off")
    clear_preset_cache()
    assert preset_path() is None
    assert default_device().config == GTX1080


def test_save_preset_round_trips_the_fitted_device(preset_env, calibration):
    written = save_preset(calibration)
    assert written == preset_env
    assert load_preset(preset_env).config == calibration.device_after.config


def test_default_device_loads_the_saved_preset(preset_env, calibration):
    assert default_device().config == GTX1080  # nothing saved yet
    save_preset(calibration)
    assert default_device().config == calibration.device_after.config


def test_save_preset_returns_none_when_disabled(monkeypatch, calibration):
    monkeypatch.setenv("REPRO_DEVICE_PRESET", "off")
    clear_preset_cache()
    assert save_preset(calibration) is None


def test_explicit_path_overrides_disabled_env(monkeypatch, tmp_path,
                                              calibration):
    monkeypatch.setenv("REPRO_DEVICE_PRESET", "off")
    clear_preset_cache()
    target = tmp_path / "explicit.json"
    assert save_preset(calibration, target) == target
    assert load_preset(target).config == calibration.device_after.config


def test_corrupt_preset_falls_back_to_defaults(preset_env):
    preset_env.write_text("{not json")
    clear_preset_cache()
    assert default_device().config == GTX1080


def test_unknown_keys_are_ignored_for_forward_compat(preset_env, calibration):
    save_preset(calibration)
    payload = json.loads(preset_env.read_text())
    payload["device"]["some_future_field"] = 42
    preset_env.write_text(json.dumps(payload))
    clear_preset_cache()
    assert default_device().config == calibration.device_after.config


def test_preset_file_records_fit_metadata(preset_env, calibration):
    save_preset(calibration)
    payload = json.loads(preset_env.read_text())
    assert payload["format"] == "repro-device-preset"
    assert payload["fit"]["num_samples"] == len(calibration.samples)
    assert payload["fit"]["error_after"] <= payload["fit"]["error_before"]


def test_rewritten_preset_is_picked_up(preset_env, calibration):
    save_preset(calibration)
    first = default_device().config
    payload = json.loads(preset_env.read_text())
    payload["device"]["flops_per_ms"] = first.flops_per_ms * 3
    preset_env.write_text(json.dumps(payload))
    # mtime-keyed memoisation must notice the rewrite
    assert default_device().config.flops_per_ms == first.flops_per_ms * 3
