"""Differential correctness harness: rewrites must preserve executed outputs.

Every curated rule and every optimiser is driven over donor graphs and the
before/after pair is executed with the numpy backend on random inputs.
Exactly-equivalent rules must agree to ``rtol=1e-5 / atol=1e-6``; the two
partially-equivalent families (kernel enlargement, Winograd) are checked
shape-only — they change values by design and X-RLflow treats them as
opening moves, not final graphs.
"""

from __future__ import annotations

import numpy as np
import pytest
from graphgen import random_graph

from repro.exec import (MeasuredLatency, NumpyExecutor, calibrate,
                        differential_check, random_inputs)
from repro.ir import GraphBuilder
from repro.rl.env import GraphRewriteEnv
from repro.rules import exact_ruleset
from repro.rules.rulesets import DEFAULT_RULE_CLASSES
from repro.search import (ConvToWinogradGemm, GreedyOptimizer, PETOptimizer,
                          RandomSearchOptimizer, TASOOptimizer,
                          TensatOptimizer, pet_ruleset)

# ---------------------------------------------------------------------------
# Donor graphs: the conftest fixtures plus hand-built pattern graphs that
# trigger the algebraic/cleanup rules, plus a few fuzzer graphs.
# ---------------------------------------------------------------------------


def _scaled_attention():
    b = GraphBuilder("scaled_attention")
    x = b.input((2, 4, 8), name="x")
    w = b.weight((8, 8), name="w")
    q = b.matmul(x, w)
    kt = b.transpose(x, (0, 2, 1))
    scores = b.batch_matmul(q, kt)
    scale = b.constant((1,), name="scale")
    return b.build([b.mul(scores, scale)])


def _mul_over_add():
    b = GraphBuilder("mul_over_add")
    x = b.input((2, 8), name="x")
    y = b.weight((2, 8), name="y")
    c = b.constant((1,), name="c")
    return b.build([b.mul(b.add(x, y), c)])


def _reassoc_chain():
    b = GraphBuilder("reassoc")
    x = b.input((4, 8), name="x")
    a = b.weight((8, 16), name="a")
    c = b.weight((16, 4), name="c")
    return b.build([b.matmul(b.matmul(x, a), c)])


def _double_transpose():
    b = GraphBuilder("double_transpose")
    x = b.input((2, 3, 4), name="x")
    t = b.transpose(b.transpose(x, (0, 2, 1)), (0, 2, 1))
    return b.build([b.relu(t)])


def _slice_of_concat():
    b = GraphBuilder("slice_concat")
    x = b.input((2, 4), name="x")
    y = b.weight((2, 6), name="y")
    cat = b.concat([x, y], axis=1)
    return b.build([b.relu(b.slice(cat, axis=1, start=0, end=4))])


def _mul_of_reshape():
    b = GraphBuilder("mul_reshape")
    x = b.input((2, 12), name="x")
    r = b.reshape(x, (2, 3, 4))
    c = b.constant((1,), name="c")
    return b.build([b.mul(r, c)])


def _parallel_same_kernel_convs():
    b = GraphBuilder("parallel_convs")
    x = b.input((1, 4, 8, 8), name="x")
    c1 = b.conv2d(x, 6, kernel=3)
    c2 = b.conv2d(x, 10, kernel=3)
    return b.build([b.concat([c1, c2], axis=1)])


def _fused_conv_bn_then_relu(conv_graph):
    """conv_graph after fuse-conv-bn: the donor FuseConvBNRelu needs."""
    from repro.rules.rulesets import FuseConvBatchNorm
    rule = FuseConvBatchNorm()
    return rule.apply(conv_graph, rule.find_matches(conv_graph)[0])


def _pushed_scaled_attention():
    """Scaled attention after push-mul-bmm: fold-mul-matmul's donor."""
    from repro.rules.rulesets import PushMulThroughBatchMatMul
    g = _scaled_attention()
    rule = PushMulThroughBatchMatMul()
    return rule.apply(g, rule.find_matches(g)[0])


FIXTURE_DONORS = ["mlp_graph", "conv_graph", "fire_graph", "attention_graph",
                  "shared_matmul_graph"]
BUILT_DONORS = [_scaled_attention, _mul_over_add, _reassoc_chain,
                _double_transpose, _slice_of_concat, _mul_of_reshape,
                _parallel_same_kernel_convs, _pushed_scaled_attention]


@pytest.fixture
def donors(request):
    graphs = [request.getfixturevalue(name) for name in FIXTURE_DONORS]
    graphs += [build() for build in BUILT_DONORS]
    graphs.append(_fused_conv_bn_then_relu(
        request.getfixturevalue("conv_graph")))
    graphs += [random_graph(seed) for seed in range(4)]
    return graphs


ALL_RULE_CLASSES = list(DEFAULT_RULE_CLASSES) + [ConvToWinogradGemm]


# ---------------------------------------------------------------------------
# Per-rule sweep: every rule fires somewhere, and what it produces is
# executed-equivalent (or shape-equivalent for the partial families).
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rule_cls", ALL_RULE_CLASSES,
                         ids=[cls.__name__ for cls in ALL_RULE_CLASSES])
def test_rule_preserves_executed_outputs(rule_cls, donors):
    rule = rule_cls()
    checked = 0
    for graph in donors:
        for match in rule.find_matches(graph)[:2]:
            transformed = rule.apply(graph, match)
            transformed.validate()
            report = differential_check(
                graph, transformed, require_values=rule.exactly_equivalent)
            assert report.equivalent, (
                f"{rule.name} on {graph.name}: {report.problems}")
            checked += 1
        if checked >= 3:
            break
    assert checked > 0, f"rule {rule.name} never matched any donor graph"


def test_enlarge_conv_changes_values_but_not_shapes(fire_graph):
    """The partial rule really is partial: shapes agree, values diverge —
    documenting why it is excluded from the value-checked sweep."""
    from repro.rules.rulesets import EnlargeConvKernel
    rule = EnlargeConvKernel()
    match = rule.find_matches(fire_graph)[0]
    enlarged = rule.apply(fire_graph, match)
    shape_only = differential_check(fire_graph, enlarged, require_values=False)
    assert shape_only.equivalent
    valued = differential_check(fire_graph, enlarged, require_values=True)
    assert not valued.equivalent


# ---------------------------------------------------------------------------
# Per-optimiser sweep: whole search trajectories preserve semantics when run
# over the exactly-equivalent ruleset.
# ---------------------------------------------------------------------------

def _optimisers():
    exact = exact_ruleset()
    return [
        ("taso", TASOOptimizer(ruleset=exact, max_iterations=12)),
        ("greedy", GreedyOptimizer(ruleset=exact, max_iterations=12)),
        ("pet", PETOptimizer(ruleset=exact, max_iterations=12)),
        ("tensat", TensatOptimizer(ruleset=exact, round_limit=2,
                                   node_limit=2000)),
        ("random", RandomSearchOptimizer(ruleset=exact, num_walks=2,
                                         horizon=8, seed=0)),
    ]


@pytest.mark.parametrize("donor", ["mlp_graph", "conv_graph", "fire_graph",
                                   "shared_matmul_graph"])
def test_optimisers_preserve_executed_outputs(request, donor):
    graph = request.getfixturevalue(donor)
    for name, optimiser in _optimisers():
        result = optimiser.optimise(graph)
        report = differential_check(graph, result.final_graph)
        assert report.equivalent, (
            f"{name} broke {donor}: rules={result.applied_rules} "
            f"problems={report.problems}")


def test_rl_env_episode_preserves_executed_outputs(conv_graph):
    """A random-policy episode through the RL env ends on an equivalent graph."""
    env = GraphRewriteEnv(conv_graph, ruleset=exact_ruleset(),
                          max_steps=8)
    obs = env.reset()
    rng = np.random.default_rng(0)
    for _ in range(8):
        valid = np.flatnonzero(obs.action_mask)
        action = int(rng.choice(valid))
        step = env.step(action)
        obs = step.observation
        if step.done:
            break
    report = differential_check(conv_graph, env.current_graph)
    assert report.equivalent, report.problems


def test_pet_full_ruleset_shape_only(conv_graph):
    """With the partial Winograd family included, PET still preserves shapes."""
    optimiser = PETOptimizer(ruleset=pet_ruleset(), max_iterations=10)
    result = optimiser.optimise(conv_graph)
    report = differential_check(conv_graph, result.final_graph,
                                require_values=False)
    assert report.equivalent, report.problems


# ---------------------------------------------------------------------------
# Random rewrite walks over fuzzer graphs (beyond the hand-written donors).
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
def test_random_walk_on_fuzzed_graph_is_equivalent(seed):
    graph = random_graph(seed)
    ruleset = exact_ruleset()
    rng = np.random.default_rng(seed)
    current = graph
    applied = []
    for _ in range(6):
        candidates = ruleset.all_candidates(current)
        if not candidates:
            break
        chosen = candidates[int(rng.integers(len(candidates)))]
        current, applied = chosen.graph, applied + [chosen.rule_name]
    report = differential_check(graph, current)
    assert report.equivalent, (applied, report.problems)


# ---------------------------------------------------------------------------
# Measured-cost wiring and calibration.
# ---------------------------------------------------------------------------

def test_optimiser_measured_cost_source(mlp_graph):
    optimiser = GreedyOptimizer(ruleset=exact_ruleset(), max_iterations=6,
                                cost_source="measured")
    result = optimiser.optimise(mlp_graph)
    assert result.stats["measured_latency"] == 1.0
    assert result.initial_latency_ms > 0.0
    assert result.final_latency_ms > 0.0
    report = differential_check(mlp_graph, result.final_graph)
    assert report.equivalent


def test_random_search_measured_objective(mlp_graph):
    optimiser = RandomSearchOptimizer(ruleset=exact_ruleset(), num_walks=1,
                                      horizon=4, cost_source="measured")
    result = optimiser.optimise(mlp_graph)
    assert result.stats["measured_latency"] == 1.0
    assert result.final_latency_ms <= result.initial_latency_ms * 10


def test_rl_env_measured_reward(mlp_graph):
    env = GraphRewriteEnv(mlp_graph, ruleset=exact_ruleset(), max_steps=3,
                          cost_source="measured")
    assert isinstance(env.e2e, MeasuredLatency)
    env.reset()
    step = env.step(0)  # No-Op is always a valid action
    assert np.isfinite(step.reward)


def test_unknown_cost_source_rejected(mlp_graph):
    with pytest.raises(ValueError):
        GreedyOptimizer(cost_source="oracle")
    with pytest.raises(ValueError):
        GraphRewriteEnv(mlp_graph, cost_source="oracle")


def test_calibrate_never_worsens_fit(mlp_graph, conv_graph):
    executor = NumpyExecutor()
    result = calibrate([mlp_graph, conv_graph], executor=executor, repeats=1)
    assert result.samples
    assert result.error_after <= result.error_before + 1e-9
    assert result.improvement >= 1.0
    ratios = result.op_class_ratios()
    assert ratios and all(r > 0 for r in ratios.values())


def test_differential_check_rejects_broken_rewrite(mlp_graph):
    """A rewrite that actually changes semantics is caught, not waved through."""
    broken = mlp_graph.copy()
    # Renaming a weight changes its deterministic materialisation — a
    # semantics change with identical shapes.  Graph.copy shares Node
    # objects, so swap in a private copy before touching the name.
    wid = next(nid for nid, n in broken.nodes.items()
               if n.op_type.value == "Weight")
    broken.nodes[wid] = broken.nodes[wid].copy()
    broken.nodes[wid].name = broken.nodes[wid].name + "_renamed"
    report = differential_check(mlp_graph, broken)
    assert not report.equivalent
    assert report.max_abs_err > 0


def test_random_inputs_cover_all_graph_inputs(attention_graph):
    feeds = random_inputs(attention_graph, seed=3)
    names = {attention_graph.nodes[nid].name
             for nid in attention_graph.input_nodes()}
    assert set(feeds) == names
