"""Documentation gates, mirrored in CI's docs job.

Three checks: every relative link/anchor in README + ``docs/`` resolves,
every public symbol in ``repro.service`` carries a docstring, and the
cookbook's fenced doctest examples actually execute.
"""

from __future__ import annotations

import doctest
import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve():
    checker = _load_checker()
    problems = checker.check_links(checker.default_doc_files())
    assert problems == [], "\n".join(problems)


def test_docs_suite_exists():
    for name in ("architecture.md", "service.md", "extending.md",
                 "parallel.md"):
        assert (REPO_ROOT / "docs" / name).exists(), f"docs/{name} missing"


def test_service_public_api_is_documented():
    checker = _load_checker()
    problems = checker.check_docstrings(
        [REPO_ROOT / "src" / "repro" / "service"])
    assert problems == [], "\n".join(problems)


def test_extending_cookbook_doctests():
    path = REPO_ROOT / "docs" / "extending.md"
    results = doctest.testfile(str(path), module_relative=False,
                               optionflags=doctest.ELLIPSIS)
    assert results.attempted > 0, "cookbook lost its doctest examples"
    assert results.failed == 0, \
        f"{results.failed}/{results.attempted} cookbook doctests failed " \
        f"(run: PYTHONPATH=src python -m doctest docs/extending.md -v)"
