"""Convolutional model-zoo graphs: InceptionV3, SqueezeNet, ResNeXt-50, ResNet-18.

These builders reproduce the *structure* of the published architectures
(operator types, tensor shapes, connectivity) which is all the tensor-graph
superoptimiser consumes.  Depth parameters default to moderately sized
configurations so the simulator and RL environment stay laptop-fast; pass
larger values to approach the full published depth.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph, NodeId

__all__ = ["build_inception_v3", "build_squeezenet", "build_resnext50",
           "build_resnet18"]


# ---------------------------------------------------------------------------
# InceptionV3
# ---------------------------------------------------------------------------

def _inception_block_a(b: GraphBuilder, x: NodeId, pool_features: int) -> NodeId:
    """InceptionA: 1x1, 5x5(factorised), double-3x3 and pooled branches."""
    branch1 = b.conv_bn_relu(x, 64, kernel=1)
    branch5 = b.conv_bn_relu(x, 48, kernel=1)
    branch5 = b.conv_bn_relu(branch5, 64, kernel=5)
    branch3 = b.conv_bn_relu(x, 64, kernel=1)
    branch3 = b.conv_bn_relu(branch3, 96, kernel=3)
    branch3 = b.conv_bn_relu(branch3, 96, kernel=3)
    pooled = b.avgpool(x, kernel=3, stride=1, padding="same")
    pooled = b.conv_bn_relu(pooled, pool_features, kernel=1)
    return b.concat([branch1, branch5, branch3, pooled], axis=1)


def _inception_block_b(b: GraphBuilder, x: NodeId, channels_7x7: int) -> NodeId:
    """InceptionB (factorised 7x7 branches, modelled as 3x3 pairs)."""
    branch1 = b.conv_bn_relu(x, 192, kernel=1)
    branch7 = b.conv_bn_relu(x, channels_7x7, kernel=1)
    branch7 = b.conv_bn_relu(branch7, channels_7x7, kernel=3)
    branch7 = b.conv_bn_relu(branch7, 192, kernel=3)
    branch7d = b.conv_bn_relu(x, channels_7x7, kernel=1)
    branch7d = b.conv_bn_relu(branch7d, channels_7x7, kernel=3)
    branch7d = b.conv_bn_relu(branch7d, 192, kernel=3)
    pooled = b.avgpool(x, kernel=3, stride=1, padding="same")
    pooled = b.conv_bn_relu(pooled, 192, kernel=1)
    return b.concat([branch1, branch7, branch7d, pooled], axis=1)


def _inception_block_c(b: GraphBuilder, x: NodeId) -> NodeId:
    """InceptionC: the widest block with split-and-concat sub-branches."""
    branch1 = b.conv_bn_relu(x, 320, kernel=1)
    branch3 = b.conv_bn_relu(x, 384, kernel=1)
    branch3a = b.conv_bn_relu(branch3, 384, kernel=3)
    branch3b = b.conv_bn_relu(branch3, 384, kernel=3)
    branch3 = b.concat([branch3a, branch3b], axis=1)
    branchd = b.conv_bn_relu(x, 448, kernel=1)
    branchd = b.conv_bn_relu(branchd, 384, kernel=3)
    branchda = b.conv_bn_relu(branchd, 384, kernel=3)
    branchdb = b.conv_bn_relu(branchd, 384, kernel=3)
    branchd = b.concat([branchda, branchdb], axis=1)
    pooled = b.avgpool(x, kernel=3, stride=1, padding="same")
    pooled = b.conv_bn_relu(pooled, 192, kernel=1)
    return b.concat([branch1, branch3, branchd, pooled], axis=1)


def _reduction_block(b: GraphBuilder, x: NodeId, out3: int, out5: int) -> NodeId:
    branch3 = b.conv_bn_relu(x, out3, kernel=3, stride=2, padding="valid")
    branch5 = b.conv_bn_relu(x, 64, kernel=1)
    branch5 = b.conv_bn_relu(branch5, 96, kernel=3)
    branch5 = b.conv_bn_relu(branch5, out5, kernel=3, stride=2, padding="valid")
    pooled = b.maxpool(x, kernel=3, stride=2, padding="valid")
    return b.concat([branch3, branch5, pooled], axis=1)


def build_inception_v3(batch_size: int = 1, image_size: int = 299,
                       blocks_a: int = 2, blocks_b: int = 2,
                       blocks_c: int = 2, num_classes: int = 1000) -> Graph:
    """InceptionV3-style computation graph.

    The stem and the three block families follow Szegedy et al. (2016); the
    number of repetitions per family is configurable (the published network
    uses 3/4/2).
    """
    b = GraphBuilder("inception_v3")
    x = b.input((batch_size, 3, image_size, image_size), name="image")
    # Stem
    x = b.conv_bn_relu(x, 32, kernel=3, stride=2, padding="valid")
    x = b.conv_bn_relu(x, 32, kernel=3, padding="valid")
    x = b.conv_bn_relu(x, 64, kernel=3)
    x = b.maxpool(x, kernel=3, stride=2, padding="valid")
    x = b.conv_bn_relu(x, 80, kernel=1)
    x = b.conv_bn_relu(x, 192, kernel=3, padding="valid")
    x = b.maxpool(x, kernel=3, stride=2, padding="valid")
    # Block family A
    for i in range(blocks_a):
        x = _inception_block_a(b, x, pool_features=32 if i == 0 else 64)
    x = _reduction_block(b, x, out3=384, out5=96)
    # Block family B
    for i in range(blocks_b):
        x = _inception_block_b(b, x, channels_7x7=128 + 32 * min(i, 2))
    x = _reduction_block(b, x, out3=320, out5=192)
    # Block family C
    for _ in range(blocks_c):
        x = _inception_block_c(b, x)
    # Head
    x = b.global_avgpool(x)
    logits = b.linear(x, b.graph.nodes[x].output_spec.shape.dims[-1],
                      num_classes, name="classifier")
    return b.build([logits])


# ---------------------------------------------------------------------------
# SqueezeNet
# ---------------------------------------------------------------------------

def _fire_module(b: GraphBuilder, x: NodeId, squeeze: int, expand: int) -> NodeId:
    """Fire module: 1x1 squeeze followed by parallel 1x1 / 3x3 expands."""
    s = b.conv2d(x, squeeze, kernel=1)
    s = b.relu(s)
    e1 = b.conv2d(s, expand, kernel=1)
    e1 = b.relu(e1)
    e3 = b.conv2d(s, expand, kernel=3)
    e3 = b.relu(e3)
    return b.concat([e1, e3], axis=1)


def build_squeezenet(batch_size: int = 1, image_size: int = 224,
                     num_classes: int = 1000) -> Graph:
    """SqueezeNet v1.1 computation graph (Iandola et al., 2016)."""
    b = GraphBuilder("squeezenet")
    x = b.input((batch_size, 3, image_size, image_size), name="image")
    x = b.conv2d(x, 64, kernel=3, stride=2, padding="valid")
    x = b.relu(x)
    x = b.maxpool(x, kernel=3, stride=2, padding="valid")
    x = _fire_module(b, x, 16, 64)
    x = _fire_module(b, x, 16, 64)
    x = b.maxpool(x, kernel=3, stride=2, padding="valid")
    x = _fire_module(b, x, 32, 128)
    x = _fire_module(b, x, 32, 128)
    x = b.maxpool(x, kernel=3, stride=2, padding="valid")
    x = _fire_module(b, x, 48, 192)
    x = _fire_module(b, x, 48, 192)
    x = _fire_module(b, x, 64, 256)
    x = _fire_module(b, x, 64, 256)
    x = b.conv2d(x, num_classes, kernel=1)
    x = b.relu(x)
    x = b.global_avgpool(x)
    return b.build([x])


# ---------------------------------------------------------------------------
# ResNeXt-50 and ResNet-18
# ---------------------------------------------------------------------------

def _resnext_block(b: GraphBuilder, x: NodeId, width: int, out_channels: int,
                   stride: int, groups: int) -> NodeId:
    """ResNeXt bottleneck: 1x1 reduce, grouped 3x3, 1x1 expand + residual."""
    identity = x
    h = b.conv_bn_relu(x, width, kernel=1)
    h = b.group_conv2d(h, width, groups=groups, kernel=3, stride=stride)
    h = b.batchnorm(h)
    h = b.relu(h)
    h = b.conv2d(h, out_channels, kernel=1)
    h = b.batchnorm(h)
    in_channels = b.graph.nodes[x].output_spec.shape.dims[1]
    if stride != 1 or in_channels != out_channels:
        identity = b.conv2d(x, out_channels, kernel=1, stride=stride)
        identity = b.batchnorm(identity)
    h = b.add(h, identity)
    return b.relu(h)


def build_resnext50(batch_size: int = 1, image_size: int = 224,
                    layers: Sequence[int] = (3, 4, 6, 3), groups: int = 32,
                    base_width: int = 4, num_classes: int = 1000) -> Graph:
    """ResNeXt-50 (32x4d) computation graph (Xie et al. / He et al., 2016)."""
    b = GraphBuilder("resnext50")
    x = b.input((batch_size, 3, image_size, image_size), name="image")
    x = b.conv_bn_relu(x, 64, kernel=7, stride=2)
    x = b.maxpool(x, kernel=3, stride=2, padding="same")
    channels = 256
    for stage, num_blocks in enumerate(layers):
        width = groups * base_width * (2 ** stage)
        for block in range(num_blocks):
            stride = 2 if (block == 0 and stage > 0) else 1
            x = _resnext_block(b, x, width, channels, stride, groups)
        channels *= 2
    x = b.global_avgpool(x)
    logits = b.linear(x, b.graph.nodes[x].output_spec.shape.dims[-1],
                      num_classes, name="classifier")
    return b.build([logits])


def _basic_block(b: GraphBuilder, x: NodeId, out_channels: int, stride: int) -> NodeId:
    identity = x
    h = b.conv_bn_relu(x, out_channels, kernel=3, stride=stride)
    h = b.conv2d(h, out_channels, kernel=3)
    h = b.batchnorm(h)
    in_channels = b.graph.nodes[x].output_spec.shape.dims[1]
    if stride != 1 or in_channels != out_channels:
        identity = b.conv2d(x, out_channels, kernel=1, stride=stride)
        identity = b.batchnorm(identity)
    h = b.add(h, identity)
    return b.relu(h)


def build_resnet18(batch_size: int = 1, image_size: int = 224,
                   num_classes: int = 1000) -> Graph:
    """ResNet-18 computation graph (He et al., 2016)."""
    b = GraphBuilder("resnet18")
    x = b.input((batch_size, 3, image_size, image_size), name="image")
    x = b.conv_bn_relu(x, 64, kernel=7, stride=2)
    x = b.maxpool(x, kernel=3, stride=2, padding="same")
    for stage, out_channels in enumerate((64, 128, 256, 512)):
        for block in range(2):
            stride = 2 if (block == 0 and stage > 0) else 1
            x = _basic_block(b, x, out_channels, stride)
    x = b.global_avgpool(x)
    logits = b.linear(x, 512, num_classes, name="classifier")
    return b.build([logits])
