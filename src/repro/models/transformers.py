"""Transformer model-zoo graphs: BERT, ViT, DALL-E decoder, Transformer-Transducer.

As with the convolutional zoo, these builders reproduce the operator
composition and tensor shapes of the published architectures.  ``num_layers``
defaults keep graphs a few hundred nodes so the pure-Python optimisers stay
fast; the full published depths (12 for BERT-base, etc.) are reachable by
passing larger values.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph

__all__ = ["build_bert", "build_vit", "build_dalle", "build_transformer_transducer"]


def build_bert(batch_size: int = 1, seq_len: int = 128, hidden: int = 768,
               num_heads: int = 12, num_layers: int = 4,
               vocab_size: int = 30522) -> Graph:
    """BERT encoder computation graph (Devlin et al., 2019).

    Embedding lookup, ``num_layers`` pre-LN transformer encoder blocks and a
    pooled classification head.
    """
    b = GraphBuilder("bert")
    tokens = b.input((batch_size, seq_len), name="token_ids")
    x = b.embedding(tokens, vocab_size, hidden, name="token_embedding")
    pos = b.weight((batch_size, seq_len, hidden), name="position_embedding")
    x = b.add(x, pos)
    x = b.layernorm(x)
    for layer in range(num_layers):
        x = b.transformer_block(x, hidden, num_heads, seq_len,
                                batch=batch_size, name=f"layer{layer}")
    x = b.layernorm(x)
    # Pooler: first-token slice followed by a dense + tanh
    cls = b.slice(x, axis=1, start=0, end=1)
    cls = b.reshape(cls, (batch_size, hidden))
    pooled = b.linear(cls, hidden, hidden, name="pooler")
    pooled = b.tanh(pooled)
    return b.build([pooled])


def build_vit(batch_size: int = 1, image_size: int = 224, patch_size: int = 16,
              hidden: int = 768, num_heads: int = 12, num_layers: int = 4,
              num_classes: int = 1000) -> Graph:
    """Vision Transformer computation graph (ViT-Base style).

    Patch embedding via a strided convolution, learned position embeddings,
    transformer encoder blocks and a classification head.
    """
    b = GraphBuilder("vit")
    num_patches = (image_size // patch_size) ** 2
    x = b.input((batch_size, 3, image_size, image_size), name="image")
    # Patch embedding: conv with kernel = stride = patch size.
    x = b.conv2d(x, hidden, kernel=patch_size, stride=patch_size, padding="valid",
                 name="patch_embed")
    x = b.reshape(x, (batch_size, hidden, num_patches))
    x = b.transpose(x, (0, 2, 1))
    pos = b.weight((batch_size, num_patches, hidden), name="position_embedding")
    x = b.add(x, pos)
    for layer in range(num_layers):
        x = b.transformer_block(x, hidden, num_heads, num_patches,
                                batch=batch_size, name=f"layer{layer}")
    x = b.layernorm(x)
    x = b.reduce_mean(x, axis=1)
    logits = b.linear(x, hidden, num_classes, name="classifier")
    return b.build([logits])


def build_dalle(batch_size: int = 1, text_len: int = 64, image_tokens: int = 256,
                hidden: int = 512, num_heads: int = 8, num_layers: int = 4,
                vocab_size: int = 16384) -> Graph:
    """DALL-E style decoder-only transformer over text + image tokens.

    The published model interleaves text and image token streams through a
    single autoregressive decoder; we model the combined sequence with
    separate text/image embeddings feeding shared decoder blocks.
    """
    b = GraphBuilder("dalle")
    seq_len = text_len + image_tokens
    text = b.input((batch_size, text_len), name="text_tokens")
    image = b.input((batch_size, image_tokens), name="image_tokens")
    text_emb = b.embedding(text, vocab_size, hidden, name="text_embedding")
    image_emb = b.embedding(image, vocab_size, hidden, name="image_embedding")
    x = b.concat([text_emb, image_emb], axis=1)
    pos = b.weight((batch_size, seq_len, hidden), name="position_embedding")
    x = b.add(x, pos)
    for layer in range(num_layers):
        x = b.transformer_block(x, hidden, num_heads, seq_len,
                                batch=batch_size, name=f"decoder{layer}")
    x = b.layernorm(x)
    logits = b.linear(x, hidden, vocab_size, name="lm_head")
    return b.build([logits])


def build_transformer_transducer(batch_size: int = 1, audio_frames: int = 200,
                                 label_len: int = 32, hidden: int = 512,
                                 num_heads: int = 8, audio_layers: int = 3,
                                 label_layers: int = 2,
                                 vocab_size: int = 4096) -> Graph:
    """Transformer-Transducer (T-T) computation graph (Zhang et al., 2020).

    A transformer audio encoder, a transformer label encoder and a joint
    network combining both streams, as used in streaming speech recognition.
    """
    b = GraphBuilder("transformer_transducer")
    # Audio encoder: log-mel features projected into the model dimension.
    audio = b.input((batch_size, audio_frames, 80), name="audio_features")
    x = b.linear(audio, 80, hidden, name="audio_proj")
    pos_a = b.weight((batch_size, audio_frames, hidden), name="audio_pos")
    x = b.add(x, pos_a)
    for layer in range(audio_layers):
        x = b.transformer_block(x, hidden, num_heads, audio_frames,
                                batch=batch_size, name=f"audio{layer}")
    audio_enc = b.layernorm(x)

    # Label encoder over the previously emitted tokens.
    labels = b.input((batch_size, label_len), name="label_tokens")
    y = b.embedding(labels, vocab_size, hidden, name="label_embedding")
    pos_l = b.weight((batch_size, label_len, hidden), name="label_pos")
    y = b.add(y, pos_l)
    for layer in range(label_layers):
        y = b.transformer_block(y, hidden, num_heads, label_len,
                                batch=batch_size, name=f"label{layer}")
    label_enc = b.layernorm(y)

    # Joint network: project both encodings into a shared space, combine and
    # emit vocabulary logits.  (The true joint op broadcasts across both time
    # axes; we keep the projected tensors separate, which preserves the
    # operator mix without creating a rank-5 tensor.)
    audio_proj = b.linear(audio_enc, hidden, hidden // 2, name="joint_audio")
    label_proj = b.linear(label_enc, hidden, hidden // 2, name="joint_label")
    audio_vec = b.reduce_mean(audio_proj, axis=1)
    label_vec = b.reduce_mean(label_proj, axis=1)
    joint = b.add(audio_vec, label_vec)
    joint = b.tanh(joint)
    logits = b.linear(joint, hidden // 2, vocab_size, name="joint_head")
    return b.build([logits])
