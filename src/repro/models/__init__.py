"""Model zoo: computation-graph builders for the DNNs evaluated in the paper."""

from .convnets import (build_inception_v3, build_resnet18, build_resnext50,
                       build_squeezenet)
from .transformers import (build_bert, build_dalle,
                           build_transformer_transducer, build_vit)
from .registry import (MODEL_REGISTRY, ModelInfo, PAPER_EVAL_MODELS,
                       TABLE1_MODELS, TENSAT_MODELS, build_model, list_models)

__all__ = [
    "build_inception_v3", "build_resnet18", "build_resnext50", "build_squeezenet",
    "build_bert", "build_dalle", "build_transformer_transducer", "build_vit",
    "MODEL_REGISTRY", "ModelInfo", "PAPER_EVAL_MODELS", "TABLE1_MODELS",
    "TENSAT_MODELS", "build_model", "list_models",
]
