"""Model registry: name → graph builder, plus the paper's evaluation suite.

The seven DNNs in the paper's Table 3 are: InceptionV3, SqueezeNet,
ResNeXt-50 (convolutional) and BERT, DALL-E, T-T, ViT (transformer).
ResNet-18 is used only for the PET comparison (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..ir.graph import Graph
from .convnets import (build_inception_v3, build_resnet18, build_resnext50,
                       build_squeezenet)
from .transformers import (build_bert, build_dalle,
                           build_transformer_transducer, build_vit)

__all__ = ["ModelInfo", "MODEL_REGISTRY", "build_model", "list_models",
           "PAPER_EVAL_MODELS", "TABLE1_MODELS", "TENSAT_MODELS"]


@dataclass(frozen=True)
class ModelInfo:
    """Metadata about one model-zoo entry."""

    name: str
    family: str  # "convolutional" or "transformer"
    builder: Callable[..., Graph]
    description: str


MODEL_REGISTRY: Dict[str, ModelInfo] = {
    "inception_v3": ModelInfo(
        "inception_v3", "convolutional", build_inception_v3,
        "InceptionV3 image classifier (Szegedy et al., 2016)"),
    "squeezenet": ModelInfo(
        "squeezenet", "convolutional", build_squeezenet,
        "SqueezeNet v1.1 image classifier (Iandola et al., 2016)"),
    "resnext50": ModelInfo(
        "resnext50", "convolutional", build_resnext50,
        "ResNeXt-50 32x4d image classifier"),
    "resnet18": ModelInfo(
        "resnet18", "convolutional", build_resnet18,
        "ResNet-18 image classifier (He et al., 2016)"),
    "bert": ModelInfo(
        "bert", "transformer", build_bert,
        "BERT encoder (Devlin et al., 2019)"),
    "vit": ModelInfo(
        "vit", "transformer", build_vit,
        "Vision Transformer (ViT-Base style)"),
    "dalle": ModelInfo(
        "dalle", "transformer", build_dalle,
        "DALL-E style decoder-only transformer (Ramesh et al., 2021)"),
    "tt": ModelInfo(
        "tt", "transformer", build_transformer_transducer,
        "Transformer-Transducer for streaming ASR (Zhang et al., 2020)"),
}

#: The seven DNNs evaluated in the paper (Table 3 / Figure 4).
PAPER_EVAL_MODELS: List[str] = [
    "inception_v3", "squeezenet", "resnext50", "bert", "dalle", "tt", "vit",
]

#: Models reported in Table 1 (cost-model vs end-to-end discrepancy).
TABLE1_MODELS: List[str] = [
    "dalle", "inception_v3", "bert", "squeezenet", "resnext50", "tt",
]

#: Models used for the Tensat comparison (Figure 8).
TENSAT_MODELS: List[str] = ["bert", "inception_v3", "squeezenet", "resnext50"]


def build_model(name: str, **kwargs) -> Graph:
    """Build the named model's computation graph.

    ``kwargs`` are forwarded to the underlying builder (batch size, image
    size, number of layers, …).

    Beyond zoo names, ``onnx:<path>`` loads a foreign model through the
    ONNX frontend (``.onnx`` protobuf or the JSON fallback format).  Pass
    ``strict=True`` to reject models with unbridged ops instead of
    degrading them to opaque ``Custom`` nodes.
    """
    if name.startswith("onnx:"):
        from ..frontend import import_model
        path = name[len("onnx:"):]
        strict = bool(kwargs.pop("strict", False))
        if kwargs:
            raise TypeError(
                f"onnx: models take no builder kwargs, got {sorted(kwargs)}")
        graph, _report = import_model(path, strict=strict)
        return graph
    key = name.lower().replace("-", "_")
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)} "
            f"or 'onnx:<path>'")
    return MODEL_REGISTRY[key].builder(**kwargs)


def list_models(family: Optional[str] = None) -> List[str]:
    """Names of all registered models, optionally filtered by family."""
    return [
        name for name, info in MODEL_REGISTRY.items()
        if family is None or info.family == family
    ]
