"""Numpy reference executor: actually *run* a computation graph.

The rest of the stack reasons about latency analytically
(:class:`~repro.cost.e2e.E2ESimulator`); this module is the ground truth
it is checked against.  :class:`NumpyExecutor` walks the graph's memoised
topological order, dispatches every node through the per-op kernel table
(:data:`~repro.exec.kernels.KERNELS`), times each kernel call, and
reference-counts intermediate buffers so a value is dropped as soon as
its last consumer has run.

Weights, constants and unfed inputs are materialised deterministically
from the node *name and shape* (same scheme as the reference
interpreter), so a rewrite that re-wires existing weight nodes sees
identical values before and after — the property the differential
harness in :mod:`repro.exec.differential` relies on.

Unknown operators — anything absent from the kernel table, e.g. an op
added to the registry before a kernel lands — degrade to a *counted*
pass-through of their first input instead of crashing; the fallback
count is part of every :class:`ExecutionReport` so silent coverage holes
cannot hide.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph, NodeId
from ..ir.ops import SOURCE_OPS, OpType
from .kernels import KERNELS

__all__ = ["NumpyExecutor", "ExecutionReport", "MeasuredLatency",
           "deterministic_tensor"]


def _seed_from(name: str, shape: Sequence[int]) -> int:
    payload = f"{name}:{tuple(shape)}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:4], "little")


def deterministic_tensor(name: str, shape: Sequence[int]) -> np.ndarray:
    """Pseudo-random float64 tensor derived from ``(name, shape)`` only.

    Identical to the reference interpreter's materialisation: the value of
    a weight/constant/input is a pure function of its name and shape, so
    both backends (and every rewrite of the same graph) agree on it.
    """
    rng = np.random.default_rng(_seed_from(name, shape))
    return rng.standard_normal(tuple(shape)).astype(np.float64) * 0.1


@dataclass
class ExecutionReport:
    """Everything one :meth:`NumpyExecutor.run_detailed` call observed."""

    #: Sink-node values keyed by node name.
    outputs: Dict[str, np.ndarray]
    #: Sum of per-kernel wall times (materialisation excluded), in ms.
    wall_ms: float
    #: Measured wall time of each executed (non-source) node, in ms.
    per_node_ms: Dict[NodeId, float] = field(default_factory=dict)
    #: ``op name -> count`` of nodes that ran through the pass-through
    #: fallback because no kernel covers their operator.
    fallback_ops: Dict[str, int] = field(default_factory=dict)

    @property
    def num_fallbacks(self) -> int:
        return sum(self.fallback_ops.values())


class NumpyExecutor:
    """Executes graphs with concrete numpy tensors, timing every kernel.

    Parameters
    ----------
    seed:
        Reserved for future stochastic kernels; materialisation itself is
        seeded per-tensor from the node name, not from here.
    kernels:
        Override the dispatch table (tests restrict it to exercise the
        pass-through fallback).  Defaults to the full
        :data:`~repro.exec.kernels.KERNELS` registry.
    """

    def __init__(self, seed: int = 0,
                 kernels: Optional[Mapping[OpType, object]] = None):
        self.seed = int(seed)
        self.kernels = dict(KERNELS if kernels is None else kernels)
        self._param_cache: Dict[Tuple[str, Tuple[int, ...]], np.ndarray] = {}

    # ------------------------------------------------------------------
    def run(self, graph: Graph,
            inputs: Optional[Mapping[str, np.ndarray]] = None
            ) -> Tuple[Dict[str, np.ndarray], float]:
        """Execute ``graph`` and return ``(outputs, wall_ms)``.

        ``outputs`` maps sink-node names to their values; ``wall_ms`` is
        the summed wall time of the executed kernels.  ``inputs`` maps
        Input-node names to arrays; missing inputs are materialised
        deterministically from the node name.
        """
        report = self.run_detailed(graph, inputs)
        return report.outputs, report.wall_ms

    def run_detailed(self, graph: Graph,
                     inputs: Optional[Mapping[str, np.ndarray]] = None
                     ) -> ExecutionReport:
        """Execute ``graph`` and return the full :class:`ExecutionReport`."""
        feeds = dict(inputs or {})
        sinks = set(graph.sink_nodes())
        # Buffer plan: free each node's value once its last consumer ran.
        refcount = {nid: len(graph.out_edges(nid)) + (1 if nid in sinks else 0)
                    for nid in graph.nodes}
        values: Dict[NodeId, List[np.ndarray]] = {}
        per_node_ms: Dict[NodeId, float] = {}
        fallback_ops: Dict[str, int] = {}

        for nid in graph.topological_order():
            node = graph.nodes[nid]
            op = node.op_type
            out_shapes = [tuple(spec.shape.dims) for spec in node.outputs]

            if op in SOURCE_OPS:
                values[nid] = [self._materialise(node, feeds)]
                continue

            in_vals = [values[e.src][e.src_slot] for e in graph.in_edges(nid)]
            kernel = self.kernels.get(op)
            started = time.perf_counter()
            if kernel is None:
                outs = _passthrough(in_vals, out_shapes)
                # Opaque imported nodes are counted under their *foreign*
                # op name so an ImportReport and an ExecutionReport tell
                # the same per-op story.
                key = op.value
                if op is OpType.CUSTOM:
                    key = f"Custom:{node.attrs.get('op', '?')}"
                fallback_ops[key] = fallback_ops.get(key, 0) + 1
            else:
                outs = kernel(in_vals, node.attrs, out_shapes)
            per_node_ms[nid] = (time.perf_counter() - started) * 1e3

            values[nid] = outs
            for edge in graph.in_edges(nid):
                refcount[edge.src] -= 1
                if refcount[edge.src] == 0:
                    del values[edge.src]

        outputs = {graph.nodes[nid].name: values[nid][0] for nid in sinks}
        return ExecutionReport(
            outputs=outputs,
            wall_ms=sum(per_node_ms.values()),
            per_node_ms=per_node_ms,
            fallback_ops=fallback_ops,
        )

    # ------------------------------------------------------------------
    def measure(self, graph: Graph,
                inputs: Optional[Mapping[str, np.ndarray]] = None,
                repeats: int = 3) -> float:
        """Best-of-``repeats`` executed latency of ``graph``, in ms.

        Taking the minimum mirrors how kernel timings are usually reported:
        it is the run least perturbed by the host (GC pauses, scheduler).
        """
        return min(self.run(graph, inputs)[1] for _ in range(max(1, repeats)))

    # ------------------------------------------------------------------
    def _materialise(self, node, feeds: Mapping[str, np.ndarray]) -> np.ndarray:
        shape = tuple(node.outputs[0].shape.dims) if node.outputs else ()
        if node.op_type is OpType.INPUT:
            if node.name in feeds:
                return np.asarray(feeds[node.name], dtype=np.float64)
            prefix = "input:"
        else:
            prefix = "param:"
        key = (prefix + node.name, shape)
        cached = self._param_cache.get(key)
        if cached is None:
            cached = deterministic_tensor(*key)
            self._param_cache[key] = cached
        return cached


def _passthrough(in_vals: List[np.ndarray],
                 out_shapes: List[Tuple[int, ...]]) -> List[np.ndarray]:
    """Fallback for uncovered ops: forward the first input per output slot,
    reshaped when element counts line up, zero-filled otherwise."""
    outs = []
    for shape in out_shapes:
        if in_vals and in_vals[0].size == int(np.prod(shape, dtype=np.int64)):
            outs.append(np.asarray(in_vals[0], dtype=np.float64).reshape(shape))
        else:
            outs.append(np.zeros(shape, dtype=np.float64))
    return outs or [np.zeros(())]


class MeasuredLatency:
    """Executed-latency source with the :class:`E2ESimulator` interface.

    Optimisers take their latency signal through ``latency_ms(graph)``;
    this class answers it with the executor's measured wall clock instead
    of the analytic simulator — the ``cost_source="measured"`` mode.
    Results are memoised on the graph (same mechanism the simulator uses)
    so repeated reporting of one graph executes it once.
    """

    def __init__(self, executor: Optional[NumpyExecutor] = None,
                 repeats: int = 2):
        self.executor = executor or NumpyExecutor()
        self.repeats = int(repeats)
        self._memo_key = ("exec-measured-latency", self.executor.seed,
                          self.repeats)

    def latency_ms(self, graph: Graph) -> float:
        """Best-of-``repeats`` executed wall time of ``graph`` in ms."""
        return graph.memo(
            self._memo_key,
            lambda: self.executor.measure(graph, repeats=self.repeats))
