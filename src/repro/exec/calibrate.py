"""Fit the analytic device model against measured numpy kernels.

The :class:`~repro.cost.device.SimulatedDevice` constants were hand-set
to a GTX 1080-class part; the executor gives us *measured* per-kernel
wall times on the actual host, so the two can be reconciled.
:func:`calibrate` collects ``(op, flops, bytes, measured_ms)`` samples by
timing every kernel of the given graphs, then grid-searches scale
factors for ``flops_per_ms`` / ``bytes_per_ms`` minimising the mean
squared log-ratio between simulated and measured kernel times.  The
identity scale is always in the grid, so the fitted error is never worse
than the starting error — ``BENCH_exec.json`` gates on exactly that
ratio.

Per-op-class sim/measured agreement (before and after the fit) is
reported alongside, which is the honest headline: a single two-parameter
scale cannot make an analytic GPU model match numpy on every op class,
and the residual spread quantifies how much the simulator should be
trusted per op family.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..cost.device import (SimulatedDevice, clear_preset_cache,
                           default_device, preset_path)
from ..cost.op_cost import is_zero_cost, op_flops, op_memory_bytes
from ..ir.graph import Graph
from ..ir.ops import SOURCE_OPS, OpType
from .executor import NumpyExecutor

__all__ = ["KernelSample", "CalibrationResult", "collect_kernel_samples",
           "calibrate", "save_preset"]


@dataclass(frozen=True)
class KernelSample:
    """One timed kernel: its static cost counts and measured wall time."""

    op_type: OpType
    flops: float
    bytes_moved: float
    measured_ms: float


@dataclass
class CalibrationResult:
    """Outcome of fitting the device constants to measured kernels."""

    #: The device the fit started from and the fitted device.
    device_before: SimulatedDevice
    device_after: SimulatedDevice
    #: Multipliers applied to ``flops_per_ms`` / ``bytes_per_ms``.
    flops_scale: float
    bytes_scale: float
    #: RMS log-ratio error sim-vs-measured, before and after the fit.
    error_before: float
    error_after: float
    samples: List[KernelSample] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """``error_before / error_after`` — >= 1.0 by construction."""
        return self.error_before / max(self.error_after, 1e-12)

    def op_class_ratios(self, fitted: bool = True) -> Dict[str, float]:
        """Geometric-mean measured/simulated time ratio per op class."""
        device = self.device_after if fitted else self.device_before
        logs: Dict[str, List[float]] = {}
        for sample in self.samples:
            sim = device.kernel_time_ms(sample.op_type, sample.flops,
                                        sample.bytes_moved)
            logs.setdefault(sample.op_type.value, []).append(
                math.log(max(sample.measured_ms, 1e-9) / max(sim, 1e-9)))
        return {op: float(math.exp(np.mean(vals)))
                for op, vals in sorted(logs.items())}


def collect_kernel_samples(graphs: Sequence[Graph],
                           executor: Optional[NumpyExecutor] = None,
                           repeats: int = 2) -> List[KernelSample]:
    """Time every compute kernel of ``graphs`` (best of ``repeats``)."""
    executor = executor or NumpyExecutor()
    samples: List[KernelSample] = []
    for graph in graphs:
        reports = [executor.run_detailed(graph)
                   for _ in range(max(1, repeats))]
        for nid, node in graph.nodes.items():
            if node.op_type in SOURCE_OPS or is_zero_cost(node.op_type):
                continue
            times = [rep.per_node_ms[nid] for rep in reports
                     if nid in rep.per_node_ms]
            if not times:
                continue
            inputs = graph.input_specs(nid)
            flops = op_flops(node.op_type, inputs, node.outputs, node.attrs)
            bytes_moved = op_memory_bytes(node.op_type, inputs, node.outputs,
                                          node.attrs)
            samples.append(KernelSample(node.op_type, flops, bytes_moved,
                                        min(times)))
    return samples


def _rms_log_error(device: SimulatedDevice,
                   samples: Sequence[KernelSample]) -> float:
    errs = []
    for sample in samples:
        sim = device.kernel_time_ms(sample.op_type, sample.flops,
                                    sample.bytes_moved)
        errs.append(math.log(max(sim, 1e-9) /
                             max(sample.measured_ms, 1e-9)) ** 2)
    return math.sqrt(sum(errs) / len(errs)) if errs else 0.0


def calibrate(graphs: Sequence[Graph],
              executor: Optional[NumpyExecutor] = None,
              device: Optional[SimulatedDevice] = None,
              repeats: int = 2,
              grid: Optional[Sequence[float]] = None) -> CalibrationResult:
    """Fit ``flops_per_ms`` / ``bytes_per_ms`` to measured kernel times.

    ``grid`` is the set of candidate scale multipliers tried for each
    constant (defaults to a log-spaced sweep over four decades, identity
    included).  Returns a :class:`CalibrationResult` whose
    ``device_after`` can be handed to :class:`~repro.cost.e2e.E2ESimulator`
    or :class:`~repro.cost.cost_model.CostModel` as a drop-in device.
    """
    device = device or default_device()
    samples = collect_kernel_samples(graphs, executor, repeats=repeats)
    if grid is None:
        grid = np.geomspace(1e-2, 1e2, 33)
    scales = sorted(set(float(s) for s in grid) | {1.0})

    error_before = _rms_log_error(device, samples)
    best = (error_before, 1.0, 1.0, device)
    for fs in scales:
        for bs in scales:
            candidate = device.with_config(
                flops_per_ms=device.config.flops_per_ms * fs,
                bytes_per_ms=device.config.bytes_per_ms * bs)
            err = _rms_log_error(candidate, samples)
            if err < best[0]:
                best = (err, fs, bs, candidate)

    error_after, flops_scale, bytes_scale, fitted = best
    return CalibrationResult(
        device_before=device,
        device_after=fitted,
        flops_scale=flops_scale,
        bytes_scale=bytes_scale,
        error_before=error_before,
        error_after=error_after,
        samples=samples,
    )


def save_preset(result: CalibrationResult,
                path: Optional[Union[str, Path]] = None) -> Optional[Path]:
    """Persist the fitted device so ``default_device`` loads it at startup.

    Writes the :class:`~repro.cost.device.DeviceConfig` of
    ``result.device_after`` (plus fit metadata, for humans) to ``path`` —
    defaulting to :func:`~repro.cost.device.preset_path`.  Returns the
    written path, or None when persistence is disabled
    (``REPRO_DEVICE_PRESET=off`` and no explicit path).
    """
    target = Path(path) if path is not None else preset_path()
    if target is None:
        return None
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": "repro-device-preset",
        "version": 1,
        "device": dataclasses.asdict(result.device_after.config),
        "fit": {
            "flops_scale": result.flops_scale,
            "bytes_scale": result.bytes_scale,
            "error_before": result.error_before,
            "error_after": result.error_after,
            "num_samples": len(result.samples),
        },
    }
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    tmp.replace(target)
    clear_preset_cache()
    return target
