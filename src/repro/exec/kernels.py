"""Per-operator numpy kernels for the reference executor.

One kernel per :class:`~repro.ir.ops.OpType`, collected in the
:data:`KERNELS` dispatch table (the same structure ngraph's
``NumPyTransformer`` uses: op type -> python callable).  Every kernel has
the signature ``fn(in_vals, attrs, out_shapes) -> [out_0, out_1, ...]``
where ``in_vals`` are the input arrays in slot order, ``attrs`` is the
node's attribute mapping, and ``out_shapes`` are the *declared* output
shapes from shape inference — kernels that need the output size to pick
their padding (convolutions, pools) read it from there, exactly as the
reference interpreter does.

The numerical semantics deliberately mirror
:mod:`repro.rules.interpreter` (guarded DIV, ``sqrt(|x|)``, tanh-GELU,
inference-mode BatchNorm, clipped embedding indices, ...) so the two
backends can be differentially tested against each other; the kernels
here are vectorised (im2col convolutions, strided-window pools) where the
interpreter uses reference loops.

Everything is pure numpy + stdlib: :func:`erf` wraps :func:`math.erf`
instead of pulling in scipy, which the CI image does not install.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from ..ir.ops import OP_REGISTRY, OPAQUE_OPS, OpType, SOURCE_OPS

__all__ = ["KERNELS", "Kernel", "erf", "uncovered_ops"]

#: ``fn(in_vals, attrs, out_shapes) -> [out_0, ...]`` — one value per
#: declared output slot.
Kernel = Callable[
    [List[np.ndarray], Mapping[str, object], List[Tuple[int, ...]]],
    List[np.ndarray],
]

#: Gauss error function on arrays, double precision, no scipy.
erf = np.vectorize(math.erf, otypes=[np.float64])

KERNELS: Dict[OpType, Kernel] = {}


def _register(op_type: OpType):
    def wrap(fn: Kernel) -> Kernel:
        KERNELS[op_type] = fn
        return fn
    return wrap


def uncovered_ops(kernels: Mapping[OpType, Kernel] = None) -> List[OpType]:
    """Registry operators with neither a kernel nor source materialisation.

    The executor materialises :data:`~repro.ir.ops.SOURCE_OPS` itself, and
    :data:`~repro.ir.ops.OPAQUE_OPS` are kernel-less *by contract* (the
    counted pass-through is their defined behaviour), so coverage means:
    every other registry op has a dispatch entry.  Ops returned here run
    through the counted pass-through fallback unintentionally.
    """
    table = KERNELS if kernels is None else kernels
    return [op for op in OP_REGISTRY
            if op not in SOURCE_OPS and op not in OPAQUE_OPS
            and op not in table]


# ---------------------------------------------------------------------------
# Identity-ish plumbing
# ---------------------------------------------------------------------------

@_register(OpType.OUTPUT)
def _output(in_vals, attrs, out_shapes):
    return [in_vals[0]]


@_register(OpType.NOOP)
def _noop(in_vals, attrs, out_shapes):
    return [np.zeros(())]


def _identity(in_vals, attrs, out_shapes):
    return [in_vals[0]]


for _op in (OpType.IDENTITY, OpType.CAST, OpType.DROPOUT):
    KERNELS[_op] = _identity


# ---------------------------------------------------------------------------
# Dense linear algebra
# ---------------------------------------------------------------------------

@_register(OpType.MATMUL)
def _matmul(in_vals, attrs, out_shapes):
    return [np.matmul(in_vals[0], in_vals[1])]


KERNELS[OpType.BATCH_MATMUL] = KERNELS[OpType.MATMUL]


@_register(OpType.FUSED_MATMUL_ADD)
def _fused_matmul_add(in_vals, attrs, out_shapes):
    return [np.matmul(in_vals[0], in_vals[1]) + in_vals[2]]


# ---------------------------------------------------------------------------
# Elementwise
# ---------------------------------------------------------------------------

_BINARY = {
    OpType.ADD: lambda a, b: a + b,
    OpType.SUB: lambda a, b: a - b,
    OpType.MUL: lambda a, b: a * b,
    # Guarded like the interpreter so random denominators never divide by 0.
    OpType.DIV: lambda a, b: a / (b + 1e-12),
}

_UNARY = {
    OpType.RELU: lambda x: np.maximum(x, 0.0),
    OpType.GELU: lambda x: 0.5 * x * (
        1.0 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x ** 3))),
    OpType.SIGMOID: lambda x: 1.0 / (1.0 + np.exp(-x)),
    OpType.TANH: np.tanh,
    OpType.EXP: np.exp,
    OpType.SQRT: lambda x: np.sqrt(np.abs(x)),
    OpType.ERF: erf,
}

for _op, _fn in _BINARY.items():
    KERNELS[_op] = (lambda fn: lambda v, a, s: [fn(v[0], v[1])])(_fn)
for _op, _fn in _UNARY.items():
    KERNELS[_op] = (lambda fn: lambda v, a, s: [fn(v[0])])(_fn)


# ---------------------------------------------------------------------------
# Normalisation
# ---------------------------------------------------------------------------

@_register(OpType.SOFTMAX)
def _softmax(in_vals, attrs, out_shapes):
    axis = int(attrs.get("axis", -1))
    x = in_vals[0] - in_vals[0].max(axis=axis, keepdims=True)
    e = np.exp(x)
    return [e / e.sum(axis=axis, keepdims=True)]


@_register(OpType.BATCHNORM)
def _batchnorm(in_vals, attrs, out_shapes):
    # Inference-mode affine transform along the channel axis.
    x = in_vals[0]
    scale = in_vals[1] if len(in_vals) > 1 else np.ones(x.shape[1])
    bias = in_vals[2] if len(in_vals) > 2 else np.zeros(x.shape[1])
    view = (1, -1) + (1,) * (x.ndim - 2)
    return [x * scale.reshape(view) + bias.reshape(view)]


@_register(OpType.LAYERNORM)
def _layernorm(in_vals, attrs, out_shapes):
    x = in_vals[0]
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mean) / np.sqrt(var + 1e-5)
    if len(in_vals) > 1:
        normed = normed * in_vals[1]
    if len(in_vals) > 2:
        normed = normed + in_vals[2]
    return [normed]


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------

@_register(OpType.RESHAPE)
def _reshape(in_vals, attrs, out_shapes):
    return [in_vals[0].reshape(tuple(attrs["shape"]))]


@_register(OpType.TRANSPOSE)
def _transpose(in_vals, attrs, out_shapes):
    return [np.transpose(in_vals[0], attrs.get("perm"))]


@_register(OpType.CONCAT)
def _concat(in_vals, attrs, out_shapes):
    return [np.concatenate(in_vals, axis=int(attrs.get("axis", 0)))]


@_register(OpType.SPLIT)
def _split(in_vals, attrs, out_shapes):
    parts = int(attrs.get("parts", 2))
    axis = int(attrs.get("axis", 0))
    return list(np.split(in_vals[0], parts, axis=axis))


@_register(OpType.SLICE)
def _slice(in_vals, attrs, out_shapes):
    axis = int(attrs.get("axis", 0))
    start, end = int(attrs.get("start", 0)), attrs.get("end")
    index = [slice(None)] * in_vals[0].ndim
    index[axis] = slice(start, None if end is None else int(end))
    return [in_vals[0][tuple(index)]]


@_register(OpType.SQUEEZE)
def _squeeze(in_vals, attrs, out_shapes):
    return [np.squeeze(in_vals[0], axis=int(attrs.get("axis", 0)))]


@_register(OpType.UNSQUEEZE)
def _unsqueeze(in_vals, attrs, out_shapes):
    return [np.expand_dims(in_vals[0], axis=int(attrs.get("axis", 0)))]


@_register(OpType.FLATTEN)
def _flatten(in_vals, attrs, out_shapes):
    x = in_vals[0]
    return [x.reshape(x.shape[0], -1)]


@_register(OpType.PAD)
def _pad(in_vals, attrs, out_shapes):
    pads = attrs.get("pads")
    if not pads:
        return [in_vals[0]]
    width = [(pads[2 * i], pads[2 * i + 1]) for i in range(in_vals[0].ndim)]
    return [np.pad(in_vals[0], width)]


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

_REDUCERS = {OpType.REDUCE_SUM: np.sum, OpType.REDUCE_MEAN: np.mean,
             OpType.REDUCE_MAX: np.max}


def _make_reduce(fn):
    def _reduce(in_vals, attrs, out_shapes):
        axis = int(attrs.get("axis", -1))
        keep = bool(attrs.get("keepdims", False))
        return [fn(in_vals[0], axis=axis, keepdims=keep)]
    return _reduce


for _op, _fn in _REDUCERS.items():
    KERNELS[_op] = _make_reduce(_fn)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def _pool(in_vals, attrs, out_shapes, reducer):
    x = in_vals[0]
    kernel = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", kernel))
    n, c, oh, ow = out_shapes[0]
    # "same" pools keep edge windows partial (mean/max over the elements
    # actually present); NaN-padding + nan-reductions reproduces that.
    need_h = (oh - 1) * stride + kernel
    need_w = (ow - 1) * stride + kernel
    pad_h = max(need_h - x.shape[2], 0)
    pad_w = max(need_w - x.shape[3], 0)
    if pad_h or pad_w:
        x = np.pad(x, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)),
                   constant_values=np.nan)
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride][:, :, :oh, :ow]
    return [reducer(windows, axis=(4, 5))]


@_register(OpType.MAXPOOL2D)
def _maxpool(in_vals, attrs, out_shapes):
    return _pool(in_vals, attrs, out_shapes, np.nanmax)


@_register(OpType.AVGPOOL2D)
def _avgpool(in_vals, attrs, out_shapes):
    return _pool(in_vals, attrs, out_shapes, np.nanmean)


@_register(OpType.GLOBAL_AVGPOOL)
def _global_avgpool(in_vals, attrs, out_shapes):
    return [in_vals[0].mean(axis=(2, 3))]


# ---------------------------------------------------------------------------
# Convolutions (im2col)
# ---------------------------------------------------------------------------

def _conv(in_vals, attrs, out_shapes, groups=None, epilogue_bn=False,
          epilogue_relu=False):
    x, w = in_vals[0], in_vals[1]
    n, c_out, oh, ow = out_shapes[0]
    stride = int(attrs.get("stride", 1))
    kh, kw = w.shape[2], w.shape[3]
    if groups is None:
        groups = int(attrs.get("groups", 1))
    if attrs.get("padding", "same") == "same":
        pad_h = max((oh - 1) * stride + kh - x.shape[2], 0)
        pad_w = max((ow - 1) * stride + kw - x.shape[3], 0)
        x = np.pad(x, ((0, 0), (0, 0),
                       (pad_h // 2, pad_h - pad_h // 2),
                       (pad_w // 2, pad_w - pad_w // 2)))
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride][:, :, :oh, :ow]
    cin_g = x.shape[1] // groups
    cout_g = c_out // groups
    out = np.empty((n, c_out, oh, ow), dtype=np.float64)
    for g in range(groups):
        # (n, cin_g, oh, ow, kh, kw) -> (n, oh, ow, cin_g*kh*kw) @ im2col'd
        # weights: one GEMM per group.
        patches = windows[:, g * cin_g:(g + 1) * cin_g]
        patches = patches.transpose(0, 2, 3, 1, 4, 5).reshape(
            n, oh, ow, cin_g * kh * kw)
        wg = w[g * cout_g:(g + 1) * cout_g].reshape(cout_g, -1)
        out[:, g * cout_g:(g + 1) * cout_g] = (
            patches @ wg.T).transpose(0, 3, 1, 2)
    if epilogue_bn and len(in_vals) > 2:
        out = out * in_vals[2].reshape(1, -1, 1, 1)
        if len(in_vals) > 3:
            out = out + in_vals[3].reshape(1, -1, 1, 1)
    if epilogue_relu:
        out = np.maximum(out, 0.0)
    return [out]


@_register(OpType.CONV2D)
def _conv2d(in_vals, attrs, out_shapes):
    return _conv(in_vals, attrs, out_shapes)


KERNELS[OpType.ENLARGE_CONV] = KERNELS[OpType.CONV2D]


@_register(OpType.GROUP_CONV2D)
def _group_conv2d(in_vals, attrs, out_shapes):
    return _conv(in_vals, attrs, out_shapes)


@_register(OpType.DEPTHWISE_CONV2D)
def _depthwise_conv2d(in_vals, attrs, out_shapes):
    return _conv(in_vals, attrs, out_shapes, groups=in_vals[0].shape[1])


@_register(OpType.FUSED_CONV_BN)
def _fused_conv_bn(in_vals, attrs, out_shapes):
    return _conv(in_vals, attrs, out_shapes, epilogue_bn=True)


@_register(OpType.FUSED_CONV_RELU)
def _fused_conv_relu(in_vals, attrs, out_shapes):
    return _conv(in_vals, attrs, out_shapes, epilogue_relu=True)


@_register(OpType.FUSED_CONV_BN_RELU)
def _fused_conv_bn_relu(in_vals, attrs, out_shapes):
    return _conv(in_vals, attrs, out_shapes, epilogue_bn=True,
                 epilogue_relu=True)


# ---------------------------------------------------------------------------
# Lookups
# ---------------------------------------------------------------------------

@_register(OpType.EMBEDDING)
def _embedding(in_vals, attrs, out_shapes):
    # Any float tensor works as indices: |x| rounded into the table.
    table, indices = in_vals[0], in_vals[1]
    idx = np.clip(np.abs(indices).astype(int), 0, table.shape[0] - 1)
    return [table[idx]]


@_register(OpType.GATHER)
def _gather(in_vals, attrs, out_shapes):
    # Shape inference declares [*table, axis -> indices.num_elements]:
    # gather along ``axis`` with the indices flattened.
    table, indices = in_vals[0], in_vals[1]
    axis = int(attrs.get("axis", 0)) % table.ndim
    idx = np.clip(np.abs(indices).astype(int).reshape(-1),
                  0, table.shape[axis] - 1)
    return [np.take(table, idx, axis=axis)]
