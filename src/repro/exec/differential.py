"""Differential correctness checks built on the numpy executor.

The rewrite engine's core claim — "the optimised graph computes the same
function" — is validated here by actually executing graph pairs on random
inputs and comparing outputs, the random-testing methodology TASO uses
for its generated rules.

Tolerance policy (documented in ``docs/executor.md``): execution is
float64 end to end and rewrites only reassociate float arithmetic, so
outputs must agree to ``rtol=1e-5, atol=1e-6`` — the same bar the
reference interpreter's ``graphs_equivalent`` applies.  Rules flagged
``exactly_equivalent=False`` (EnlargeConv fabricates a fresh weight
tensor, PET's Winograd rewrite adds a correction term) are checked
shape-only via ``require_values=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..ir.graph import Graph
from .executor import NumpyExecutor

__all__ = ["DEFAULT_RTOL", "DEFAULT_ATOL", "DifferentialReport",
           "random_inputs", "differential_check"]

#: Documented output-agreement tolerances for float64 execution.
DEFAULT_RTOL = 1e-5
DEFAULT_ATOL = 1e-6


def random_inputs(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """Random feeds (float64, 0.1 scale) for every Input node of ``graph``."""
    rng = np.random.default_rng(seed)
    feeds = {}
    for nid in graph.input_nodes():
        node = graph.nodes[nid]
        shape = tuple(node.output_spec.shape.dims)
        feeds[node.name] = rng.standard_normal(shape) * 0.1
    return feeds


@dataclass
class DifferentialReport:
    """Outcome of one before/after differential comparison."""

    equivalent: bool
    #: Largest absolute output deviation observed across all trials
    #: (0.0 when shapes already disagree).
    max_abs_err: float = 0.0
    trials: int = 0
    #: Human-readable reasons for a failed comparison.
    problems: List[str] = field(default_factory=list)
    #: Fallback-executed ops seen while running either graph (a non-empty
    #: map means the comparison exercised the pass-through path and is
    #: weaker than it looks).
    fallback_ops: Dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.equivalent


def _sorted_outputs(outputs: Mapping[str, np.ndarray]) -> List[np.ndarray]:
    return [outputs[name] for name in sorted(outputs)]


def differential_check(before: Graph, after: Graph,
                       executor: Optional[NumpyExecutor] = None,
                       trials: int = 2,
                       rtol: float = DEFAULT_RTOL,
                       atol: float = DEFAULT_ATOL,
                       seed: int = 1234,
                       require_values: bool = True) -> DifferentialReport:
    """Execute ``before`` and ``after`` on shared random inputs and compare.

    Both graphs must expose the same Input-node names; outputs are the
    sink-node values compared in name-sorted order.  With
    ``require_values=False`` only output *shapes* must agree — the right
    check for partially-equivalent rewrites.
    """
    executor = executor or NumpyExecutor()
    report = DifferentialReport(equivalent=True)

    names_a = sorted(before.nodes[n].name for n in before.input_nodes())
    names_b = sorted(after.nodes[n].name for n in after.input_nodes())
    if names_a != names_b:
        report.equivalent = False
        report.problems.append(
            f"input sets differ: {names_a} vs {names_b}")
        return report

    for trial in range(max(1, trials)):
        feeds = random_inputs(before, seed=seed + trial)
        rep_a = executor.run_detailed(before, feeds)
        rep_b = executor.run_detailed(after, feeds)
        for fb in (rep_a.fallback_ops, rep_b.fallback_ops):
            for op, count in fb.items():
                report.fallback_ops[op] = report.fallback_ops.get(op, 0) + count
        vals_a = _sorted_outputs(rep_a.outputs)
        vals_b = _sorted_outputs(rep_b.outputs)
        report.trials += 1
        if len(vals_a) != len(vals_b):
            report.equivalent = False
            report.problems.append(
                f"trial {trial}: {len(vals_a)} vs {len(vals_b)} outputs")
            continue
        for index, (a, b) in enumerate(zip(vals_a, vals_b)):
            if a.shape != b.shape:
                report.equivalent = False
                report.problems.append(
                    f"trial {trial}: output {index} shape {a.shape} "
                    f"vs {b.shape}")
                continue
            if not require_values:
                continue
            err = float(np.max(np.abs(a - b))) if a.size else 0.0
            report.max_abs_err = max(report.max_abs_err, err)
            if not np.allclose(a, b, rtol=rtol, atol=atol):
                report.equivalent = False
                report.problems.append(
                    f"trial {trial}: output {index} deviates by {err:g} "
                    f"(rtol={rtol}, atol={atol})")
    return report
