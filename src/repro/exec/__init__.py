"""Numpy execution backend: run graphs for real, then check and calibrate.

Layers on top of the IR only:

* :mod:`repro.exec.kernels` — per-``OpType`` numpy kernel dispatch table.
* :mod:`repro.exec.executor` — timed topo-order executor with
  deterministic weight materialisation and a counted pass-through
  fallback for uncovered ops.
* :mod:`repro.exec.differential` — before/after output-equivalence
  checks on random inputs (the rewrite engine's ground-truth oracle).
* :mod:`repro.exec.calibrate` — fit the analytic device constants
  against measured kernel wall times.
"""

from .calibrate import (CalibrationResult, KernelSample, calibrate,
                        collect_kernel_samples)
from .differential import (DEFAULT_ATOL, DEFAULT_RTOL, DifferentialReport,
                           differential_check, random_inputs)
from .executor import (ExecutionReport, MeasuredLatency, NumpyExecutor,
                       deterministic_tensor)
from .kernels import KERNELS, erf, uncovered_ops

__all__ = [
    "KERNELS", "erf", "uncovered_ops",
    "NumpyExecutor", "ExecutionReport", "MeasuredLatency",
    "deterministic_tensor",
    "DEFAULT_RTOL", "DEFAULT_ATOL", "DifferentialReport",
    "differential_check", "random_inputs",
    "CalibrationResult", "KernelSample", "calibrate",
    "collect_kernel_samples",
]
