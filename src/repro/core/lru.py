"""A single capped LRU cache for every hot-path memo in the repo.

Four subsystems used to hand-roll the same ``OrderedDict`` +
``move_to_end`` + ``popitem(last=False)`` dance: the RL feature cache,
the environment's observation cache, the agent's decision cache and the
flat-ids caches inside ``nn/tensor.py``.  Each copy had its own counter
names and its own eviction bugs waiting to happen.  This module is the
one implementation they all share.

Design notes
------------
* **Counters are part of the contract.**  ``hits`` / ``misses`` /
  ``evictions`` are plain ints updated on every ``get``/``put``;
  :meth:`LRUCache.stats` renders them in the shape BENCH_rl.json
  records.  ``clear()`` drops the entries but keeps the counters — a
  cache flush mid-benchmark must not erase the evidence of what
  happened before it.
* **Locking is the caller's problem, optionally delegated.**  Most
  call sites are single-threaded; they pass no lock and pay nothing.
  ``nn/tensor.py`` guards *compound* check-then-promote sequences with
  its own module lock, so per-call locking here would be redundant —
  but other callers (the service layer) can hand in a ``lock`` and get
  every public method serialised.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import nullcontext
from typing import Any, ContextManager, Dict, Hashable, Iterator, Optional

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Capped mapping with least-recently-used eviction and hit counters.

    Parameters
    ----------
    max_entries:
        Eviction threshold.  ``0`` disables caching entirely (every
        ``put`` is a no-op and every ``get`` a miss); a negative value
        means unbounded.
    lock:
        Optional lock (anything usable as a context manager, e.g.
        ``threading.Lock``) wrapped around every public method.  When
        ``None`` the cache is lock-free and the caller is responsible
        for synchronisation.
    name:
        Label used as the key prefix in :meth:`stats` so several caches
        can merge their counters into one flat benchmark payload.
    """

    __slots__ = ("max_entries", "name", "hits", "misses", "evictions",
                 "_entries", "_lock")

    def __init__(self, max_entries: int, lock: Optional[ContextManager] = None,
                 name: str = ""):
        self.max_entries = int(max_entries)
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock: ContextManager = lock if lock is not None else nullcontext()

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used) or
        ``default``; updates the hit/miss counters."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but touches neither recency nor counters."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the oldest entry if full."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.max_entries > 0:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key`` without touching the counters."""
        with self._lock:
            return self._entries.pop(key, default)

    def clear(self) -> None:
        """Drop every entry; the counters survive (see module docstring)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def stats(self) -> Dict[str, float]:
        """Flat counter dict, keys prefixed with ``<name>_`` when named."""
        total = self.hits + self.misses
        payload = {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hits / total if total else 0.0,
            "entries": float(len(self._entries)),
        }
        if self.name:
            payload = {f"{self.name}_{key}": value
                       for key, value in payload.items()}
        return payload
