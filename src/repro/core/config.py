"""X-RLflow configuration (the paper's Table 4 hyper-parameters plus
practical knobs for the simulated environment)."""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Tuple

__all__ = ["XRLflowConfig", "PAPER_TABLE4"]

#: The hyper-parameter values reported in the paper's Appendix A (Table 4).
PAPER_TABLE4: Dict[str, object] = {
    "learning_rate": 5e-4,
    "value_loss_coef": 0.5,
    "entropy_loss_coef": 0.01,
    "edge_attr_norm": 4096.0,
    "num_gat_layers": 5,
    "update_frequency": 10,
    "feedback_interval": 5,
    "mlp_head_sizes": (256, 64),
    "batch_size": 16,
}


@dataclass
class XRLflowConfig:
    """All tunables of the X-RLflow optimiser.

    The defaults are exactly Table 4 of the paper; the remaining fields
    (episodes, horizon, action-space padding, network widths) are practical
    choices the paper leaves to the implementation.
    """

    # --- Table 4 ---------------------------------------------------------
    learning_rate: float = 5e-4
    value_loss_coef: float = 0.5
    entropy_loss_coef: float = 0.01
    edge_attr_norm: float = 4096.0
    num_gat_layers: int = 5
    update_frequency: int = 10
    feedback_interval: int = 5
    mlp_head_sizes: Tuple[int, ...] = (256, 64)
    batch_size: int = 16

    # --- PPO -------------------------------------------------------------
    clip_epsilon: float = 0.2
    gamma: float = 0.99
    gae_lambda: float = 0.95
    ppo_epochs: int = 4
    max_grad_norm: float = 0.5

    # --- environment -------------------------------------------------------
    num_episodes: int = 100
    max_steps: int = 50
    max_candidates: int = 48
    step_reward: float = 0.1
    #: Number of deterministic evaluation episodes after training.
    eval_episodes: int = 3

    # --- encoder sizes ------------------------------------------------------
    hidden_dim: int = 64
    embedding_dim: int = 64

    # --- performance ---------------------------------------------------------
    #: Floating dtype of the agent and the PPO update.  ``float32`` is the
    #: training default (half the memory traffic, faster BLAS); the nn
    #: library default stays ``float64``, which the bit-for-bit equivalence
    #: suites use.
    dtype: str = "float32"
    #: Route observation encoding through the structural-hash feature cache
    #: plus delta-patched per-node blocks.  ``False`` re-encodes every graph
    #: from scratch (the eager benchmark baseline).
    incremental: bool = True
    #: Evaluate each PPO minibatch in a single batched forward instead of
    #: one forward per transition.
    batched_updates: bool = True

    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def paper_defaults(cls) -> "XRLflowConfig":
        """Configuration matching Table 4 exactly (and our defaults elsewhere)."""
        return cls()

    @classmethod
    def fast(cls, **overrides) -> "XRLflowConfig":
        """A laptop-scale configuration for tests and quick benchmarks.

        Uses fewer/shallower episodes and a smaller encoder so a full
        train-and-optimise cycle completes in seconds on small graphs while
        exercising the identical code path.
        """
        cfg = cls(num_episodes=6, max_steps=12, max_candidates=24,
                  num_gat_layers=2, hidden_dim=32, embedding_dim=32,
                  mlp_head_sizes=(64, 32), ppo_epochs=2, update_frequency=3,
                  eval_episodes=1, batch_size=8)
        for key, value in overrides.items():
            setattr(cfg, key, value)
        return cfg

    def validate(self) -> None:
        """Sanity-check value ranges; raises ``ValueError`` on bad settings."""
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0 < self.clip_epsilon < 1):
            raise ValueError("clip_epsilon must lie in (0, 1)")
        if self.feedback_interval < 1:
            raise ValueError("feedback_interval must be >= 1")
        if self.num_gat_layers < 1:
            raise ValueError("num_gat_layers must be >= 1")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if self.num_episodes < 1 or self.max_steps < 1:
            raise ValueError("num_episodes and max_steps must be >= 1")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")
