"""The X-RLflow tensor-graph superoptimiser public API.

Typical usage::

    from repro import XRLflow, XRLflowConfig, build_model

    graph = build_model("bert")
    optimiser = XRLflow(XRLflowConfig.fast())
    result = optimiser.optimise(graph, model_name="bert")
    print(result.summary())

``optimise`` trains a PPO agent in the graph-rewrite environment (unless a
trained agent is supplied / training is disabled) and then runs deterministic
evaluation episodes, returning the best graph encountered.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cost.cost_model import CostModel
from ..cost.e2e import E2ESimulator
from ..ir.graph import Graph
from ..rules.base import RuleSet
from ..rules.rulesets import default_ruleset
from ..rl.env import GraphRewriteEnv
from ..rl.ppo import PPOUpdater, XRLflowAgent
from ..rl.training import PPOTrainer, TrainingHistory
from ..search.result import SearchResult, timed
from .config import XRLflowConfig

__all__ = ["XRLflow", "OptimisationResult"]

#: Alias kept for API clarity: X-RLflow returns the same result type as the
#: baseline optimisers so they can be compared directly.
OptimisationResult = SearchResult


class XRLflow:
    """Graph-RL tensor graph superoptimiser (the paper's system).

    Parameters
    ----------
    config:
        Hyper-parameters (the paper's Table 4 via :class:`XRLflowConfig`;
        ``XRLflowConfig.fast()`` is the CI-sized preset).  Validated at
        construction — invalid values raise ``ValueError`` here.
    ruleset:
        Rewrite rules forming the environment's action space (defaults to
        the curated TASO set).
    e2e:
        End-to-end latency simulator — the reward signal.
    cost_model:
        Used only to report initial/final cost-model estimates alongside
        the latencies.

    Attributes
    ----------
    agent:
        The trained :class:`XRLflowAgent`, or ``None`` before training.
    history:
        The last :class:`TrainingHistory`, or ``None`` before training.
    """

    name = "xrlflow"

    #: Optional ``f(iteration, best_latency_ms, best_graph_fp)`` streaming
    #: hook; iterations count environment steps monotonically across every
    #: training and evaluation episode, so a long RL search reports partial
    #: best-so-far graphs throughout (see :mod:`repro.service.events`).
    progress_callback = None

    def __init__(self, config: Optional[XRLflowConfig] = None,
                 ruleset: Optional[RuleSet] = None,
                 e2e: Optional[E2ESimulator] = None,
                 cost_model: Optional[CostModel] = None,
                 progress_callback=None):
        self.config = config or XRLflowConfig()
        self.config.validate()
        self.ruleset = ruleset or default_ruleset()
        self.e2e = e2e or E2ESimulator(seed=self.config.seed)
        self.cost_model = cost_model or CostModel()
        self.progress_callback = progress_callback
        self.agent: Optional[XRLflowAgent] = None
        self.history: Optional[TrainingHistory] = None
        self._progress_steps = 0

    # ------------------------------------------------------------------
    def _relay_progress(self, step: int, best_latency_ms: float,
                        best_graph_fp: str) -> None:
        """Renumber per-episode env steps into one monotonic iteration
        counter before forwarding to :attr:`progress_callback`."""
        callback = self.progress_callback
        if callback is None:
            return
        self._progress_steps += 1
        callback(self._progress_steps, best_latency_ms, best_graph_fp)

    def _build_env(self, graph: Graph) -> GraphRewriteEnv:
        cfg = self.config
        return GraphRewriteEnv(
            graph, ruleset=self.ruleset, e2e=self.e2e,
            feedback_interval=cfg.feedback_interval,
            step_reward=cfg.step_reward,
            max_candidates=cfg.max_candidates,
            max_steps=cfg.max_steps,
            seed=cfg.seed,
            progress_callback=self._relay_progress,
            incremental=cfg.incremental,
        )

    def _build_agent(self, dtype=None) -> XRLflowAgent:
        cfg = self.config
        return XRLflowAgent(hidden_dim=cfg.hidden_dim,
                            embedding_dim=cfg.embedding_dim,
                            num_gat_layers=cfg.num_gat_layers,
                            head_sizes=cfg.mlp_head_sizes,
                            seed=cfg.seed,
                            dtype=dtype if dtype is not None
                            else np.dtype(cfg.dtype))

    # ------------------------------------------------------------------
    def train(self, graph: Graph, num_episodes: Optional[int] = None,
              log_fn=None) -> TrainingHistory:
        """Train a fresh agent on ``graph`` for ``num_episodes`` episodes.

        Replaces any previously trained :attr:`agent`.

        Parameters
        ----------
        graph:
            The training environment's target graph (never mutated).
        num_episodes:
            Episode budget; defaults to ``config.num_episodes``.
        log_fn:
            Optional ``log_fn(episode_record)`` progress callback.

        Returns
        -------
        TrainingHistory
            Per-episode rewards, latencies and applied rules; also kept on
            :attr:`history`.
        """
        cfg = self.config
        env = self._build_env(graph)
        self.agent = self._build_agent()
        updater = PPOUpdater(
            self.agent,
            learning_rate=cfg.learning_rate,
            clip_epsilon=cfg.clip_epsilon,
            value_coef=cfg.value_loss_coef,
            entropy_coef=cfg.entropy_loss_coef,
            epochs=cfg.ppo_epochs,
            batch_size=cfg.batch_size,
            max_grad_norm=cfg.max_grad_norm,
            seed=cfg.seed,
            batched=cfg.batched_updates,
        )
        trainer = PPOTrainer(env, self.agent, updater,
                             update_frequency=cfg.update_frequency,
                             gamma=cfg.gamma, gae_lambda=cfg.gae_lambda,
                             log_fn=log_fn)
        self.history = trainer.train(num_episodes or cfg.num_episodes)
        self._training_env = env
        return self.history

    # ------------------------------------------------------------------
    def optimise(self, graph: Graph, model_name: str = "",
                 train: bool = True, log_fn=None) -> SearchResult:
        """Optimise ``graph``: (optionally) train, then evaluate greedily.

        The returned graph is the best one (by simulated end-to-end latency)
        seen across training exploration and the deterministic evaluation
        episodes — the RL agent's reward signal *is* the end-to-end latency,
        so every graph it visits has already been measured.

        Parameters
        ----------
        graph:
            The graph to optimise (never mutated).
        model_name:
            Label for the result; defaults to ``graph.name``.
        train:
            Train a fresh agent first (the default).  ``False`` reuses the
            current :attr:`agent` — e.g. one restored via
            :meth:`load_agent` for the paper's shape-generalisation
            protocol; if no agent exists yet, training happens anyway.
        log_fn:
            Optional training progress callback (see :meth:`train`).

        Returns
        -------
        SearchResult
            Best graph with end-to-end latencies, applied rules, and
            training diagnostics (``train_time_s``, ``episodes_trained``,
            ``mean_recent_reward``) under ``stats``.
            ``optimisation_time_s`` covers only the evaluation episodes;
            training cost is reported separately in ``stats``.
        """
        cfg = self.config
        with timed() as elapsed:
            if train or self.agent is None:
                self.train(graph, log_fn=log_fn)
                train_time = elapsed()
            else:
                train_time = 0.0

            with timed() as opt_elapsed:
                env = self._build_env(graph)
                best_graph = graph
                best_latency = self.e2e.latency_ms(graph)
                best_rules: list[str] = []
                episodes = max(1, cfg.eval_episodes)
                for _ in range(episodes):
                    obs = env.reset()
                    done = False
                    while not done:
                        decision = self.agent.act(obs, deterministic=True)
                        step = env.step(decision.action)
                        obs, done = step.observation, step.done
                    if env.best_latency_ms < best_latency:
                        best_latency = env.best_latency_ms
                        best_graph = env.best_graph
                        best_rules = list(env.applied_rules)
                optimisation_time = opt_elapsed()

            # Also consider the best graph discovered during training
            # exploration (its latency was measured as part of the reward).
            training_env = getattr(self, "_training_env", None)
            if train and training_env is not None and \
                    training_env.best_latency_ms < best_latency:
                best_latency = training_env.best_latency_ms
                best_graph = training_env.best_graph
                best_record = self.history.best_episode if self.history else None
                best_rules = list(best_record.applied_rules) if best_record else best_rules

        initial_latency = self.e2e.latency_ms(graph)
        stats: Dict[str, float] = {
            "train_time_s": float(train_time),
            "episodes_trained": float(len(self.history.episodes)) if self.history else 0.0,
            "mean_recent_reward": self.history.mean_reward() if self.history else 0.0,
        }
        # Observation-encode cache effectiveness (the evaluation env's; the
        # RL benchmark gates on the training-side number separately).
        cache_stats = env.encode_cache_stats()
        if cache_stats:
            stats["encode_cache_hit_rate"] = cache_stats["hit_rate"]
        return SearchResult(
            optimiser=self.name,
            model=model_name or graph.name,
            initial_graph=graph,
            final_graph=best_graph,
            initial_latency_ms=initial_latency,
            final_latency_ms=best_latency,
            initial_cost_ms=self.cost_model.estimate(graph),
            final_cost_ms=self.cost_model.estimate(best_graph),
            optimisation_time_s=optimisation_time,
            applied_rules=best_rules,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def save_agent(self, path: str) -> None:
        """Persist the trained agent's parameters to an ``.npz`` file.

        Parameters
        ----------
        path:
            Destination file (numpy appends ``.npz`` if missing).

        Raises
        ------
        RuntimeError
            If no agent has been trained yet.
        """
        if self.agent is None:
            raise RuntimeError("no trained agent to save")
        np.savez(path, **self.agent.state_dict())

    def load_agent(self, path: str) -> None:
        """Load agent parameters previously written by :meth:`save_agent`.

        Builds a fresh agent from the current ``config`` (architecture
        hyper-parameters must match the saved agent's) and replaces
        :attr:`agent`; pair with ``optimise(train=False)`` to reuse it.
        The checkpoint's floating dtype wins over ``config.dtype``, so
        float64 agents saved before float32 became the training default
        reload bit-exactly.

        Parameters
        ----------
        path:
            An ``.npz`` file from :meth:`save_agent`.

        Raises
        ------
        FileNotFoundError
            If ``path`` does not exist.
        KeyError
            If the file's parameters do not match this config's
            architecture.
        """
        state = dict(np.load(path))
        # Honour the checkpoint's precision: an agent saved in float64
        # (e.g. before float32 became the training default) must reload
        # bit-exactly, not be silently downcast to the config dtype.
        saved = next(iter(state.values()), None)
        dtype = saved.dtype if saved is not None and \
            np.issubdtype(saved.dtype, np.floating) else None
        self.agent = self._build_agent(dtype=dtype)
        self.agent.load_state_dict(state)
