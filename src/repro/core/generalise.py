"""Shape-generalisation evaluation (the paper's Figure 7).

X-RLflow is trained once in a static-tensor-shape environment and then reused
(inference only, no retraining) on the same architecture instantiated with
different input tensor shapes.  This module runs that protocol: train on one
"anchor" configuration, evaluate deterministically on each shape variant and
report the speedup per variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..ir.graph import Graph
from ..search.result import SearchResult
from .config import XRLflowConfig
from .xrlflow import XRLflow

__all__ = ["ShapeVariant", "GeneralisationReport", "evaluate_generalisation"]


@dataclass(frozen=True)
class ShapeVariant:
    """One instantiation of an architecture with particular tensor shapes."""

    label: str
    builder_kwargs: Dict[str, object]
    is_training_shape: bool = False


@dataclass
class GeneralisationReport:
    """Speedups achieved on each shape variant by a single trained agent."""

    model: str
    results: List[SearchResult] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    def speedups(self) -> Dict[str, float]:
        return {label: result.speedup
                for label, result in zip(self.labels, self.results)}

    def summary(self) -> str:
        rows = [f"{label}: x{result.speedup:.3f}"
                for label, result in zip(self.labels, self.results)]
        return f"{self.model} generalisation — " + ", ".join(rows)


def evaluate_generalisation(build_fn: Callable[..., Graph],
                            variants: Sequence[ShapeVariant],
                            config: Optional[XRLflowConfig] = None,
                            model_name: str = "") -> GeneralisationReport:
    """Train on the variant flagged ``is_training_shape`` and evaluate on all.

    Exactly one variant must be flagged as the training shape.  The same
    trained agent performs inference-only optimisation on every variant.
    """
    config = config or XRLflowConfig.fast()
    training = [v for v in variants if v.is_training_shape]
    if len(training) != 1:
        raise ValueError("exactly one variant must have is_training_shape=True")
    anchor = training[0]

    optimiser = XRLflow(config)
    anchor_graph = build_fn(**anchor.builder_kwargs)
    optimiser.train(anchor_graph)

    report = GeneralisationReport(model=model_name or anchor_graph.name)
    for variant in variants:
        graph = build_fn(**variant.builder_kwargs)
        result = optimiser.optimise(graph, model_name=variant.label, train=False)
        report.results.append(result)
        report.labels.append(variant.label +
                             (" (train)" if variant.is_training_shape else ""))
    return report
