"""X-RLflow core: configuration, optimiser API and shape generalisation."""

from .config import PAPER_TABLE4, XRLflowConfig
from .xrlflow import OptimisationResult, XRLflow
from .generalise import (GeneralisationReport, ShapeVariant,
                         evaluate_generalisation)

__all__ = [
    "PAPER_TABLE4", "XRLflowConfig",
    "OptimisationResult", "XRLflow",
    "GeneralisationReport", "ShapeVariant", "evaluate_generalisation",
]
