"""X-RLflow core: configuration, optimiser API and shape generalisation.

The optimiser API (:class:`XRLflow`) and generalisation helpers sit at the
top of the dependency graph — they import the RL stack, which imports the
rewrite substrate, which in turn uses the low-level utilities in this
package (:class:`LRUCache`).  Importing them eagerly here would make
``repro.core.lru`` unimportable from below, so they are loaded lazily on
first attribute access (PEP 562).
"""

from .config import PAPER_TABLE4, XRLflowConfig
from .lru import LRUCache

__all__ = [
    "PAPER_TABLE4", "XRLflowConfig", "LRUCache",
    "OptimisationResult", "XRLflow",
    "GeneralisationReport", "ShapeVariant", "evaluate_generalisation",
]

_LAZY = {
    "OptimisationResult": "xrlflow",
    "XRLflow": "xrlflow",
    "GeneralisationReport": "generalise",
    "ShapeVariant": "generalise",
    "evaluate_generalisation": "generalise",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
