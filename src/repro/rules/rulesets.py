"""Curated rewrite rules.

These mirror the published TASO substitutions the paper's evaluation leans
on: operator fusion (conv+BN+ReLU, matmul+bias), merging parallel operators
that share an input (the classic "merge two matmuls / convolutions" rules),
kernel enlargement (pad a 1x1 convolution to 3x3 so it becomes mergeable with
a sibling), and the algebraic re-associations that let scalar multiplications
migrate onto weight tensors where they can be constant-folded.

The full TASO generator emits ~150 rules; the curated set below covers the
rule families that actually fire on the evaluated models (the paper's Figure
5 heatmap shows fewer than ten distinct rules being applied).  The
enumerative generator in :mod:`repro.rules.generator` can extend the set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.graph import Graph, NodeId
from ..ir.ops import OpType
from .base import Match, RewriteRule, RuleSet, eliminate_dead_nodes, replace_all_uses

__all__ = ["default_ruleset", "exact_ruleset", "DEFAULT_RULE_CLASSES"]


def _single_consumer(graph: Graph, nid: NodeId) -> Optional[NodeId]:
    """The unique consumer of ``nid``'s output, or None if not unique."""
    succs = graph.successors(nid)
    if len(succs) == 1:
        return succs[0]
    return None


def _is_param(graph: Graph, nid: NodeId) -> bool:
    return graph.nodes[nid].op_type in (OpType.WEIGHT, OpType.CONSTANT)


def _finish(graph: Graph) -> Graph:
    eliminate_dead_nodes(graph)
    return graph


# ---------------------------------------------------------------------------
# Fusion rules
# ---------------------------------------------------------------------------

class FuseConvBatchNorm(RewriteRule):
    """Conv2D followed by BatchNorm ⇒ FusedConvBN (BN folded into the kernel)."""

    name = "fuse-conv-bn"
    category = "fusion"
    anchor_ops = (OpType.CONV2D,)
    anchor_role = "conv"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            consumer = _single_consumer(graph, nid)
            if consumer is None:
                continue
            if graph.nodes[consumer].op_type is OpType.BATCHNORM:
                matches.append(Match.create(self.name, {"conv": nid, "bn": consumer}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        conv, bn = match.node("conv"), match.node("bn")
        conv_inputs = [(e.src, e.src_slot) for e in g.in_edges(conv)]
        bn_inputs = [(e.src, e.src_slot) for e in g.in_edges(bn)]
        # FusedConvBN consumes (x, w, scale, bias).
        fused_inputs = conv_inputs + bn_inputs[1:]
        fused = g.add_node(OpType.FUSED_CONV_BN, fused_inputs,
                           dict(g.nodes[conv].attrs), name=f"fused_{conv}_{bn}")
        replace_all_uses(g, bn, fused)
        return _finish(g)


class FuseConvRelu(RewriteRule):
    """Conv2D followed by ReLU ⇒ FusedConvRelu."""

    name = "fuse-conv-relu"
    category = "fusion"
    anchor_ops = (OpType.CONV2D,)
    anchor_role = "conv"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            consumer = _single_consumer(graph, nid)
            if consumer is None:
                continue
            if graph.nodes[consumer].op_type is OpType.RELU:
                matches.append(Match.create(self.name, {"conv": nid, "relu": consumer}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        conv, relu = match.node("conv"), match.node("relu")
        conv_inputs = [(e.src, e.src_slot) for e in g.in_edges(conv)]
        fused = g.add_node(OpType.FUSED_CONV_RELU, conv_inputs,
                           dict(g.nodes[conv].attrs), name=f"fused_{conv}_{relu}")
        replace_all_uses(g, relu, fused)
        return _finish(g)


class FuseConvBNRelu(RewriteRule):
    """FusedConvBN followed by ReLU ⇒ FusedConvBNRelu (second fusion step)."""

    name = "fuse-conv-bn-relu"
    category = "fusion"
    anchor_ops = (OpType.FUSED_CONV_BN,)
    anchor_role = "fused"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            consumer = _single_consumer(graph, nid)
            if consumer is None:
                continue
            if graph.nodes[consumer].op_type is OpType.RELU:
                matches.append(Match.create(self.name, {"fused": nid, "relu": consumer}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        fused, relu = match.node("fused"), match.node("relu")
        inputs = [(e.src, e.src_slot) for e in g.in_edges(fused)]
        new = g.add_node(OpType.FUSED_CONV_BN_RELU, inputs,
                         dict(g.nodes[fused].attrs), name=f"fused_{fused}_{relu}")
        replace_all_uses(g, relu, new)
        return _finish(g)


class FuseMatMulBias(RewriteRule):
    """MatMul followed by Add of a bias parameter ⇒ FusedMatMulAdd."""

    name = "fuse-matmul-bias"
    category = "fusion"
    anchor_ops = (OpType.MATMUL,)
    anchor_role = "matmul"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            consumer = _single_consumer(graph, nid)
            if consumer is None:
                continue
            add = graph.nodes[consumer]
            if add.op_type is not OpType.ADD:
                continue
            other = [e.src for e in graph.in_edges(consumer) if e.src != nid]
            if len(other) == 1 and _is_param(graph, other[0]):
                matches.append(Match.create(
                    self.name, {"matmul": nid, "add": consumer, "bias": other[0]}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        mm, add, bias = match.node("matmul"), match.node("add"), match.node("bias")
        mm_inputs = [(e.src, e.src_slot) for e in g.in_edges(mm)]
        fused = g.add_node(OpType.FUSED_MATMUL_ADD, mm_inputs + [(bias, 0)],
                           name=f"fused_{mm}_{add}")
        replace_all_uses(g, add, fused)
        return _finish(g)


# ---------------------------------------------------------------------------
# Merge rules (parallel operators sharing an input)
# ---------------------------------------------------------------------------

class MergeParallelMatMuls(RewriteRule):
    """Two MatMuls sharing the same input ⇒ one MatMul on concatenated weights.

    The weight concatenation is itself a constant-only subgraph, so it is
    folded ahead of time by the end-to-end simulator; the two original
    results are recovered with Slice operators.
    """

    name = "merge-matmuls"
    category = "merge"
    anchor_ops = (OpType.MATMUL,)
    anchor_role = None
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        by_input: Dict[NodeId, List[NodeId]] = {}
        for nid, node in self.anchor_nodes(graph):
            edges = graph.in_edges(nid)
            if len(edges) != 2 or not _is_param(graph, edges[1].src):
                continue
            if graph.nodes[edges[1].src].output_spec.shape.rank != 2:
                continue
            by_input.setdefault(edges[0].src, []).append(nid)
        for shared, mms in by_input.items():
            mms = sorted(mms)
            for i in range(len(mms)):
                for j in range(i + 1, len(mms)):
                    wa = graph.in_edges(mms[i])[1].src
                    wb = graph.in_edges(mms[j])[1].src
                    sa = graph.nodes[wa].output_spec.shape
                    sb = graph.nodes[wb].output_spec.shape
                    if sa.dims[0] != sb.dims[0]:
                        continue
                    matches.append(Match.create(
                        self.name, {"lhs": mms[i], "rhs": mms[j], "x": shared}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        lhs, rhs, x = match.node("lhs"), match.node("rhs"), match.node("x")
        x_slot = g.in_edges(lhs)[0].src_slot
        wa = g.in_edges(lhs)[1].src
        wb = g.in_edges(rhs)[1].src
        na = g.nodes[wa].output_spec.shape.dims[1]
        nb = g.nodes[wb].output_spec.shape.dims[1]
        merged_w = g.add_node(OpType.CONCAT, [(wa, 0), (wb, 0)], {"axis": 1},
                              name=f"merged_w_{lhs}_{rhs}")
        merged = g.add_node(OpType.MATMUL, [(x, x_slot), (merged_w, 0)],
                            name=f"merged_mm_{lhs}_{rhs}")
        out_rank = g.nodes[merged].output_spec.shape.rank
        axis = out_rank - 1
        slice_a = g.add_node(OpType.SLICE, [(merged, 0)],
                             {"axis": axis, "start": 0, "end": na})
        slice_b = g.add_node(OpType.SLICE, [(merged, 0)],
                             {"axis": axis, "start": na, "end": na + nb})
        replace_all_uses(g, lhs, slice_a)
        replace_all_uses(g, rhs, slice_b)
        return _finish(g)


class MergeParallelConvs(RewriteRule):
    """Two Conv2Ds with the same input and kernel shape ⇒ one wider Conv2D."""

    name = "merge-convs"
    category = "merge"
    anchor_ops = (OpType.CONV2D,)
    anchor_role = None
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        by_input: Dict[Tuple, List[NodeId]] = {}
        for nid, node in self.anchor_nodes(graph):
            edges = graph.in_edges(nid)
            if len(edges) < 2 or not _is_param(graph, edges[1].src):
                continue
            w_shape = graph.nodes[edges[1].src].output_spec.shape.dims
            key = (edges[0].src, edges[0].src_slot, w_shape[2], w_shape[3],
                   node.attrs.get("stride", 1), node.attrs.get("padding", "same"))
            by_input.setdefault(key, []).append(nid)
        for key, convs in by_input.items():
            convs = sorted(convs)
            for i in range(len(convs)):
                for j in range(i + 1, len(convs)):
                    matches.append(Match.create(
                        self.name, {"lhs": convs[i], "rhs": convs[j]}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        lhs, rhs = match.node("lhs"), match.node("rhs")
        x_edge = g.in_edges(lhs)[0]
        wa = g.in_edges(lhs)[1].src
        wb = g.in_edges(rhs)[1].src
        ca = g.nodes[wa].output_spec.shape.dims[0]
        cb = g.nodes[wb].output_spec.shape.dims[0]
        merged_w = g.add_node(OpType.CONCAT, [(wa, 0), (wb, 0)], {"axis": 0},
                              name=f"merged_w_{lhs}_{rhs}")
        merged = g.add_node(OpType.CONV2D, [(x_edge.src, x_edge.src_slot), (merged_w, 0)],
                            dict(g.nodes[lhs].attrs), name=f"merged_conv_{lhs}_{rhs}")
        slice_a = g.add_node(OpType.SLICE, [(merged, 0)],
                             {"axis": 1, "start": 0, "end": ca})
        slice_b = g.add_node(OpType.SLICE, [(merged, 0)],
                             {"axis": 1, "start": ca, "end": ca + cb})
        replace_all_uses(g, lhs, slice_a)
        replace_all_uses(g, rhs, slice_b)
        return _finish(g)


class EnlargeConvKernel(RewriteRule):
    """Pad a 1x1 convolution to 3x3 so it can merge with a sibling 3x3 conv.

    This is TASO's "enlarge convolution kernel" substitution.  It is
    semantics-preserving on a real system (the padded weight entries are
    zero) but increases the arithmetic of the enlarged kernel nine-fold —
    a cost the idealised cost model barely notices while the end-to-end
    simulator does.  The rule only fires when a sibling 3x3 convolution
    shares the same input, i.e. when a follow-up merge is possible.
    """

    name = "enlarge-conv"
    category = "layout"
    anchor_ops = (OpType.CONV2D,)
    anchor_role = "conv"
    match_radius = 3
    # The interpreter cannot reproduce the zero-padded weight tensor, so the
    # rule is not replayable exactly (it fabricates a new weight node).
    exactly_equivalent = False

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            edges = graph.in_edges(nid)
            if len(edges) < 2 or not _is_param(graph, edges[1].src):
                continue
            w_shape = graph.nodes[edges[1].src].output_spec.shape.dims
            if w_shape[2] != 1 or w_shape[3] != 1:
                continue
            if node.attrs.get("padding", "same") != "same":
                continue
            # Look for a sibling 3x3 convolution on the same input tensor.
            x_src, x_slot = edges[0].src, edges[0].src_slot
            for other in graph.successors(x_src):
                if other == nid:
                    continue
                other_node = graph.nodes[other]
                if other_node.op_type is not OpType.CONV2D:
                    continue
                oedges = graph.in_edges(other)
                if oedges[0].src != x_src or oedges[0].src_slot != x_slot:
                    continue
                ow = graph.nodes[oedges[1].src].output_spec.shape.dims
                if (ow[2], ow[3]) == (3, 3) and \
                        other_node.attrs.get("stride", 1) == node.attrs.get("stride", 1):
                    matches.append(Match.create(self.name, {"conv": nid, "sibling": other}))
                    break
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        conv = match.node("conv")
        edges = g.in_edges(conv)
        x_src, x_slot = edges[0].src, edges[0].src_slot
        w = g.nodes[edges[1].src]
        c_out, c_in = w.output_spec.shape.dims[0], w.output_spec.shape.dims[1]
        enlarged_w = g.add_node(OpType.WEIGHT, (), {"shape": (c_out, c_in, 3, 3)},
                                name=f"{w.name}_enlarged")
        attrs = dict(g.nodes[conv].attrs)
        attrs["kernel"] = 3
        new_conv = g.add_node(OpType.CONV2D, [(x_src, x_slot), (enlarged_w, 0)],
                              attrs, name=f"enlarged_{conv}")
        replace_all_uses(g, conv, new_conv)
        return _finish(g)


# ---------------------------------------------------------------------------
# Algebraic rules exposing constant folding
# ---------------------------------------------------------------------------

def _is_scalar_param(graph: Graph, nid: NodeId) -> bool:
    node = graph.nodes[nid]
    return (node.op_type in (OpType.WEIGHT, OpType.CONSTANT)
            and node.output_spec.num_elements == 1)


class PushMulThroughBatchMatMul(RewriteRule):
    """Mul(BatchMatMul(a, b), c) with scalar constant c ⇒ BatchMatMul(Mul(a, c), b)."""

    name = "push-mul-bmm"
    category = "algebraic"
    anchor_ops = (OpType.MUL,)
    anchor_role = "mul"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            edges = graph.in_edges(nid)
            a, b = edges[0].src, edges[1].src
            for bmm, scalar in ((a, b), (b, a)):
                if graph.nodes[bmm].op_type is OpType.BATCH_MATMUL and \
                        _is_scalar_param(graph, scalar) and \
                        _single_consumer(graph, bmm) == nid:
                    matches.append(Match.create(
                        self.name, {"mul": nid, "bmm": bmm, "scalar": scalar}))
                    break
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        mul, bmm, scalar = match.node("mul"), match.node("bmm"), match.node("scalar")
        bmm_edges = g.in_edges(bmm)
        a_src, a_slot = bmm_edges[0].src, bmm_edges[0].src_slot
        b_src, b_slot = bmm_edges[1].src, bmm_edges[1].src_slot
        scaled_a = g.add_node(OpType.MUL, [(a_src, a_slot), (scalar, 0)],
                              name=f"scaled_{a_src}")
        new_bmm = g.add_node(OpType.BATCH_MATMUL, [(scaled_a, 0), (b_src, b_slot)],
                             name=f"bmm_{mul}")
        replace_all_uses(g, mul, new_bmm)
        return _finish(g)


class PushMulThroughReshape(RewriteRule):
    """Mul(Reshape(x), c) with scalar constant c ⇒ Reshape(Mul(x, c))."""

    name = "push-mul-reshape"
    category = "algebraic"
    anchor_ops = (OpType.MUL,)
    anchor_role = "mul"
    match_radius = 2
    exactly_equivalent = True

    _MOVABLE = (OpType.RESHAPE, OpType.TRANSPOSE)

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            edges = graph.in_edges(nid)
            a, b = edges[0].src, edges[1].src
            for reshaped, scalar in ((a, b), (b, a)):
                if graph.nodes[reshaped].op_type in self._MOVABLE and \
                        _is_scalar_param(graph, scalar) and \
                        _single_consumer(graph, reshaped) == nid:
                    matches.append(Match.create(
                        self.name, {"mul": nid, "reshape": reshaped, "scalar": scalar}))
                    break
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        mul, reshape, scalar = match.node("mul"), match.node("reshape"), match.node("scalar")
        r_edge = g.in_edges(reshape)[0]
        scaled = g.add_node(OpType.MUL, [(r_edge.src, r_edge.src_slot), (scalar, 0)],
                            name=f"scaled_{r_edge.src}")
        new_reshape = g.add_node(g.nodes[reshape].op_type, [(scaled, 0)],
                                 dict(g.nodes[reshape].attrs), name=f"reshape_{mul}")
        replace_all_uses(g, mul, new_reshape)
        return _finish(g)


class DistributeMulOverAdd(RewriteRule):
    """Mul(Add(a, b), c) with scalar constant c ⇒ Add(Mul(a, c), Mul(b, c))."""

    name = "distribute-mul-add"
    category = "algebraic"
    anchor_ops = (OpType.MUL,)
    anchor_role = "mul"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            edges = graph.in_edges(nid)
            a, b = edges[0].src, edges[1].src
            for added, scalar in ((a, b), (b, a)):
                if graph.nodes[added].op_type is OpType.ADD and \
                        _is_scalar_param(graph, scalar) and \
                        _single_consumer(graph, added) == nid:
                    matches.append(Match.create(
                        self.name, {"mul": nid, "add": added, "scalar": scalar}))
                    break
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        mul, add, scalar = match.node("mul"), match.node("add"), match.node("scalar")
        add_edges = g.in_edges(add)
        scaled = []
        for edge in add_edges:
            scaled.append(g.add_node(OpType.MUL, [(edge.src, edge.src_slot), (scalar, 0)],
                                     name=f"scaled_{edge.src}"))
        new_add = g.add_node(OpType.ADD, [(scaled[0], 0), (scaled[1], 0)],
                             name=f"add_{mul}")
        replace_all_uses(g, mul, new_add)
        return _finish(g)


class FoldMulIntoMatMul(RewriteRule):
    """Mul(MatMul(x, W), c) with constant c and parameter W ⇒ MatMul(x, Mul(W, c)).

    After the rewrite the scalar multiplication only touches constant data,
    so the end-to-end runtime folds it away entirely.
    """

    name = "fold-mul-matmul"
    category = "algebraic"
    anchor_ops = (OpType.MUL,)
    anchor_role = "mul"
    match_radius = 2
    exactly_equivalent = True

    _MM_OPS = (OpType.MATMUL, OpType.FUSED_MATMUL_ADD)

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            edges = graph.in_edges(nid)
            a, b = edges[0].src, edges[1].src
            for mm, scalar in ((a, b), (b, a)):
                if graph.nodes[mm].op_type in self._MM_OPS and \
                        _is_scalar_param(graph, scalar) and \
                        _single_consumer(graph, mm) == nid:
                    w = graph.in_edges(mm)[1].src
                    if _is_param(graph, w):
                        matches.append(Match.create(
                            self.name, {"mul": nid, "matmul": mm, "scalar": scalar}))
                        break
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        mul, mm, scalar = match.node("mul"), match.node("matmul"), match.node("scalar")
        mm_edges = g.in_edges(mm)
        w_src = mm_edges[1].src
        scaled_w = g.add_node(OpType.MUL, [(w_src, 0), (scalar, 0)],
                              name=f"scaled_w_{w_src}")
        new_inputs = [(mm_edges[0].src, mm_edges[0].src_slot), (scaled_w, 0)]
        if g.nodes[mm].op_type is OpType.FUSED_MATMUL_ADD:
            # The bias must be scaled as well to stay equivalent.
            bias = mm_edges[2].src
            scaled_b = g.add_node(OpType.MUL, [(bias, 0), (scalar, 0)],
                                  name=f"scaled_b_{bias}")
            new_inputs.append((scaled_b, 0))
        new_mm = g.add_node(g.nodes[mm].op_type, new_inputs, name=f"mm_{mul}")
        replace_all_uses(g, mul, new_mm)
        return _finish(g)


class ReassociateMatMul(RewriteRule):
    """MatMul(MatMul(x, A), B) with parameters A, B ⇒ MatMul(x, MatMul(A, B))."""

    name = "reassoc-matmul"
    category = "algebraic"
    anchor_ops = (OpType.MATMUL,)
    anchor_role = "outer"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            edges = graph.in_edges(nid)
            inner = edges[0].src
            outer_w = edges[1].src
            if graph.nodes[inner].op_type is not OpType.MATMUL:
                continue
            if not _is_param(graph, outer_w):
                continue
            inner_edges = graph.in_edges(inner)
            if not _is_param(graph, inner_edges[1].src):
                continue
            if _single_consumer(graph, inner) != nid:
                continue
            matches.append(Match.create(self.name, {"outer": nid, "inner": inner}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        outer, inner = match.node("outer"), match.node("inner")
        inner_edges = g.in_edges(inner)
        outer_edges = g.in_edges(outer)
        x_src, x_slot = inner_edges[0].src, inner_edges[0].src_slot
        a_src = inner_edges[1].src
        b_src = outer_edges[1].src
        ab = g.add_node(OpType.MATMUL, [(a_src, 0), (b_src, 0)], name=f"ab_{outer}")
        new_outer = g.add_node(OpType.MATMUL, [(x_src, x_slot), (ab, 0)],
                               name=f"mm_{outer}")
        replace_all_uses(g, outer, new_outer)
        return _finish(g)


# ---------------------------------------------------------------------------
# Cleanup rules
# ---------------------------------------------------------------------------

class EliminateDoubleTranspose(RewriteRule):
    """Transpose(Transpose(x)) with mutually inverse permutations ⇒ x."""

    name = "eliminate-double-transpose"
    category = "cleanup"
    anchor_ops = (OpType.TRANSPOSE,)
    anchor_role = "outer"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            inner = graph.in_edges(nid)[0].src
            if graph.nodes[inner].op_type is not OpType.TRANSPOSE:
                continue
            outer_perm = node.attrs.get("perm")
            inner_perm = graph.nodes[inner].attrs.get("perm")
            rank = node.output_spec.shape.rank
            outer_perm = tuple(outer_perm) if outer_perm else tuple(reversed(range(rank)))
            inner_perm = tuple(inner_perm) if inner_perm else tuple(reversed(range(rank)))
            composed = tuple(inner_perm[p] for p in outer_perm)
            if composed == tuple(range(rank)):
                matches.append(Match.create(self.name, {"outer": nid, "inner": inner}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        outer, inner = match.node("outer"), match.node("inner")
        src_edge = g.in_edges(inner)[0]
        replace_all_uses(g, outer, src_edge.src, new_slot=src_edge.src_slot)
        return _finish(g)


class EliminateSliceOfConcat(RewriteRule):
    """Slice(Concat(a, b)) that exactly recovers one operand ⇒ that operand."""

    name = "eliminate-slice-concat"
    category = "cleanup"
    anchor_ops = (OpType.SLICE,)
    anchor_role = "slice"
    match_radius = 2
    exactly_equivalent = True

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            concat = graph.in_edges(nid)[0].src
            concat_node = graph.nodes[concat]
            if concat_node.op_type is not OpType.CONCAT:
                continue
            axis = int(node.attrs["axis"]) % concat_node.output_spec.shape.rank
            if axis != int(concat_node.attrs.get("axis", 0)) % concat_node.output_spec.shape.rank:
                continue
            start, end = int(node.attrs["start"]), int(node.attrs["end"])
            offset = 0
            for edge in graph.in_edges(concat):
                part = graph.nodes[edge.src].outputs[edge.src_slot]
                extent = part.shape.dims[axis]
                if (start, end) == (offset, offset + extent):
                    matches.append(Match.create(
                        self.name, {"slice": nid, "concat": concat},
                        {"operand": edge.src, "operand_slot": edge.src_slot}))
                    break
                offset += extent
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        params = match.param_map
        replace_all_uses(g, match.node("slice"), int(params["operand"]),
                         new_slot=int(params["operand_slot"]))
        return _finish(g)


#: The rule classes included in :func:`default_ruleset`, in priority order.
DEFAULT_RULE_CLASSES = [
    FuseConvBatchNorm,
    FuseConvRelu,
    FuseConvBNRelu,
    FuseMatMulBias,
    MergeParallelMatMuls,
    MergeParallelConvs,
    EnlargeConvKernel,
    PushMulThroughBatchMatMul,
    PushMulThroughReshape,
    DistributeMulOverAdd,
    FoldMulIntoMatMul,
    ReassociateMatMul,
    EliminateDoubleTranspose,
    EliminateSliceOfConcat,
]


def default_ruleset() -> RuleSet:
    """The curated rule set used by all optimisers in this repository."""
    return RuleSet([cls() for cls in DEFAULT_RULE_CLASSES])


def exact_ruleset() -> RuleSet:
    """The curated rules that are *exactly* equivalent.

    Drops rules flagged ``exactly_equivalent=False`` (EnlargeConv
    fabricates a fresh weight tensor, so its output values are not
    preserved under deterministic materialisation).  This is the rule set
    the executor-backed differential harness runs the optimisers under
    when asserting value equivalence, not just shape equivalence.
    """
    return RuleSet([rule for rule in (cls() for cls in DEFAULT_RULE_CLASSES)
                    if rule.exactly_equivalent])
