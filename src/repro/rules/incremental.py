"""Incremental candidate-set maintenance across rewrite steps.

Most matches survive a rewrite: applying ``fuse-conv-bn`` deep inside
Inception leaves every match in the other towers untouched, yet the RL
environment and the TASO search used to re-run ``find_matches`` for all
rules over the whole graph on every step.  This module keeps the match
set alive across steps and reconciles it against the
:class:`~repro.ir.graph.GraphDelta` each rewrite records:

1. compute the **touched set** — every node whose existence or adjacency
   differs from the parent graph (the delta's added/rewired nodes, plus
   the producers whose out-edge lists changed on either side);
2. BFS outward (undirected) to label every node within the largest
   :attr:`~repro.rules.base.RewriteRule.match_radius` of the touched set;
3. per rule, drop the cached match groups anchored near the mutation —
   or binding a changed node — and re-run matching restricted to just
   those anchors (:func:`~repro.rules.base.restricted_anchor_matching`);
   rules whose matches couple several anchors (``anchor_role is None``)
   are re-run whole whenever any of their anchors sits near the delta;
4. splice cached and fresh groups back together in ascending-anchor
   order, which is exactly the order ``find_matches`` enumerates.

The eager path (``RuleSet.lazy_candidates``) remains the equivalence
oracle: for any reachable graph the engine must produce the identical
candidate list, and ``tests/rules/test_engine_equivalence.py`` asserts
it does under :func:`~repro.rules.base.full_scan_matching`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..core.lru import LRUCache
from ..ir.graph import Graph, GraphDelta, NodeId
from ..rules import base as _base
from ..rules.base import (Candidate, Match, RewriteRule, RuleSet,
                          restricted_anchor_matching)

__all__ = ["IncrementalCandidateEngine"]

#: Matches for one rule: either per-anchor groups (``anchor_role`` rules)
#: or the flat ordered list (coupled rules).
_RuleMatches = Tuple[Optional[Dict[NodeId, List[Match]]], List[Match]]


class _MatchState:
    """The cached match set of one graph (plus the graph itself).

    The graph reference is strong on purpose: states are keyed by
    ``id(graph)``, and pinning the graph guarantees the id cannot be
    recycled by the allocator while the state is alive.
    """

    __slots__ = ("graph", "per_rule")

    def __init__(self, graph: Graph,
                 per_rule: Dict[str, _RuleMatches]):
        self.graph = graph
        self.per_rule = per_rule


class IncrementalCandidateEngine:
    """Drop-in replacement for ``RuleSet.lazy_candidates`` with reuse.

    ``engine.lazy_candidates(graph)`` returns the same candidates in the
    same order as ``ruleset.lazy_candidates(graph)``.  When ``graph``
    was produced by ``parent.copy()`` + surgery and the parent's match
    state is cached, only the mutated neighbourhood is re-matched;
    otherwise the engine transparently falls back to full matching (and
    caches the result for the next step).

    Parameters
    ----------
    ruleset:
        The rules to maintain matches for.
    capacity:
        Number of graph match-states kept (LRU).  Each state pins its
        graph, so this bounds memory alongside reuse across the search
        frontier.
    """

    def __init__(self, ruleset: RuleSet, capacity: int = 64):
        self.ruleset = ruleset
        self._states: LRUCache = LRUCache(max_entries=capacity,
                                          name="match_state")
        self._max_radius = max((rule.match_radius for rule in ruleset.rules),
                               default=0)
        #: Diagnostics: how many ``lazy_candidates`` calls reused a parent
        #: state vs. re-matched from scratch.
        self.incremental_updates = 0
        self.full_rebuilds = 0

    # ------------------------------------------------------------------
    def lazy_candidates(self, graph: Graph) -> List[Candidate]:
        """Unmaterialised candidates for ``graph``, in rule order."""
        if _base._FULL_SCAN:
            # The oracle path must not consult (or pollute) cached state.
            return self.ruleset.lazy_candidates(graph)
        state = self._states.get(id(graph))
        if state is not None and state.graph is graph:
            return self._candidates_from(state)
        parent_state = self._parent_state(graph)
        if parent_state is None:
            state = self._full_state(graph)
            self.full_rebuilds += 1
        else:
            state = self._delta_state(parent_state, graph)
            self.incremental_updates += 1
        self._states.put(id(graph), state)
        return self._candidates_from(state)

    def stats(self) -> Dict[str, float]:
        payload = self._states.stats()
        payload["match_incremental_updates"] = float(self.incremental_updates)
        payload["match_full_rebuilds"] = float(self.full_rebuilds)
        return payload

    # ------------------------------------------------------------------
    def _parent_state(self, graph: Graph) -> Optional[_MatchState]:
        parent = graph.delta_parent()
        if parent is None:
            return None
        delta = graph.mutation_delta()
        if delta is None or 2 * len(delta.changed_nodes()) > graph.num_nodes:
            # Rewrites this large (DCE cascades, whole-graph surgery)
            # would dirty most anchors anyway — full matching is cheaper
            # than reconciling.
            return None
        state = self._states.get(id(parent))
        if state is None or state.graph is not parent:
            return None
        return state

    def _full_state(self, graph: Graph) -> _MatchState:
        per_rule: Dict[str, _RuleMatches] = {}
        for rule in self.ruleset.rules:
            matches = rule.find_matches(graph)
            per_rule[rule.name] = (self._group(rule, matches), matches)
        return _MatchState(graph, per_rule)

    @staticmethod
    def _group(rule: RewriteRule,
               matches: List[Match]) -> Optional[Dict[NodeId, List[Match]]]:
        if rule.anchor_role is None or not rule.anchor_ops:
            return None
        groups: Dict[NodeId, List[Match]] = {}
        for match in matches:
            groups.setdefault(match.node(rule.anchor_role), []).append(match)
        return groups

    def _candidates_from(self, state: _MatchState) -> List[Candidate]:
        graph = state.graph
        out: List[Candidate] = []
        for rule in self.ruleset.rules:
            _, matches = state.per_rule[rule.name]
            for match in matches:
                out.append(Candidate(rule_name=rule.name, match=match,
                                     rule=rule, parent=graph))
        return out

    # ------------------------------------------------------------------
    def _delta_state(self, parent_state: _MatchState,
                     graph: Graph) -> _MatchState:
        parent = parent_state.graph
        delta = graph.mutation_delta()
        touched = self._touched_nodes(parent, graph, delta)
        distance = self._distances(graph, touched)
        invalid = touched | delta.removed | delta.rewired | delta.added

        per_rule: Dict[str, _RuleMatches] = {}
        for rule in self.ruleset.rules:
            groups, matches = parent_state.per_rule[rule.name]
            if groups is None:
                per_rule[rule.name] = self._refresh_coupled(
                    rule, matches, graph, distance, invalid)
            else:
                per_rule[rule.name] = self._refresh_grouped(
                    rule, groups, graph, distance, invalid)
        return _MatchState(graph, per_rule)

    def _refresh_coupled(self, rule: RewriteRule, cached: List[Match],
                         graph: Graph, distance: Dict[NodeId, int],
                         invalid: Set[NodeId]) -> _RuleMatches:
        """Coupled rules re-run whole if any anchor sits near the delta."""
        radius = rule.match_radius
        stale = any(distance.get(nid, radius + 1) <= radius
                    for nid in graph.nodes_by_op(*rule.anchor_ops))
        if not stale:
            stale = any(nid in invalid
                        for match in cached for _, nid in match.nodes)
        if stale:
            return (None, rule.find_matches(graph))
        return (None, cached)

    def _refresh_grouped(self, rule: RewriteRule,
                         cached: Dict[NodeId, List[Match]], graph: Graph,
                         distance: Dict[NodeId, int],
                         invalid: Set[NodeId]) -> _RuleMatches:
        radius = rule.match_radius
        rematch: Set[NodeId] = {
            nid for nid in graph.nodes_by_op(*rule.anchor_ops)
            if distance.get(nid, radius + 1) <= radius}
        groups: Dict[NodeId, List[Match]] = {}
        for anchor, group in cached.items():
            if anchor in rematch or anchor not in graph.nodes:
                continue
            # Safety net for conservative radii: a cached match binding
            # any node whose adjacency changed is always re-derived.
            if any(nid in invalid for match in group for _, nid in match.nodes):
                rematch.add(anchor)
                continue
            groups[anchor] = group
        if rematch:
            with restricted_anchor_matching(rematch):
                fresh = rule.find_matches(graph)
            for anchor, group in self._group(rule, fresh).items():
                groups[anchor] = group
        matches = [match for anchor in sorted(groups)
                   for match in groups[anchor]]
        return (groups, matches)

    # ------------------------------------------------------------------
    @staticmethod
    def _touched_nodes(parent: Graph, graph: Graph,
                       delta: GraphDelta) -> Set[NodeId]:
        """Nodes (alive in ``graph``) whose adjacency differs from the
        parent: the delta's surviving nodes plus every producer whose
        out-edge list gained or lost an edge on either side."""
        touched: Set[NodeId] = set()
        nodes = graph.nodes
        for nid in delta.added | delta.rewired:
            if nid not in nodes:
                continue
            touched.add(nid)
            for edge in graph._in_edges[nid]:
                touched.add(edge.src)
        parent_nodes = parent.nodes
        for nid in delta.removed | delta.rewired:
            if nid not in parent_nodes:
                continue
            for edge in parent._in_edges[nid]:
                if edge.src in nodes:
                    touched.add(edge.src)
        touched.intersection_update(nodes)
        return touched

    def _distances(self, graph: Graph,
                   touched: Set[NodeId]) -> Dict[NodeId, int]:
        """Undirected BFS distance from the touched set, capped at the
        largest rule radius."""
        distance: Dict[NodeId, int] = {nid: 0 for nid in touched}
        frontier = deque(touched)
        max_radius = self._max_radius
        while frontier:
            nid = frontier.popleft()
            depth = distance[nid]
            if depth >= max_radius:
                continue
            for edge in graph._in_edges[nid]:
                if edge.src not in distance:
                    distance[edge.src] = depth + 1
                    frontier.append(edge.src)
            for edge in graph._out_edges[nid]:
                if edge.dst not in distance:
                    distance[edge.dst] = depth + 1
                    frontier.append(edge.dst)
        return distance
