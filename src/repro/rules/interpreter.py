"""Reference numerical interpreter for computation graphs.

The interpreter executes a graph with concrete numpy tensors.  It is *not*
used on the optimisation fast path — its job is verification: rewrite rules
that claim to be fully equivalent are checked by executing the graph before
and after the substitution on random inputs and comparing outputs, exactly
the random-testing methodology TASO's rule generator uses.

Weights and constants are materialised deterministically from the node name
and shape, so a rewrite that merely re-wires existing weight nodes preserves
their values, while a rewrite that fabricates new weight tensors is (by
design) not exactly checkable and must be marked as such.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..ir.graph import Graph, NodeId
from ..ir.ops import OpType

__all__ = ["GraphInterpreter", "execute_graph", "graphs_equivalent"]


def _seed_from(name: str, shape: Sequence[int]) -> int:
    payload = f"{name}:{tuple(shape)}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:4], "little")


def _deterministic_tensor(name: str, shape: Sequence[int]) -> np.ndarray:
    rng = np.random.default_rng(_seed_from(name, shape))
    return rng.standard_normal(tuple(shape)).astype(np.float64) * 0.1


class GraphInterpreter:
    """Executes a :class:`~repro.ir.graph.Graph` on concrete numpy tensors."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(self, graph: Graph,
            inputs: Optional[Mapping[str, np.ndarray]] = None
            ) -> Dict[NodeId, np.ndarray]:
        """Execute the graph and return a value for every node's output slot 0.

        ``inputs`` maps Input-node names to arrays; missing inputs are filled
        with deterministic random values derived from the node name.
        """
        inputs = dict(inputs or {})
        values: Dict[NodeId, list[np.ndarray]] = {}
        for nid in graph.topological_order():
            node = graph.nodes[nid]
            in_vals = [
                values[e.src][e.src_slot] for e in graph.in_edges(nid)
            ]
            values[nid] = self._eval_node(node, in_vals, inputs)
        return {nid: vals[0] for nid, vals in values.items()}

    # ------------------------------------------------------------------
    def _eval_node(self, node, in_vals, user_inputs) -> list[np.ndarray]:
        op = node.op_type
        attrs = node.attrs
        shape = tuple(node.outputs[0].shape.dims) if node.outputs else ()

        if op is OpType.INPUT:
            if node.name in user_inputs:
                return [np.asarray(user_inputs[node.name], dtype=np.float64)]
            return [_deterministic_tensor("input:" + node.name, shape)]
        if op in (OpType.WEIGHT, OpType.CONSTANT):
            return [_deterministic_tensor("param:" + node.name, shape)]
        if op is OpType.OUTPUT:
            return [in_vals[0]]
        if op is OpType.NOOP:
            return [np.zeros(())]

        if op is OpType.MATMUL or op is OpType.BATCH_MATMUL:
            return [np.matmul(in_vals[0], in_vals[1])]
        if op is OpType.FUSED_MATMUL_ADD:
            return [np.matmul(in_vals[0], in_vals[1]) + in_vals[2]]

        if op is OpType.ADD:
            return [in_vals[0] + in_vals[1]]
        if op is OpType.SUB:
            return [in_vals[0] - in_vals[1]]
        if op is OpType.MUL:
            return [in_vals[0] * in_vals[1]]
        if op is OpType.DIV:
            return [in_vals[0] / (in_vals[1] + 1e-12)]

        if op is OpType.RELU:
            return [np.maximum(in_vals[0], 0.0)]
        if op is OpType.GELU:
            x = in_vals[0]
            return [0.5 * x * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x ** 3)))]
        if op is OpType.SIGMOID:
            return [1.0 / (1.0 + np.exp(-in_vals[0]))]
        if op is OpType.TANH:
            return [np.tanh(in_vals[0])]
        if op is OpType.EXP:
            return [np.exp(in_vals[0])]
        if op is OpType.SQRT:
            return [np.sqrt(np.abs(in_vals[0]))]
        if op is OpType.ERF:
            # Pure numpy/stdlib erf (the CI image has no scipy).
            from ..exec.kernels import erf
            return [erf(in_vals[0])]
        if op in (OpType.IDENTITY, OpType.CAST, OpType.DROPOUT):
            return [in_vals[0]]

        if op is OpType.SOFTMAX:
            axis = int(attrs.get("axis", -1))
            x = in_vals[0] - in_vals[0].max(axis=axis, keepdims=True)
            e = np.exp(x)
            return [e / e.sum(axis=axis, keepdims=True)]
        if op is OpType.BATCHNORM:
            x = in_vals[0]
            # Inference-mode affine transform along the channel axis with the
            # (deterministic) scale/bias parameters when they are provided.
            scale = in_vals[1] if len(in_vals) > 1 else np.ones(x.shape[1])
            bias = in_vals[2] if len(in_vals) > 2 else np.zeros(x.shape[1])
            view = (1, -1) + (1,) * (x.ndim - 2)
            return [x * scale.reshape(view) + bias.reshape(view)]
        if op is OpType.LAYERNORM:
            x = in_vals[0]
            mean = x.mean(axis=-1, keepdims=True)
            var = x.var(axis=-1, keepdims=True)
            normed = (x - mean) / np.sqrt(var + 1e-5)
            if len(in_vals) > 1:
                normed = normed * in_vals[1]
            if len(in_vals) > 2:
                normed = normed + in_vals[2]
            return [normed]

        if op is OpType.RESHAPE:
            return [in_vals[0].reshape(tuple(attrs["shape"]))]
        if op is OpType.TRANSPOSE:
            perm = attrs.get("perm")
            return [np.transpose(in_vals[0], perm)]
        if op is OpType.CONCAT:
            return [np.concatenate(in_vals, axis=int(attrs.get("axis", 0)))]
        if op is OpType.SPLIT:
            parts = int(attrs.get("parts", 2))
            axis = int(attrs.get("axis", 0))
            return list(np.split(in_vals[0], parts, axis=axis))
        if op is OpType.SLICE:
            axis = int(attrs.get("axis", 0))
            start, end = int(attrs.get("start", 0)), attrs.get("end")
            sl = [slice(None)] * in_vals[0].ndim
            sl[axis] = slice(start, None if end is None else int(end))
            return [in_vals[0][tuple(sl)]]
        if op is OpType.SQUEEZE:
            return [np.squeeze(in_vals[0], axis=int(attrs.get("axis", 0)))]
        if op is OpType.UNSQUEEZE:
            return [np.expand_dims(in_vals[0], axis=int(attrs.get("axis", 0)))]
        if op is OpType.FLATTEN:
            x = in_vals[0]
            return [x.reshape(x.shape[0], -1)]
        if op is OpType.PAD:
            pads = attrs.get("pads")
            if not pads:
                return [in_vals[0]]
            pad_width = [(pads[2 * i], pads[2 * i + 1]) for i in range(in_vals[0].ndim)]
            return [np.pad(in_vals[0], pad_width)]

        if op in (OpType.REDUCE_SUM, OpType.REDUCE_MEAN, OpType.REDUCE_MAX):
            axis = int(attrs.get("axis", -1))
            keep = bool(attrs.get("keepdims", False))
            fn = {OpType.REDUCE_SUM: np.sum, OpType.REDUCE_MEAN: np.mean,
                  OpType.REDUCE_MAX: np.max}[op]
            return [fn(in_vals[0], axis=axis, keepdims=keep)]

        if op in (OpType.MAXPOOL2D, OpType.AVGPOOL2D, OpType.GLOBAL_AVGPOOL):
            return [self._eval_pool(op, in_vals[0], attrs, shape)]

        if op in (OpType.CONV2D, OpType.GROUP_CONV2D, OpType.DEPTHWISE_CONV2D,
                  OpType.ENLARGE_CONV, OpType.FUSED_CONV_BN,
                  OpType.FUSED_CONV_RELU, OpType.FUSED_CONV_BN_RELU):
            out = self._eval_conv(op, in_vals, attrs, shape)
            return [out]

        if op is OpType.EMBEDDING:
            table, indices = in_vals[0], in_vals[1]
            idx = np.clip(np.abs(indices).astype(int), 0, table.shape[0] - 1)
            return [table[idx]]
        if op is OpType.GATHER:
            # Matches shape inference: gather along ``axis`` with the
            # indices flattened ([*table, axis -> indices.num_elements]).
            table, indices = in_vals[0], in_vals[1]
            axis = int(attrs.get("axis", 0)) % table.ndim
            idx = np.clip(np.abs(indices).astype(int).reshape(-1),
                          0, table.shape[axis] - 1)
            return [np.take(table, idx, axis=axis)]

        if op is OpType.CUSTOM:
            # Opaque imported node: same pass-through semantics as the
            # executor (forward the first input when element counts line
            # up, zeros otherwise) so the two backends stay comparable.
            shape = tuple(node.outputs[0].shape.dims)
            if in_vals and in_vals[0].size == int(np.prod(shape, dtype=np.int64)):
                return [np.asarray(in_vals[0], dtype=np.float64).reshape(shape)]
            return [np.zeros(shape)]

        raise NotImplementedError(f"interpreter missing op {op.value}")

    # ------------------------------------------------------------------
    def _eval_pool(self, op, x, attrs, out_shape) -> np.ndarray:
        if op is OpType.GLOBAL_AVGPOOL:
            return x.mean(axis=(2, 3))
        kernel = int(attrs.get("kernel", 2))
        stride = int(attrs.get("stride", kernel))
        n, c, oh, ow = out_shape
        out = np.zeros((n, c, oh, ow))
        for i in range(oh):
            for j in range(ow):
                hs, ws = i * stride, j * stride
                window = x[:, :, hs:hs + kernel, ws:ws + kernel]
                if window.size == 0:
                    continue
                if op is OpType.MAXPOOL2D:
                    out[:, :, i, j] = window.max(axis=(2, 3))
                else:
                    out[:, :, i, j] = window.mean(axis=(2, 3))
        return out

    def _eval_conv(self, op, in_vals, attrs, out_shape) -> np.ndarray:
        x, w = in_vals[0], in_vals[1]
        n, c_out, oh, ow = out_shape
        stride = int(attrs.get("stride", 1))
        padding = attrs.get("padding", "same")
        kh, kw = w.shape[2], w.shape[3]
        groups = int(attrs.get("groups", 1))
        if op is OpType.DEPTHWISE_CONV2D:
            groups = x.shape[1]
        if padding == "same":
            pad_h = max((oh - 1) * stride + kh - x.shape[2], 0)
            pad_w = max((ow - 1) * stride + kw - x.shape[3], 0)
            x = np.pad(x, ((0, 0), (0, 0),
                           (pad_h // 2, pad_h - pad_h // 2),
                           (pad_w // 2, pad_w - pad_w // 2)))
        out = np.zeros((n, c_out, oh, ow))
        cin_per_group = x.shape[1] // groups
        cout_per_group = c_out // groups
        for g in range(groups):
            xg = x[:, g * cin_per_group:(g + 1) * cin_per_group]
            wg = w[g * cout_per_group:(g + 1) * cout_per_group]
            for i in range(oh):
                for j in range(ow):
                    hs, ws = i * stride, j * stride
                    patch = xg[:, :, hs:hs + kh, ws:ws + kw]
                    out[:, g * cout_per_group:(g + 1) * cout_per_group, i, j] = (
                        np.tensordot(patch, wg, axes=([1, 2, 3], [1, 2, 3]))
                    )
        if op in (OpType.FUSED_CONV_BN, OpType.FUSED_CONV_BN_RELU) and len(in_vals) > 2:
            scale = in_vals[2].reshape(1, -1, 1, 1)
            out = out * scale
            if len(in_vals) > 3:
                out = out + in_vals[3].reshape(1, -1, 1, 1)
        if op in (OpType.FUSED_CONV_RELU, OpType.FUSED_CONV_BN_RELU):
            out = np.maximum(out, 0.0)
        return out


def execute_graph(graph: Graph,
                  inputs: Optional[Mapping[str, np.ndarray]] = None
                  ) -> Dict[str, np.ndarray]:
    """Execute ``graph`` and return values of its sink nodes keyed by name."""
    interp = GraphInterpreter()
    values = interp.run(graph, inputs)
    return {graph.nodes[nid].name: values[nid] for nid in graph.sink_nodes()}


def graphs_equivalent(before: Graph, after: Graph, atol: float = 1e-6,
                      trials: int = 2) -> bool:
    """Random-testing equivalence check between two graphs.

    The graphs must expose the same Input-node names.  Output tensors are
    compared pairwise in sink order (after dropping zero-size differences in
    ordering by sorting on node name).
    """
    interp = GraphInterpreter()
    input_names = sorted(before.nodes[nid].name for nid in before.input_nodes())
    if sorted(after.nodes[nid].name for nid in after.input_nodes()) != input_names:
        return False
    for trial in range(trials):
        rng = np.random.default_rng(1234 + trial)
        feeds = {}
        for nid in before.input_nodes():
            node = before.nodes[nid]
            feeds[node.name] = rng.standard_normal(tuple(node.output_spec.shape.dims)) * 0.1
        out_a = execute_graph(before, feeds)
        out_b = execute_graph(after, feeds)
        vals_a = [out_a[k] for k in sorted(out_a)]
        vals_b = [out_b[k] for k in sorted(out_b)]
        if len(vals_a) != len(vals_b):
            return False
        for a, b in zip(vals_a, vals_b):
            if a.shape != b.shape or not np.allclose(a, b, atol=atol, rtol=1e-5):
                return False
    return True
