"""TASO-style rewrite-rule substrate.

* :mod:`repro.rules.base` — rule/match/candidate framework and graph surgery helpers
* :mod:`repro.rules.rulesets` — the curated rule set
* :mod:`repro.rules.interpreter` — reference numeric interpreter used for
  random-testing verification of rewrites
"""

from .base import (Candidate, Match, RewriteRule, RuleSet,
                   eliminate_dead_nodes, full_scan_matching,
                   replace_all_uses, restricted_anchor_matching)
from .incremental import IncrementalCandidateEngine
from .interpreter import GraphInterpreter, execute_graph, graphs_equivalent
from .rulesets import DEFAULT_RULE_CLASSES, default_ruleset, exact_ruleset

__all__ = [
    "Candidate", "Match", "RewriteRule", "RuleSet",
    "eliminate_dead_nodes", "full_scan_matching", "replace_all_uses",
    "restricted_anchor_matching", "IncrementalCandidateEngine",
    "GraphInterpreter", "execute_graph", "graphs_equivalent",
    "DEFAULT_RULE_CLASSES", "default_ruleset", "exact_ruleset",
]
