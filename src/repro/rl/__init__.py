"""Reinforcement-learning substrate: environment, PPO agent, training loop."""

from .features import (EDGE_FEATURE_DIM, GLOBAL_FEATURE_DIM, NODE_FEATURE_DIM,
                       FeatureCache, GraphFeatures, build_meta_graph,
                       combine_meta_graphs, encode_graph)
from .env import GraphRewriteEnv, Observation, StepResult
from .buffer import RolloutBuffer, Transition, compute_gae
from .ppo import ActionDecision, PPOUpdater, XRLflowAgent
from .training import EpisodeRecord, PPOTrainer, TrainingHistory

__all__ = [
    "EDGE_FEATURE_DIM", "GLOBAL_FEATURE_DIM", "NODE_FEATURE_DIM",
    "FeatureCache", "GraphFeatures", "build_meta_graph",
    "combine_meta_graphs", "encode_graph",
    "GraphRewriteEnv", "Observation", "StepResult",
    "RolloutBuffer", "Transition", "compute_gae",
    "ActionDecision", "PPOUpdater", "XRLflowAgent",
    "EpisodeRecord", "PPOTrainer", "TrainingHistory",
]
