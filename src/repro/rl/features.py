"""Feature encoding of computation graphs for the GNN agent.

Node attributes are a one-hot encoding of the operator type (the paper keeps
a table of ~40 operators); edge attributes are the tensor shape padded to
rank 4 and normalised by the constant ``M`` (4096 in the paper's Appendix A);
the global attribute is initialised to zero and refined by the learnable
global-update layer.

The *meta-graph* stacks the current graph and every candidate graph into one
:class:`~repro.nn.gnn.BatchedGraphs` so the whole state is encoded in a
single GNN forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..ir.graph import Graph
from ..ir.ops import num_op_types, op_index
from ..nn.gnn import BatchedGraphs

__all__ = ["GraphFeatures", "encode_graph", "build_meta_graph",
           "NODE_FEATURE_DIM", "EDGE_FEATURE_DIM", "GLOBAL_FEATURE_DIM"]

#: Edge-attribute normalisation constant (Appendix A of the paper).
DEFAULT_EDGE_NORM = 4096.0

NODE_FEATURE_DIM = num_op_types()
EDGE_FEATURE_DIM = 4
GLOBAL_FEATURE_DIM = 1


@dataclass
class GraphFeatures:
    """Feature arrays of a single graph."""

    node_features: np.ndarray  # [N, NODE_FEATURE_DIM]
    edge_features: np.ndarray  # [E, EDGE_FEATURE_DIM]
    edge_src: np.ndarray       # [E]
    edge_dst: np.ndarray       # [E]

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])


def encode_graph(graph: Graph, edge_norm: float = DEFAULT_EDGE_NORM) -> GraphFeatures:
    """Encode one computation graph into node/edge feature arrays."""
    order = graph.topological_order()
    index = {nid: i for i, nid in enumerate(order)}
    n = len(order)

    node_features = np.zeros((n, NODE_FEATURE_DIM))
    for nid, i in index.items():
        node_features[i, op_index(graph.nodes[nid].op_type)] = 1.0

    srcs: List[int] = []
    dsts: List[int] = []
    edge_feats: List[np.ndarray] = []
    for nid in order:
        for edge in graph.in_edges(nid):
            srcs.append(index[edge.src])
            dsts.append(index[edge.dst])
            spec = graph.nodes[edge.src].outputs[edge.src_slot]
            edge_feats.append(np.asarray(spec.shape.padded(4), dtype=np.float64) / edge_norm)
    if edge_feats:
        edge_features = np.stack(edge_feats)
        edge_src = np.asarray(srcs, dtype=np.int64)
        edge_dst = np.asarray(dsts, dtype=np.int64)
    else:
        edge_features = np.zeros((0, EDGE_FEATURE_DIM))
        edge_src = np.zeros(0, dtype=np.int64)
        edge_dst = np.zeros(0, dtype=np.int64)
    return GraphFeatures(node_features, edge_features, edge_src, edge_dst)


def build_meta_graph(graphs: Sequence[Graph],
                     edge_norm: float = DEFAULT_EDGE_NORM) -> BatchedGraphs:
    """Batch several graphs (current graph first, then candidates) together."""
    node_blocks, edge_blocks = [], []
    src_blocks, dst_blocks, graph_ids = [], [], []
    offset = 0
    for gid, graph in enumerate(graphs):
        feats = encode_graph(graph, edge_norm)
        node_blocks.append(feats.node_features)
        edge_blocks.append(feats.edge_features)
        src_blocks.append(feats.edge_src + offset)
        dst_blocks.append(feats.edge_dst + offset)
        graph_ids.append(np.full(feats.num_nodes, gid, dtype=np.int64))
        offset += feats.num_nodes
    return BatchedGraphs(
        node_features=np.concatenate(node_blocks, axis=0),
        edge_features=np.concatenate(edge_blocks, axis=0),
        edge_src=np.concatenate(src_blocks),
        edge_dst=np.concatenate(dst_blocks),
        graph_ids=np.concatenate(graph_ids),
        num_graphs=len(graphs),
        global_features=np.zeros((len(graphs), GLOBAL_FEATURE_DIM)),
    )
