"""Feature encoding of computation graphs for the GNN agent.

Node attributes are a one-hot encoding of the operator type (the paper keeps
a table of ~40 operators); edge attributes are the tensor shape padded to
rank 4 and normalised by the constant ``M`` (4096 in the paper's Appendix A);
the global attribute is initialised to zero and refined by the learnable
global-update layer.

The *meta-graph* stacks the current graph and every candidate graph into one
:class:`~repro.nn.gnn.BatchedGraphs` so the whole state is encoded in a
single GNN forward pass.

Encoding is the RL loop's hottest path — every environment step encodes the
current graph plus up to ``max_candidates`` candidate graphs — so it is
incremental on three levels:

* :func:`encode_graph` is vectorised (one-hot rows via fancy indexing, edge
  features assembled from per-node blocks, a single normalisation pass) and
  caches each node's incoming-edge block in the graph's own per-node memo
  table (:meth:`~repro.ir.graph.Graph.node_cache`).  Because ``Graph.copy``
  carries those tables over and every mutation invalidates exactly the
  affected nodes, a candidate produced by ``parent.copy()`` plus surgery
  re-derives *only* the rows its :class:`~repro.ir.graph.GraphDelta`
  touched — everything else is patched in from the parent's arrays.
* :class:`FeatureCache` memoises whole :class:`GraphFeatures` per structural
  hash, so re-visited graphs (the current graph was one of the previous
  step's candidates; rules re-propose similar rewrites every step) are free.
* :func:`build_meta_graph` assembles the batch from the cached blocks with
  pure array ops, and :func:`combine_meta_graphs` splices several
  observations into one batch for the batched PPO update.

The original per-edge Python-loop encoder is kept as the ``incremental=False``
reference path; the equivalence suite asserts both produce bit-for-bit
identical arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.lru import LRUCache
from ..ir.graph import Graph
from ..ir.ops import num_op_types, op_index
from ..nn.gnn import BatchedGraphs

__all__ = ["GraphFeatures", "FeatureCache", "encode_graph", "encode_order",
           "build_meta_graph", "LazyMetaGraph",
           "combine_meta_graphs", "NODE_FEATURE_DIM", "EDGE_FEATURE_DIM",
           "GLOBAL_FEATURE_DIM"]

#: Edge-attribute normalisation constant (Appendix A of the paper).
DEFAULT_EDGE_NORM = 4096.0

NODE_FEATURE_DIM = num_op_types()
EDGE_FEATURE_DIM = 4
GLOBAL_FEATURE_DIM = 1

#: Per-node cache key for incoming-edge blocks (see :func:`encode_graph`).
_EDGE_ROWS_KEY = "rl:edge_rows"

_EMPTY_SRC = np.zeros(0, dtype=np.int64)
_EMPTY_FEATS = np.zeros((0, EDGE_FEATURE_DIM))


@dataclass
class GraphFeatures:
    """Feature arrays of a single graph."""

    node_features: np.ndarray  # [N, NODE_FEATURE_DIM]
    edge_features: np.ndarray  # [E, EDGE_FEATURE_DIM]
    edge_src: np.ndarray       # [E]
    edge_dst: np.ndarray       # [E]

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_src.shape[0])


def encode_order(graph: Graph) -> np.ndarray:
    """The row order feature arrays use: live node ids, ascending.

    Any deterministic order works for the GNN — message passing treats rows
    symmetrically and per-graph pooling is bucketed — it only has to be
    *the same* order everywhere features, meta batches and the delta
    embedder meet.  Sorted ids win over the previous topological order
    because they are derived with two C-speed array ops instead of a
    Python Kahn traversal, which dominated per-candidate encoding cost.
    Memoised on the graph (dropped on mutation, carried across ``copy``).
    """
    return graph.memo("rl:order", lambda: np.sort(
        np.fromiter(graph.nodes.keys(), dtype=np.int64,
                    count=len(graph.nodes))))


def _encode_graph_reference(graph: Graph, edge_norm: float) -> GraphFeatures:
    """The original one-shot encoder: Python loops over every node and edge.

    Kept as the eager baseline for benchmarks and as the reference the
    incremental encoder is checked against bit-for-bit.
    """
    order = sorted(graph.nodes)
    index = {nid: i for i, nid in enumerate(order)}
    n = len(order)

    node_features = np.zeros((n, NODE_FEATURE_DIM))
    for nid, i in index.items():
        node_features[i, op_index(graph.nodes[nid].op_type)] = 1.0

    srcs: List[int] = []
    dsts: List[int] = []
    edge_feats: List[np.ndarray] = []
    for nid in order:
        for edge in graph.in_edges(nid):
            srcs.append(index[edge.src])
            dsts.append(index[edge.dst])
            spec = graph.nodes[edge.src].outputs[edge.src_slot]
            edge_feats.append(np.asarray(spec.shape.padded(4), dtype=np.float64) / edge_norm)
    if edge_feats:
        edge_features = np.stack(edge_feats)
        edge_src = np.asarray(srcs, dtype=np.int64)
        edge_dst = np.asarray(dsts, dtype=np.int64)
    else:
        edge_features = np.zeros((0, EDGE_FEATURE_DIM))
        edge_src = np.zeros(0, dtype=np.int64)
        edge_dst = np.zeros(0, dtype=np.int64)
    return GraphFeatures(node_features, edge_features, edge_src, edge_dst)


def encode_graph(graph: Graph, edge_norm: float = DEFAULT_EDGE_NORM,
                 incremental: bool = True) -> GraphFeatures:
    """Encode one computation graph into node/edge feature arrays.

    The incremental path (default) assembles everything with array ops and
    reuses per-node incoming-edge blocks cached on the graph itself: the
    block for node ``n`` is ``(src_ids, shape_rows)`` and lives in
    ``graph.node_cache("rl:edge_rows")``, which ``Graph.copy`` shares with
    rewrite candidates and every mutation invalidates per affected node.
    Encoding a candidate therefore only walks the nodes its mutation delta
    changed; the rest is sliced out of arrays the parent already built.

    ``incremental=False`` runs the original per-edge Python loop.  Both
    paths return bit-for-bit identical arrays.
    """
    if not incremental:
        return _encode_graph_reference(graph, edge_norm)

    order_arr = encode_order(graph)
    order = order_arr.tolist()
    n = len(order)
    nodes = graph.nodes

    # One-hot node rows via fancy indexing (no per-node Python writes): the
    # graph maintains an id-indexed op table incrementally across rewrites.
    node_features = np.zeros((n, NODE_FEATURE_DIM))
    node_features[np.arange(n), graph.op_index_table()[order_arr]] = 1.0

    # Incoming-edge blocks, cached per node and invalidated by mutation.
    rows = graph.node_cache(_EDGE_ROWS_KEY)
    rows_get = rows.get
    src_blocks: List[np.ndarray] = []
    feat_blocks: List[np.ndarray] = []
    dst_counts = np.zeros(n, dtype=np.int64)
    for i, nid in enumerate(order):
        block = rows_get(nid)
        if block is None:
            edges = graph.in_edges(nid)
            if edges:
                block = (
                    np.asarray([e.src for e in edges], dtype=np.int64),
                    np.asarray([nodes[e.src].outputs[e.src_slot].shape.padded(4)
                                for e in edges], dtype=np.float64),
                )
            else:
                block = (_EMPTY_SRC, _EMPTY_FEATS)
            rows[nid] = block
        srcs, feats = block
        if srcs.shape[0]:
            src_blocks.append(srcs)
            feat_blocks.append(feats)
            dst_counts[i] = srcs.shape[0]

    if src_blocks:
        # Node-id -> row-position lookup as a dense array (ids are
        # monotonic, so `id_bound` bounds the table size).
        position = np.empty(graph.id_bound, dtype=np.int64)
        position[order_arr] = np.arange(n, dtype=np.int64)
        edge_src = position[np.concatenate(src_blocks)]
        edge_dst = np.repeat(np.arange(n, dtype=np.int64), dst_counts)
        edge_features = np.concatenate(feat_blocks) / edge_norm
    else:
        edge_features = np.zeros((0, EDGE_FEATURE_DIM))
        edge_src = np.zeros(0, dtype=np.int64)
        edge_dst = np.zeros(0, dtype=np.int64)
    return GraphFeatures(node_features, edge_features, edge_src, edge_dst)


class FeatureCache:
    """LRU cache of :class:`GraphFeatures` keyed on the structural hash.

    The environment sees the same graphs over and over: the current graph
    was one of the previous step's candidates, rules re-propose rewrites of
    unchanged regions, and evaluation episodes retrace training ones.  The
    hash identifies graphs up to node-id relabelling, so all of those are
    hits.  Feature arrays are immutable once built — callers must not write
    to the returned arrays.
    """

    def __init__(self, max_entries: int = 1024,
                 edge_norm: float = DEFAULT_EDGE_NORM):
        self.max_entries = int(max_entries)
        self.edge_norm = float(edge_norm)
        self._entries = LRUCache(max_entries, name="feature")
        #: Hits served by the graph's own whole-graph memo (tier one);
        #: the LRU tracks its own hits/misses (tier two).
        self._memo_hits = 0
        #: Encodes of graphs with no memoised hash: they never consult the
        #: LRU, so its miss counter does not see them.
        self._keyless_misses = 0

    def encode(self, graph: Graph) -> GraphFeatures:
        """Encode ``graph``, reusing the cached arrays when seen before.

        Three tiers, cheapest first:

        * repeat encodes of the *same object* return the graph's own
          whole-graph memo (a dict lookup, no hashing);
        * graphs whose structural hash is *already memoised* — the current
          graph of every environment step, re-visited states — share one
          entry per structure in the LRU;
        * everything else (freshly materialised candidates) is delta-encoded
          directly.  Hashing a candidate costs several times more than
          patching its arrays from the parent's cached blocks, so the hash
          tier is only consulted when the hash comes for free.
        """
        memo_key = ("rl:features", self.edge_norm)
        feats = graph.memo_peek(memo_key)
        if feats is not None:
            self._memo_hits += 1
            return feats
        return graph.memo(memo_key, lambda: self._encode_uncached(graph))

    def _encode_uncached(self, graph: Graph) -> GraphFeatures:
        # "hash" is the memo key Graph.structural_hash() itself uses.
        key = graph.memo_peek("hash")
        if key is not None:
            feats = self._entries.get(key)
            if feats is not None:
                return feats
        else:
            self._keyless_misses += 1
        feats = encode_graph(graph, self.edge_norm)
        if key is not None:
            self._entries.put(key, feats)
        return feats

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._memo_hits + self._entries.hits

    @property
    def misses(self) -> int:
        return self._entries.misses + self._keyless_misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters for benchmark / service reporting."""
        return {"hits": float(self.hits), "misses": float(self.misses),
                "hit_rate": self.hit_rate, "entries": float(len(self._entries)),
                "evictions": float(self._entries.evictions)}

    def clear(self) -> None:
        self._entries.clear()
        self._entries.reset_stats()
        self._memo_hits = 0
        self._keyless_misses = 0


def build_meta_graph(graphs: Sequence[Graph],
                     edge_norm: float = DEFAULT_EDGE_NORM,
                     cache: Optional[FeatureCache] = None,
                     incremental: bool = True) -> BatchedGraphs:
    """Batch several graphs (current graph first, then candidates) together.

    With a :class:`FeatureCache` the per-graph arrays come straight from the
    cache (``cache.edge_norm`` applies); assembly is pure concatenation.
    """
    if cache is not None:
        feats_list = [cache.encode(g) for g in graphs]
    else:
        feats_list = [encode_graph(g, edge_norm, incremental=incremental)
                      for g in graphs]
    counts = np.asarray([f.num_nodes for f in feats_list], dtype=np.int64)
    offsets = np.zeros(len(feats_list), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return BatchedGraphs(
        node_features=np.concatenate([f.node_features for f in feats_list],
                                     axis=0),
        edge_features=np.concatenate([f.edge_features for f in feats_list],
                                     axis=0),
        edge_src=np.concatenate([f.edge_src + off
                                 for f, off in zip(feats_list, offsets)]),
        edge_dst=np.concatenate([f.edge_dst + off
                                 for f, off in zip(feats_list, offsets)]),
        graph_ids=np.repeat(np.arange(len(feats_list), dtype=np.int64), counts),
        num_graphs=len(feats_list),
        global_features=np.zeros((len(feats_list), GLOBAL_FEATURE_DIM)),
    )


class LazyMetaGraph:
    """A :class:`BatchedGraphs` that assembles itself on first use.

    On the incremental path the rollout loop never reads the meta batch:
    action selection runs through the delta embedder
    (:class:`~repro.rl.embed.IncrementalEmbedder`), which works off
    per-graph structure.  Materialising the batch eagerly would encode
    every candidate each step just in case — the single largest cost on
    small graphs.  This proxy defers :func:`build_meta_graph` until some
    consumer (PPO's batched update, a gradient forward, verify mode)
    actually touches an attribute, then memoises the result for the
    observation's lifetime, so training epochs still pay for assembly only
    once per observation.
    """

    __slots__ = ("_graphs", "_cache", "_built")

    def __init__(self, graphs: Sequence[Graph],
                 cache: Optional[FeatureCache] = None):
        self._graphs = list(graphs)
        self._cache = cache
        self._built: Optional[BatchedGraphs] = None

    def materialise(self) -> BatchedGraphs:
        if self._built is None:
            self._built = build_meta_graph(self._graphs, cache=self._cache)
        return self._built

    @property
    def is_materialised(self) -> bool:
        return self._built is not None

    def __getattr__(self, name):
        return getattr(self.materialise(), name)


def combine_meta_graphs(batches: Sequence[BatchedGraphs]
                        ) -> Tuple[BatchedGraphs, np.ndarray]:
    """Splice several meta-graphs into one batch for a single GNN forward.

    Returns the combined batch plus, for each input batch, the index of its
    first graph in the combined graph numbering (so callers can recover
    which embedding rows belong to which observation).
    """
    node_offset = 0
    graph_offset = 0
    graph_offsets = np.zeros(len(batches), dtype=np.int64)
    node_blocks, edge_blocks, src_blocks, dst_blocks, gid_blocks = \
        [], [], [], [], []
    global_blocks = []
    for i, batch in enumerate(batches):
        graph_offsets[i] = graph_offset
        node_blocks.append(batch.node_features)
        edge_blocks.append(batch.edge_features)
        src_blocks.append(batch.edge_src + node_offset)
        dst_blocks.append(batch.edge_dst + node_offset)
        gid_blocks.append(batch.graph_ids + graph_offset)
        global_blocks.append(batch.global_features)
        node_offset += batch.num_nodes
        graph_offset += batch.num_graphs
    combined = BatchedGraphs(
        node_features=np.concatenate(node_blocks, axis=0),
        edge_features=np.concatenate(edge_blocks, axis=0),
        edge_src=np.concatenate(src_blocks),
        edge_dst=np.concatenate(dst_blocks),
        graph_ids=np.concatenate(gid_blocks),
        num_graphs=graph_offset,
        global_features=np.concatenate(global_blocks, axis=0),
    )
    return combined, graph_offsets
