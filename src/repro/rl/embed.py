"""Incremental (delta) GNN forward for rollout action selection.

Every environment step encodes a meta-graph of ~25 graphs that differ from
the previous step's by a handful of nodes each: a candidate is its parent
plus one rewrite.  The full encoder nevertheless re-runs message passing
over every node of every graph.  This module caches the per-node
activations of each message-passing layer *per graph* and, for a graph
produced by ``parent.copy()`` + surgery, recomputes only the nodes the
rewrite can have influenced, splicing the parent's cached rows for the
rest.  The delta pass reads the rewrite's influence cone straight off the
graph structure — the per-node incoming-edge blocks
:func:`~repro.rl.features.encode_graph` caches on the graph plus the
copy-on-write adjacency — so a rollout never materialises a graph's full
feature arrays, let alone the meta batch (see
:class:`~repro.rl.features.LazyMetaGraph`).  All candidates of one
observation are recomputed in a single batched pass: their influence cones
are concatenated so each layer costs one set of array ops, not one per
graph.

Bit-for-bit equivalence with :class:`~repro.nn.gnn.GraphEmbeddingNetwork`
(not merely "close") is a hard requirement — the float64 fast path must
retrace the eager baseline action-for-action.  It holds because every
kernel in the full forward is *row-consistent*: the value a row gets does
not depend on which other rows are present.

* GEMMs (``[M, K] @ [K, N]``) compute independent dot products per output
  row for every ``M >= 2``; only the ``M = 1`` gemv kernel accumulates
  differently, so single-row products are padded to two (`_rows_matmul`).
* Attention scores are ``(h * a).sum(axis=1)`` — a per-row reduction —
  rather than the matvec ``h @ a`` (see the note in
  :class:`~repro.nn.gnn.GATLayer`).
* Segment kernels (:func:`~repro.nn.tensor._scatter_add_rows`,
  :func:`~repro.nn.tensor.segment_max`) accumulate per destination bucket
  in edge order, and each destination's edges form one contiguous cached
  block — computing a subset of destinations from their full blocks
  preserves each bucket's accumulation sequence exactly.  The same
  argument covers the per-graph pooling of the readout: a graph's rows
  are contiguous in the meta batch, so its pooled sum accumulates the
  same values in the same order whether or not other graphs ride along
  (which lets the embedder cache each graph's pooled vector).

A node is *dirty* when the rewrite changed its own inputs: the delta's
``added`` and ``rewired`` sets (``remove_node`` marks surviving consumers
rewired, and rewrites never mutate a node's output specs after insertion,
so a node outside these sets has an identical feature row and in-edge
block).  Influence spreads one hop downstream per GAT layer, so the
*cone* — the dirty set spread ``num_gat_layers`` times along out-edges —
covers every row any layer can change.  The delta pass recomputes all
cone rows at every layer.  Recomputing a still-clean row is wasted work
but never wrong: its inputs are correct spliced rows, and row-consistent
kernels give it exactly the value the full forward would.  When the cone
exceeds half the graph the delta pass would not pay for itself and the
graph is re-embedded in full.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.lru import LRUCache
from ..ir.graph import Graph, NodeId
from ..nn.gnn import GraphEmbeddingNetwork
from ..nn.tensor import (_scatter_add_rows, get_default_dtype, no_grad,
                         segment_max)
from .features import (DEFAULT_EDGE_NORM, EDGE_FEATURE_DIM,
                       GLOBAL_FEATURE_DIM, NODE_FEATURE_DIM, _EDGE_ROWS_KEY,
                       GraphFeatures, encode_graph, encode_order)

__all__ = ["IncrementalEmbedder"]

_EMPTY_SRC = np.zeros(0, dtype=np.int64)
_EMPTY_FEATS = np.zeros((0, EDGE_FEATURE_DIM))
_EMPTY_POS = np.zeros(0, dtype=np.int64)


class _State:
    """One cached forward: per-layer activation matrices plus the node
    order they are row-indexed by, and the graph's pooled readout input.

    The graph reference is strong on purpose: states are keyed by
    ``id(graph)`` and pinning the graph keeps the id from being recycled.
    """

    __slots__ = ("graph", "layers", "order", "position", "pooled")

    def __init__(self, graph: Graph, layers: List[np.ndarray],
                 order: np.ndarray, position: np.ndarray):
        self.graph = graph
        self.layers = layers      # [h_0 .. h_K], each [n, H]
        self.order = order        # [n] node ids, ascending (encode order)
        self.position = position  # dense id -> row table (garbage for dead ids)
        self.pooled: Optional[np.ndarray] = None  # [1, H] readout pool


class _Cone:
    """Per-graph scratch of one batched delta pass (see ``_delta_states``)."""

    __slots__ = ("graph", "parent", "order", "position", "mapped",
                 "cone_pos", "cone_ids", "edge_src_pos", "counts",
                 "transform_pos", "cone_local", "edge_src_local", "segments",
                 "edge_feats", "state")

    def __init__(self):
        self.state: Optional[_State] = None


class IncrementalEmbedder:
    """Delta-aware replacement for the encoder's rollout forward.

    ``embed(observation)`` returns exactly what
    ``encoder(observation.meta_graph)`` would — as a plain ndarray, with
    no autograd tape — while reusing cached per-layer activations of each
    graph's ``delta_parent()``.  States become stale the moment the
    encoder weights move: call :meth:`invalidate` (the agent does so from
    ``invalidate_decision_cache``).

    Parameters
    ----------
    encoder:
        The GNN whose forward is being replicated; weights are read fresh
        on every call.
    edge_norm:
        Must match the environment's feature encoding (it shares the
        per-graph feature memo and per-node edge blocks with
        :class:`~repro.rl.features.FeatureCache`).
    capacity:
        Graph states kept (LRU).  Each state pins its graph plus
        ``num_layers + 1`` activation matrices.
    verify:
        When True every :meth:`embed` also runs the full encoder and
        asserts equivalence — the benchmark/equivalence gate.
    """

    def __init__(self, encoder: GraphEmbeddingNetwork,
                 edge_norm: float = DEFAULT_EDGE_NORM,
                 capacity: int = 128,
                 verify: bool = False):
        self.encoder = encoder
        self.edge_norm = float(edge_norm)
        self.verify = bool(verify)
        self._states: LRUCache = LRUCache(max_entries=capacity,
                                          name="embed_state")
        #: ``graph_ids`` arrays per node-count profile: a stable identity
        #: lets the scatter kernel's flat-index memo hit across steps.
        self._graph_ids: LRUCache = LRUCache(max_entries=64)
        #: Diagnostics: graphs embedded via the delta pass, via a full
        #: per-graph pass, delta passes abandoned (cone > n/2), and
        #: verify-mode equivalence checks.
        self.delta_forwards = 0
        self.full_forwards = 0
        self.fallback_fulls = 0
        self.equivalence_checks = 0

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached activations (call whenever weights change)."""
        self._states.clear()

    def stats(self) -> Dict[str, float]:
        payload = self._states.stats()
        payload["embed_delta_forwards"] = float(self.delta_forwards)
        payload["embed_full_forwards"] = float(self.full_forwards)
        payload["embed_fallback_fulls"] = float(self.fallback_fulls)
        payload["embed_equivalence_checks"] = float(self.equivalence_checks)
        return payload

    # ------------------------------------------------------------------
    def embed(self, observation) -> np.ndarray:
        """``[num_graphs, embedding_dim]`` — the encoder's output, exactly."""
        dtype = np.dtype(get_default_dtype())
        weights = self._weights()
        graphs = observation.graphs
        states: List[Optional[_State]] = [None] * len(graphs)
        pending: List[Tuple[int, Graph, _State]] = []
        for i, graph in enumerate(graphs):
            key = (id(graph), dtype.str)
            state = self._states.get(key)
            if state is not None and state.graph is graph:
                states[i] = state
                continue
            parent = graph.delta_parent()
            if parent is not None:
                parent_state = self._states.get((id(parent), dtype.str))
                if parent_state is not None and parent_state.graph is parent:
                    pending.append((i, graph, parent_state))
                    continue
            states[i] = self._full_state(graph, dtype, weights)
            self.full_forwards += 1
            self._states.put(key, states[i])

        if pending:
            for (i, graph, _), state in zip(
                    pending, self._delta_states(pending, dtype, weights)):
                if state is None:
                    state = self._full_state(graph, dtype, weights)
                    self.fallback_fulls += 1
                else:
                    self.delta_forwards += 1
                states[i] = state
                self._states.put((id(graph), dtype.str), state)

        # GlobalUpdateLayer, replicated at the meta level from per-graph
        # pooled sums (cached on each state; bit-equal to pooling the
        # spliced batch because bincount buckets accumulate per graph).
        _, _, _, weight_g, bias_g = weights
        num_graphs = len(states)
        pooled_rows = []
        counts = np.zeros(num_graphs, dtype=np.float64)
        for i, state in enumerate(states):
            if state.pooled is None:
                n = state.layers[-1].shape[0]
                state.pooled = _scatter_add_rows(
                    state.layers[-1], self._zero_ids(n), 1)
            pooled_rows.append(state.pooled)
            counts[i] = state.layers[-1].shape[0]
        pooled = np.concatenate(pooled_rows, axis=0) \
            if num_graphs > 1 else pooled_rows[0]
        norm = np.maximum(counts, 1.0).reshape(-1, 1)
        pooled = pooled * (1.0 / norm).astype(dtype, copy=False)
        global_feats = np.zeros((num_graphs, GLOBAL_FEATURE_DIM), dtype=dtype)
        combined = np.concatenate([pooled, global_feats], axis=1)
        # Plain matmul on purpose: the full path's readout GEMM has the same
        # ``[G, ...]`` shape, so the kernels already agree row for row.
        out = np.tanh(combined @ weight_g + bias_g)

        if self.verify:
            self.equivalence_checks += 1
            with no_grad():
                expected = self.encoder(observation.meta_graph).data
            if dtype == np.float64:
                same = np.array_equal(out, expected)
            else:
                same = np.allclose(out, expected, rtol=1e-4, atol=1e-6)
            if not same:
                raise AssertionError(
                    "incremental GNN forward diverged from the full encoder")
        return out

    # ------------------------------------------------------------------
    def _zero_ids(self, count: int) -> np.ndarray:
        """All-zero segment ids of length ``count`` with stable identity
        (keeps the scatter kernel's flat-index memo warm)."""
        ids = self._graph_ids.get(count)
        if ids is None:
            ids = np.zeros(count, dtype=np.int64)
            self._graph_ids.put(count, ids)
        return ids

    def _weights(self):
        enc = self.encoder
        node = enc.node_update.linear
        gat = [(layer.transform.weight.data, layer.transform.bias.data,
                layer.attn_src.data.reshape(1, -1),
                layer.attn_dst.data.reshape(1, -1))
               for layer in enc.gat_layers]
        readout = enc.global_update.linear
        return (node.weight.data, node.bias.data, gat,
                readout.weight.data, readout.bias.data)

    # ------------------------------------------------------------------
    def _full_state(self, graph: Graph, dtype: np.dtype, weights) -> _State:
        """All layers of one graph from scratch (raw-ndarray replica).

        Runs off the same memoised :class:`GraphFeatures` the environment
        encodes, so the initial graph of an episode costs one dict lookup
        plus the layer arithmetic.
        """
        feats: GraphFeatures = graph.memo(
            ("rl:features", self.edge_norm),
            lambda: encode_graph(graph, self.edge_norm))
        weight_0, bias_0, gat, _, _ = weights
        x = feats.node_features.astype(dtype, copy=False)
        n = x.shape[0]
        edge_feats = feats.edge_features.astype(dtype, copy=False)

        incoming = _scatter_add_rows(edge_feats, feats.edge_dst, n)
        h = _rows_matmul(np.concatenate([incoming, x], axis=1),
                         weight_0) + bias_0
        h = h * (h > 0)
        layers = [h]
        for weight_l, bias_l, attn_src, attn_dst in gat:
            prev = layers[-1]
            h = _rows_matmul(prev, weight_l) + bias_l
            src_scores = (h * attn_src).sum(axis=1, keepdims=True)
            dst_scores = (h * attn_dst).sum(axis=1, keepdims=True)
            logits = src_scores[feats.edge_src] + dst_scores[feats.edge_dst]
            logits = np.where(logits > 0, logits, 0.2 * logits)
            alpha = _segment_softmax(logits, feats.edge_dst, n)
            aggregated = _scatter_add_rows(h[feats.edge_src] * alpha,
                                           feats.edge_dst, n)
            aggregated = aggregated * (aggregated > 0)
            layers.append((prev + aggregated) * 0.5)

        order = encode_order(graph)
        position = np.empty(graph.id_bound, dtype=np.int64)
        position[order] = np.arange(n, dtype=np.int64)
        return _State(graph, layers, order, position)

    # ------------------------------------------------------------------
    def _block(self, graph: Graph, cache: Dict[NodeId, tuple],
               nid) -> tuple:
        """Node ``nid``'s incoming-edge block ``(src_ids, shape_rows)``.

        Shares (and warms) the per-node cache :func:`encode_graph` uses, so
        block values — and therefore per-bucket accumulation sequences —
        are identical between the delta pass and a full encode.
        """
        block = cache.get(nid)
        if block is None:
            edges = graph.in_edges(nid)
            if edges:
                nodes = graph.nodes
                block = (
                    np.asarray([e.src for e in edges], dtype=np.int64),
                    np.asarray([nodes[e.src].outputs[e.src_slot]
                                .shape.padded(4) for e in edges],
                               dtype=np.float64),
                )
            else:
                block = (_EMPTY_SRC, _EMPTY_FEATS)
            cache[nid] = block
        return block

    def _delta_states(self, pending: List[Tuple[int, Graph, _State]],
                      dtype: np.dtype, weights
                      ) -> List[Optional[_State]]:
        """Batched delta pass over every pending graph of one observation.

        Works entirely from graph structure (delta sets, cached per-node
        edge blocks, copy-on-write adjacency): no graph's full feature
        arrays are touched, which is what lets the rollout path skip
        candidate encoding altogether.  All cones are concatenated so each
        layer is one set of array ops regardless of how many candidates
        the step produced.  A ``None`` entry means "cone too large, do
        that graph in full".
        """
        weight_0, bias_0, gat, _, _ = weights
        num_layers = len(gat)
        cones: List[Optional[_Cone]] = []
        batched: List[_Cone] = []
        for _, graph, parent in pending:
            cone = self._prepare_cone(graph, parent, num_layers)
            cones.append(cone)
            if cone is not None and cone.state is None:
                batched.append(cone)

        if batched:
            # Concatenated index arrays with per-cone row offsets.
            t_offsets = np.zeros(len(batched), dtype=np.int64)
            f_offsets = np.zeros(len(batched), dtype=np.int64)
            t_total = f_total = 0
            for j, cone in enumerate(batched):
                t_offsets[j] = t_total
                f_offsets[j] = f_total
                t_total += cone.transform_pos.shape[0]
                f_total += cone.cone_pos.shape[0]
            edge_src = np.concatenate(
                [c.edge_src_local + t_offsets[j]
                 for j, c in enumerate(batched)])
            segments = np.concatenate(
                [c.segments + f_offsets[j] for j, c in enumerate(batched)])
            cone_local = np.concatenate(
                [c.cone_local + t_offsets[j] for j, c in enumerate(batched)])
            edge_feats = np.concatenate([c.edge_feats for c in batched]) \
                .astype(dtype, copy=False)
            op_indices = np.concatenate(
                [c.graph.op_index_table()[c.cone_ids] for c in batched])

            # Layer 0 (node update) over every cone row.
            incoming = _scatter_add_rows(edge_feats, segments, f_total)
            x = np.zeros((f_total, NODE_FEATURE_DIM))
            x[np.arange(f_total), op_indices] = 1.0
            h = _rows_matmul(
                np.concatenate([incoming, x.astype(dtype, copy=False)],
                               axis=1), weight_0) + bias_0
            h = h * (h > 0)
            for j, cone in enumerate(batched):
                rows = cone.parent.layers[0][cone.mapped]
                rows[cone.cone_pos] = \
                    h[f_offsets[j]:f_offsets[j] + cone.cone_pos.shape[0]]
                cone.state = _State(cone.graph, [rows], cone.order,
                                    cone.position)

            for layer_index, (weight_l, bias_l, attn_src, attn_dst) \
                    in enumerate(gat):
                transformed = np.concatenate(
                    [c.state.layers[-1][c.transform_pos] for c in batched])
                h = _rows_matmul(transformed, weight_l) + bias_l
                src_scores = (h * attn_src).sum(axis=1, keepdims=True)
                dst_scores = (h * attn_dst).sum(axis=1, keepdims=True)
                logits = src_scores[edge_src] + dst_scores[cone_local][segments]
                logits = np.where(logits > 0, logits, 0.2 * logits)
                alpha = _segment_softmax(logits, segments, f_total)
                aggregated = _scatter_add_rows(h[edge_src] * alpha,
                                               segments, f_total)
                aggregated = aggregated * (aggregated > 0)
                new_rows = (transformed[cone_local] + aggregated) * 0.5
                for j, cone in enumerate(batched):
                    rows = cone.parent.layers[layer_index + 1][cone.mapped]
                    rows[cone.cone_pos] = new_rows[
                        f_offsets[j]:f_offsets[j] + cone.cone_pos.shape[0]]
                    cone.state.layers.append(rows)

        return [None if cone is None else cone.state for cone in cones]

    def _prepare_cone(self, graph: Graph, parent: _State,
                      num_layers: int) -> Optional[_Cone]:
        """Structure scratch for one graph's delta, or ``None`` (too big).

        A cone whose dirty set is empty needs no recomputation at all —
        its state is pure row splicing and is finished right here
        (``cone.state`` set, excluded from the batch).
        """
        delta = graph.mutation_delta()
        nodes = graph.nodes
        dirty: Set[NodeId] = {nid for nid in delta.added | delta.rewired
                              if nid in nodes}
        spread = set(dirty)
        out_edges = graph._out_edges
        for _ in range(num_layers):
            grown = set(spread)
            for nid in spread:
                for edge in out_edges[nid]:
                    grown.add(edge.dst)
            if len(grown) == len(spread):
                break
            spread = grown

        order = encode_order(graph)
        n = order.shape[0]
        if 2 * len(spread) > n:
            return None
        position = np.empty(graph.id_bound, dtype=np.int64)
        position[order] = np.arange(n, dtype=np.int64)

        # Row mapping into the parent's arrays (ids are monotonic: a child
        # id below the parent's bound existed in the parent).
        bound = parent.position.shape[0]
        cone = _Cone()
        cone.graph = graph
        cone.parent = parent
        cone.order = order
        cone.position = position
        if delta.removed or dirty:
            mapped = np.zeros(n, dtype=np.int64)
            in_parent = order < bound
            mapped[in_parent] = parent.position[order[in_parent]]
            # Rows for added nodes stay 0 — recomputed (added ⊆ dirty).
            cone.mapped = mapped
        else:
            # No structural change at all: share the parent's rows.
            cone.state = _State(graph, list(parent.layers), order, position)
            return cone

        if not dirty:
            # Pure removal: every surviving row is unchanged — splice only.
            cone.state = _State(
                graph, [rows[mapped] for rows in parent.layers],
                order, position)
            return cone

        cone.cone_pos = np.sort(position[np.fromiter(
            spread, dtype=np.int64, count=len(spread))])
        cone.cone_ids = order[cone.cone_pos]
        blocks = graph.node_cache(_EDGE_ROWS_KEY)
        src_blocks: List[np.ndarray] = []
        feat_blocks: List[np.ndarray] = []
        counts = np.zeros(cone.cone_pos.shape[0], dtype=np.int64)
        for i, nid in enumerate(cone.cone_ids.tolist()):
            srcs, feats = self._block(graph, blocks, nid)
            if srcs.shape[0]:
                src_blocks.append(srcs)
                feat_blocks.append(feats)
                counts[i] = srcs.shape[0]
        if src_blocks:
            cone.edge_src_pos = position[np.concatenate(src_blocks)]
            cone.edge_feats = np.concatenate(feat_blocks) / self.edge_norm
        else:
            cone.edge_src_pos = _EMPTY_POS
            cone.edge_feats = _EMPTY_FEATS
        cone.counts = counts
        cone.segments = np.repeat(
            np.arange(counts.shape[0], dtype=np.int64), counts)
        cone.transform_pos = np.unique(
            np.concatenate([cone.cone_pos, cone.edge_src_pos]))
        local = np.empty(n, dtype=np.int64)
        local[cone.transform_pos] = np.arange(
            cone.transform_pos.shape[0], dtype=np.int64)
        cone.cone_local = local[cone.cone_pos]
        cone.edge_src_local = local[cone.edge_src_pos]
        return cone


# ----------------------------------------------------------------------
def _rows_matmul(rows: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``rows @ weight`` with single rows padded to the ``M >= 2`` kernel.

    BLAS dispatches gemv for one-row products, whose accumulation order
    differs from the per-row dot products of gemm — the only shape where a
    row's value depends on how many rows ride along.  Duplicating the row
    (and discarding the copy) restores row consistency.
    """
    if rows.shape[0] == 1:
        return (np.concatenate([rows, rows], axis=0) @ weight)[:1]
    return rows @ weight


def _segment_softmax(logits: np.ndarray, segment_ids: np.ndarray,
                     num_segments: int) -> np.ndarray:
    """Raw-ndarray replica of :func:`~repro.nn.tensor.segment_softmax`."""
    maxes = segment_max(logits, segment_ids, num_segments)
    shifted = logits - maxes[segment_ids]
    exp = np.exp(shifted)
    denom = _scatter_add_rows(exp, segment_ids, num_segments)
    return exp / (denom[segment_ids] + 1e-12)
