"""Rollout storage and generalised advantage estimation (GAE)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .env import Observation

__all__ = ["Transition", "RolloutBuffer", "compute_gae"]


@dataclass
class Transition:
    """One environment step as stored for the PPO update."""

    observation: Observation
    action: int
    log_prob: float
    value: float
    reward: float
    done: bool


def compute_gae(rewards: np.ndarray, values: np.ndarray, dones: np.ndarray,
                gamma: float = 0.99, lam: float = 0.95,
                last_value: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
    """Generalised advantage estimation (Schulman et al., 2015).

    Returns ``(advantages, returns)`` with the same length as ``rewards``.
    ``dones[t]`` marks that the episode ended *at* step ``t`` so no value
    bootstrapping happens across the boundary.
    """
    n = len(rewards)
    advantages = np.zeros(n)
    gae = 0.0
    for t in reversed(range(n)):
        next_value = last_value if t == n - 1 else values[t + 1]
        non_terminal = 0.0 if dones[t] else 1.0
        delta = rewards[t] + gamma * next_value * non_terminal - values[t]
        gae = delta + gamma * lam * non_terminal * gae
        advantages[t] = gae
    returns = advantages + values
    return advantages, returns


class RolloutBuffer:
    """Accumulates transitions over one or more episodes."""

    def __init__(self, gamma: float = 0.99, lam: float = 0.95):
        self.gamma = float(gamma)
        self.lam = float(lam)
        self.transitions: List[Transition] = []

    def add(self, transition: Transition) -> None:
        self.transitions.append(transition)

    def __len__(self) -> int:
        return len(self.transitions)

    def clear(self) -> None:
        self.transitions = []

    # ------------------------------------------------------------------
    def finalise(self) -> Tuple[np.ndarray, np.ndarray]:
        """Compute advantages/returns for everything stored so far."""
        rewards = np.asarray([t.reward for t in self.transitions])
        values = np.asarray([t.value for t in self.transitions])
        dones = np.asarray([t.done for t in self.transitions], dtype=bool)
        advantages, returns = compute_gae(rewards, values, dones,
                                          self.gamma, self.lam)
        if len(advantages) > 1 and advantages.std() > 1e-8:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        return advantages, returns

    def minibatches(self, batch_size: int, rng: np.random.Generator):
        """Yield index arrays of up to ``batch_size`` transitions each."""
        indices = rng.permutation(len(self.transitions))
        for start in range(0, len(indices), batch_size):
            yield indices[start:start + batch_size]

    def gather(self, indices: np.ndarray
               ) -> Tuple[List[Observation], np.ndarray, np.ndarray]:
        """Observations, actions and stored log-probs for one minibatch.

        The arrays feed :meth:`XRLflowAgent.evaluate_actions_batch` — one
        call per minibatch instead of one forward per transition.
        """
        transitions = self.transitions
        observations = [transitions[i].observation for i in indices]
        actions = np.asarray([transitions[i].action for i in indices],
                             dtype=np.int64)
        log_probs = np.asarray([transitions[i].log_prob for i in indices])
        return observations, actions, log_probs
