"""Gym-style environment wrapping the tensor-graph transformation process.

The environment owns the current computation graph.  At every step it asks
the rewrite substrate for all applicable candidates, exposes them (padded to
a fixed action-space size plus a final No-Op action) as the observation, and
applies the candidate selected by the agent.  The reward follows Eq. 2 of the
paper: the end-to-end latency improvement relative to the initial latency,
measured every ``feedback_interval`` steps (a small constant reward is paid
on the intermediate steps to keep the agent exploring).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.lru import LRUCache
from ..cost.cost_model import CostModel
from ..cost.e2e import E2ESimulator
from ..ir.graph import Graph
from ..rules.base import Candidate, RuleSet
from ..rules.incremental import IncrementalCandidateEngine
from ..rules.rulesets import default_ruleset
from ..nn.gnn import BatchedGraphs
from .features import FeatureCache, LazyMetaGraph, build_meta_graph

__all__ = ["Observation", "StepResult", "GraphRewriteEnv"]

#: Signature of a user-registered reward callback:
#: ``f(previous_latency, current_latency, initial_latency) -> reward``.
RewardFn = Callable[[float, float, float], float]


def default_reward(previous_ms: float, current_ms: float, initial_ms: float) -> float:
    """Eq. 2: percentage latency improvement relative to the initial graph."""
    if initial_ms <= 0:
        return 0.0
    return (previous_ms - current_ms) / initial_ms * 100.0


@dataclass
class Observation:
    """What the agent sees at each step."""

    #: Current graph followed by each candidate graph, batched for the GNN.
    meta_graph: BatchedGraphs
    #: Boolean mask over the padded action space (size ``max_candidates + 1``).
    #: The final entry is the always-valid No-Op action.
    action_mask: np.ndarray
    #: The candidates backing each valid action index.
    candidates: List[Candidate] = field(default_factory=list)
    #: The graphs behind the meta-graph rows (current graph first), in
    #: meta-graph order.  Set on the incremental path only; it lets the
    #: agent's :class:`~repro.rl.embed.IncrementalEmbedder` re-embed just
    #: each graph's delta instead of running the encoder over the batch.
    graphs: Optional[List[Graph]] = None

    @property
    def num_actions(self) -> int:
        return int(self.action_mask.shape[0])

    @property
    def noop_index(self) -> int:
        return self.num_actions - 1


@dataclass
class StepResult:
    observation: Observation
    reward: float
    done: bool
    info: Dict[str, float] = field(default_factory=dict)


class GraphRewriteEnv:
    """Environment for one target DNN's transformation process."""

    def __init__(self, graph: Graph,
                 ruleset: Optional[RuleSet] = None,
                 e2e: Optional[E2ESimulator] = None,
                 feedback_interval: int = 5,
                 step_reward: float = 0.1,
                 max_candidates: int = 48,
                 max_steps: int = 50,
                 reward_fn: Optional[RewardFn] = None,
                 seed: int = 0,
                 progress_callback: Optional[
                     Callable[[int, float, str], None]] = None,
                 incremental: bool = True,
                 feature_cache: Optional[FeatureCache] = None,
                 max_cached_observations: int = 512,
                 cost_source: str = "simulated",
                 executor: Optional[object] = None,
                 pool: Optional[object] = None):
        self.initial_graph = graph
        self.ruleset = ruleset or default_ruleset()
        self.e2e = e2e or E2ESimulator(seed=seed)
        #: ``cost_source="measured"`` swaps the reward signal from the
        #: analytic simulator to executed numpy wall-clock (see
        #: ``docs/rl.md``): every ``latency_ms`` the reward path asks for
        #: is then a real measurement.  Rewards become host-noise-coupled,
        #: which is exactly the trade-off hardware-in-the-loop RL makes.
        self.cost_source = str(cost_source)
        if self.cost_source == "measured":
            from ..exec import MeasuredLatency, NumpyExecutor
            self.e2e = (executor if hasattr(executor, "latency_ms")
                        else MeasuredLatency(executor or NumpyExecutor()))
        elif self.cost_source != "simulated":
            raise ValueError(f"unknown cost_source {cost_source!r} "
                             f"(use 'simulated' or 'measured')")
        self.feedback_interval = int(feedback_interval)
        self.step_reward = float(step_reward)
        self.max_candidates = int(max_candidates)
        self.max_steps = int(max_steps)
        self.reward_fn = reward_fn or default_reward
        #: ``incremental=False`` re-encodes every observation from scratch
        #: with the reference encoder (the eager baseline for benchmarks);
        #: the default routes all encoding through a structural-hash-keyed
        #: :class:`~repro.rl.features.FeatureCache` plus delta-patched
        #: per-node blocks.
        self.incremental = bool(incremental)
        if feature_cache is None and self.incremental:
            feature_cache = FeatureCache()
        self.feature_cache = feature_cache
        #: Incremental match maintenance: candidate sets are reconciled
        #: against each step's ``GraphDelta`` instead of re-matching the
        #: whole graph (the eager path remains the equivalence oracle).
        self._candidate_engine = (
            IncrementalCandidateEngine(self.ruleset)
            if self.incremental else None)
        #: Whole observations (candidates, mask, meta-graph) memoised per
        #: current-graph structural hash.  The environment's dynamics are
        #: deterministic given the ruleset, so a re-visited state — the next
        #: episode retraces a prefix, a different action order reaches the
        #: same graph — reuses the complete observation: no rule matching,
        #: no candidate materialisation, no encoding.  One hash per step
        #: (memoised on the graph object) instead of one per candidate.
        self.max_cached_observations = int(max_cached_observations)
        self._obs_cache = LRUCache(max_cached_observations, name="observation")
        #: Optional ``f(step, best_latency_ms, best_graph_fp)`` invoked
        #: after every environment step — the hook long RL searches use to
        #: stream partial best-so-far graphs (see repro.service.events).
        self.progress_callback = progress_callback
        self._rng = np.random.default_rng(seed)
        #: Optional :class:`~repro.search.parallel.WorkerPool` backing
        #: :meth:`candidate_costs` — the batched per-candidate cost-model
        #: estimates are then computed worker-side against delta-shipped
        #: replicas (bit-for-bit equal to the local path).  Candidate
        #: *graphs* always stay local: the delta GNN embedder needs their
        #: ``delta_parent`` lineage, which a round trip would sever.
        self.pool = pool
        self._pool_session = None
        self._cost_model = CostModel()

        # Episode state
        self.current_graph: Graph = graph
        self.step_count = 0
        self.applied_rules: List[str] = []
        self.initial_latency_ms = 0.0
        self.last_measured_ms = 0.0
        self.best_graph: Graph = graph
        self.best_latency_ms = float("inf")

    # ------------------------------------------------------------------
    @property
    def action_space_size(self) -> int:
        """Padded action-space size (candidates plus the No-Op action)."""
        return self.max_candidates + 1

    def set_graph(self, graph: Graph) -> None:
        """Point the environment at a different target graph (e.g. for
        shape-generalisation evaluation) without rebuilding it.

        All episode state is cleared — in particular ``best_graph`` /
        ``best_latency_ms``, which would otherwise survive from the previous
        target and could report a "best graph" belonging to a different
        model.
        """
        self.initial_graph = graph
        self.current_graph = graph
        self.step_count = 0
        self.applied_rules = []
        self.initial_latency_ms = 0.0
        self.last_measured_ms = 0.0
        self.best_graph = graph
        self.best_latency_ms = float("inf")
        self._last_observation = None
        if self._pool_session is not None:
            # The session's replicas are rooted at the previous target.
            self._pool_session.close()
            self._pool_session = None

    # ------------------------------------------------------------------
    def reset(self) -> Observation:
        """Start a new episode from the unoptimised graph."""
        self.current_graph = self.initial_graph
        self.step_count = 0
        self.applied_rules = []
        self.initial_latency_ms = self.e2e.latency_ms(self.current_graph)
        self.last_measured_ms = self.initial_latency_ms
        if self.initial_latency_ms < self.best_latency_ms:
            self.best_graph = self.current_graph
            self.best_latency_ms = self.initial_latency_ms
        return self._observe()

    def step(self, action: int) -> StepResult:
        """Apply the selected candidate (or terminate on No-Op / invalid)."""
        observation = self._last_observation
        if observation is None:
            raise RuntimeError("step() called before reset()")
        noop = observation.noop_index
        terminal_reward_needed = False
        measured = False

        if action == noop or action >= len(observation.candidates) or \
                not observation.action_mask[action]:
            # No-Op (or an out-of-range action, treated as No-Op): terminate.
            done = True
            reward = self._measure_reward()
            measured = True
        else:
            candidate = observation.candidates[action]
            self.current_graph = candidate.graph
            self.applied_rules.append(candidate.rule_name)
            self.step_count += 1
            done = False
            if self.step_count % self.feedback_interval == 0:
                reward = self._measure_reward()
                measured = True
            else:
                reward = self.step_reward
            if self.step_count >= self.max_steps:
                done = True
                terminal_reward_needed = True

        next_obs = self._observe()
        if not done and not next_obs.candidates:
            # No more applicable rewrites: the transformation terminates.
            done = True
            terminal_reward_needed = True
        if terminal_reward_needed:
            reward += self._measure_reward()
            measured = True

        # ``_measure_reward`` already timed the current graph this step —
        # reuse its measurement instead of asking the simulator again.
        latency = self.last_measured_ms if measured \
            else self.e2e.latency_ms(self.current_graph)
        if latency < self.best_latency_ms:
            self.best_graph = self.current_graph
            self.best_latency_ms = latency
        if self.progress_callback is not None:
            self.progress_callback(self.step_count, self.best_latency_ms,
                                   self.best_graph.structural_hash())

        info = {
            "latency_ms": latency,
            "initial_latency_ms": self.initial_latency_ms,
            "speedup": self.initial_latency_ms / max(latency, 1e-9),
            "steps": float(self.step_count),
            "num_candidates": float(len(next_obs.candidates)),
        }
        return StepResult(observation=next_obs, reward=reward, done=done, info=info)

    # ------------------------------------------------------------------
    def _measure_reward(self) -> float:
        current = self.e2e.latency_ms(self.current_graph)
        reward = self.reward_fn(self.last_measured_ms, current, self.initial_latency_ms)
        self.last_measured_ms = current
        return reward

    def _observe(self) -> Observation:
        if self.incremental and self.max_cached_observations > 0:
            key = self.current_graph.structural_hash()
            cached = self._obs_cache.get(key)
            if cached is not None:
                self._last_observation = cached
                return cached
        candidates = self._select_candidates()
        mask = np.zeros(self.action_space_size, dtype=bool)
        mask[: len(candidates)] = True
        mask[-1] = True  # No-Op is always available
        graphs = [self.current_graph] + [c.graph for c in candidates]
        if self.incremental:
            # Rollouts act through the delta embedder and never read the
            # meta batch; defer its (expensive) assembly until a consumer —
            # PPO's update, a gradient forward — actually touches it.
            meta = LazyMetaGraph(graphs, cache=self.feature_cache)
        else:
            meta = build_meta_graph(graphs, incremental=False)
        obs = Observation(
            meta_graph=meta, action_mask=mask, candidates=candidates,
            graphs=graphs if self.incremental else None)
        if self.incremental and self.max_cached_observations > 0:
            self._obs_cache.put(key, obs)
        self._last_observation = obs
        return obs

    def candidate_costs(self,
                        observation: Optional[Observation] = None
                        ) -> List[float]:
        """Cost-model estimates for the observation's candidate graphs.

        An auxiliary signal for agents (and for benchmarks): the same
        per-candidate estimate TASO's objective would assign.  With a
        ``pool``, the estimates are computed worker-side in one batched
        round trip — each candidate ships as a compact delta against the
        current graph — and are bit-for-bit equal to the serial path
        (:meth:`CostModel.estimate_cached` on the local graphs), which is
        also the transparent fallback whenever shipping is impossible.
        """
        obs = observation if observation is not None else self._last_observation
        if obs is None:
            obs = self._observe()
        graphs = [c.graph for c in obs.candidates]
        session = self._ensure_pool_session()
        if session is not None and session.ensure_lineage(self.current_graph):
            return session.cost_graphs(
                graphs, [self.current_graph] * len(graphs))
        return [float(self._cost_model.estimate_cached(g)) for g in graphs]

    def _ensure_pool_session(self):
        """Lazily open (and cache) a pool session rooted at the episode's
        initial graph; ``None`` when no pool was configured or it died."""
        if self.pool is None:
            return None
        session = self._pool_session
        if session is not None and session.healthy:
            return session
        if not self.pool.healthy:
            return None
        session = self.pool.start_search(self.initial_graph, self.ruleset,
                                         cost_model=self._cost_model)
        if not session.healthy:
            session.close()
            return None
        self._pool_session = session
        return session

    def encode_cache_stats(self) -> Dict[str, float]:
        """Hit/miss counters of the observation/encode caches (empty when
        running with ``incremental=False``)."""
        if self.feature_cache is None:
            return {}
        stats = self.feature_cache.stats()
        stats.update(self._obs_cache.stats())
        return stats

    def _select_candidates(self) -> List[Candidate]:
        """The ≤ ``max_candidates`` candidates shown to the agent.

        Candidates are generated lazily; only the ones selected here are
        ever materialised (i.e. have their rule applied to a graph copy).
        When the graph offers more rewrites than the action space holds, the
        quota is filled round-robin across rules — every rule family stays
        represented, instead of the first rules in declaration order
        monopolising the action space — and the selection is re-sorted into
        enumeration order so action indices remain stable with the uncapped
        case.  Matches that fail to apply are dropped and their slot is
        backfilled from the same rule.
        """
        if self._candidate_engine is not None:
            lazy = self._candidate_engine.lazy_candidates(self.current_graph)
        else:
            lazy = self.ruleset.lazy_candidates(self.current_graph)
        if len(lazy) <= self.max_candidates:
            return [c for c in lazy if c.materialise() is not None]

        queues: Dict[str, Deque[Tuple[int, Candidate]]] = {}
        for index, candidate in enumerate(lazy):
            queues.setdefault(candidate.rule_name, deque()).append((index, candidate))
        rotation = list(queues)
        picked: List[Tuple[int, Candidate]] = []
        while rotation and len(picked) < self.max_candidates:
            next_rotation = []
            for rule_name in rotation:
                if len(picked) >= self.max_candidates:
                    break
                queue = queues[rule_name]
                while queue:
                    index, candidate = queue.popleft()
                    if candidate.materialise() is not None:
                        picked.append((index, candidate))
                        break
                if queue:
                    next_rotation.append(rule_name)
            rotation = next_rotation
        picked.sort(key=lambda pair: pair[0])
        return [candidate for _, candidate in picked]

    _last_observation: Optional[Observation] = None
