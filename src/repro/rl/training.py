"""Training loop: roll out episodes, update the agent with PPO."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .buffer import RolloutBuffer, Transition
from .env import GraphRewriteEnv
from .ppo import PPOUpdater, XRLflowAgent

__all__ = ["EpisodeRecord", "TrainingHistory", "PPOTrainer"]


@dataclass
class EpisodeRecord:
    """Summary of one rollout episode."""

    episode: int
    total_reward: float
    steps: int
    final_latency_ms: float
    speedup: float
    applied_rules: List[str] = field(default_factory=list)


@dataclass
class TrainingHistory:
    """Everything produced over a training run."""

    episodes: List[EpisodeRecord] = field(default_factory=list)
    update_stats: List[Dict[str, float]] = field(default_factory=list)

    @property
    def best_episode(self) -> Optional[EpisodeRecord]:
        if not self.episodes:
            return None
        return max(self.episodes, key=lambda e: e.speedup)

    def mean_reward(self, last: int = 10) -> float:
        if not self.episodes:
            return 0.0
        window = self.episodes[-last:]
        return float(np.mean([e.total_reward for e in window]))


class PPOTrainer:
    """Collects on-policy rollouts from a :class:`GraphRewriteEnv` and applies
    PPO updates every ``update_frequency`` episodes (Table 4's setting)."""

    def __init__(self, env: GraphRewriteEnv, agent: XRLflowAgent,
                 updater: PPOUpdater,
                 update_frequency: int = 10,
                 gamma: float = 0.99,
                 gae_lambda: float = 0.95,
                 log_fn: Optional[Callable[[str], None]] = None):
        self.env = env
        self.agent = agent
        self.updater = updater
        self.update_frequency = int(update_frequency)
        self.buffer = RolloutBuffer(gamma=gamma, lam=gae_lambda)
        self.history = TrainingHistory()
        self.log_fn = log_fn

    # ------------------------------------------------------------------
    def run_episode(self, deterministic: bool = False,
                    store: bool = True) -> EpisodeRecord:
        """Roll out one episode; optionally store transitions for PPO."""
        obs = self.env.reset()
        total_reward = 0.0
        done = False
        last_info: Dict[str, float] = {}
        while not done:
            decision = self.agent.act(obs, deterministic=deterministic)
            step = self.env.step(decision.action)
            if store:
                self.buffer.add(Transition(
                    observation=obs, action=decision.action,
                    log_prob=decision.log_prob, value=decision.value,
                    reward=step.reward, done=step.done))
            total_reward += step.reward
            obs = step.observation
            done = step.done
            last_info = step.info
        record = EpisodeRecord(
            episode=len(self.history.episodes),
            total_reward=total_reward,
            steps=int(last_info.get("steps", 0)),
            final_latency_ms=float(last_info.get("latency_ms", 0.0)),
            speedup=float(last_info.get("speedup", 1.0)),
            applied_rules=list(self.env.applied_rules),
        )
        self.history.episodes.append(record)
        return record

    def train(self, num_episodes: int) -> TrainingHistory:
        """Train for ``num_episodes`` episodes, updating every
        ``update_frequency`` of them."""
        for episode in range(num_episodes):
            record = self.run_episode(deterministic=False, store=True)
            if self.log_fn:
                self.log_fn(
                    f"episode {record.episode}: reward={record.total_reward:.2f} "
                    f"speedup={record.speedup:.3f} steps={record.steps}")
            if (episode + 1) % self.update_frequency == 0 and len(self.buffer) > 1:
                self._apply_update()
        # Flush any remaining transitions with one final update.
        if len(self.buffer) > 1:
            self._apply_update()
        return self.history

    def _apply_update(self) -> None:
        """Run one PPO update over the buffer and record its statistics
        (plus the env's observation-encode cache hit rate, when running
        incrementally — the number the RL benchmark tracks)."""
        stats = self.updater.update(self.buffer)
        record = {
            "policy_loss": stats.policy_loss,
            "value_loss": stats.value_loss,
            "entropy": stats.entropy,
            "grad_norm": stats.grad_norm,
        }
        cache_stats = self.env.encode_cache_stats()
        if cache_stats:
            record["encode_cache_hit_rate"] = cache_stats["hit_rate"]
        self.history.update_stats.append(record)
        self.buffer.clear()
