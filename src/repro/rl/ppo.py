"""The X-RLflow actor-critic agent and its PPO-clip update.

Architecture (Figure 3 of the paper):

* the meta-graph (current graph + all candidates) is encoded by the GNN into
  one embedding per graph,
* the *policy head* scores each candidate by looking at its embedding next to
  the current graph's embedding (the No-Op action is scored as "keep the
  current graph"), producing a categorical distribution after invalid-action
  masking,
* the *value head* estimates the state value from the current graph's
  embedding and the mean candidate embedding.

The update is the PPO clip objective (Eq. 3–5): policy surrogate + value MSE
+ entropy bonus, optimised end-to-end with Adam.

Performance notes:

* ``forward`` is fully vectorised — pair rows are gathered for all actions
  at once and the per-candidate logits land in the padded action space via
  one ``scatter_into`` (the seed implementation rebuilt the padded vector
  with an O(A²) ``list.index`` loop of 1-element tensors);
* ``evaluate_actions_batch`` runs a whole PPO minibatch through a *single*
  encoder forward by splicing every observation's meta-graph into one
  :class:`~repro.nn.gnn.BatchedGraphs` (the meta-graph machinery batches
  arbitrary graph sets, so batching across transitions is the same trick as
  batching candidates within one);
* rollout ``act()`` runs under :func:`~repro.nn.tensor.no_grad`, so
  exploration builds no autograd tape — and memoises the policy output per
  observation object (the environment returns the *same* observation for a
  re-visited state), invalidated on every weight update;
* the agent has a ``dtype`` knob — training defaults to ``float32`` through
  :class:`~repro.core.config.XRLflowConfig`, while ``float64`` (the library
  default) is kept for the bit-for-bit equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.lru import LRUCache
from ..nn.gnn import GraphEmbeddingNetwork
from ..nn.layers import MLP, Module
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor, concat, default_dtype, no_grad
from .buffer import RolloutBuffer
from .embed import IncrementalEmbedder
from .env import Observation
from .features import (EDGE_FEATURE_DIM, GLOBAL_FEATURE_DIM, NODE_FEATURE_DIM,
                       combine_meta_graphs)

__all__ = ["ActionDecision", "XRLflowAgent", "PPOUpdater"]

_MASK_VALUE = -1e9


def _pair_indices(num_graphs: int, offset: int, num_actions: int
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays describing one observation's policy-head inputs.

    For an observation whose meta-graph occupies embedding rows
    ``offset .. offset + num_graphs - 1`` (current graph first), returns
    ``(first, second, positions)`` where row ``i`` of the policy input is
    ``[emb[first[i]] || emb[second[i]]]`` and its logit belongs at action
    index ``positions[i]``.  The final row is the No-Op action ("stay on the
    current graph"), scored at the last slot of the padded action space.
    """
    count = num_graphs  # one row per candidate plus the No-Op row
    first = np.full(count, offset, dtype=np.int64)
    second = np.empty(count, dtype=np.int64)
    second[:count - 1] = offset + 1 + np.arange(count - 1, dtype=np.int64)
    second[count - 1] = offset
    positions = np.empty(count, dtype=np.int64)
    positions[:count - 1] = np.arange(count - 1, dtype=np.int64)
    positions[count - 1] = num_actions - 1
    return first, second, positions


@dataclass
class ActionDecision:
    """The agent's output for one observation."""

    action: int
    log_prob: float
    value: float
    probabilities: np.ndarray


class XRLflowAgent(Module):
    """GNN encoder + policy head + value head."""

    def __init__(self, hidden_dim: int = 64, embedding_dim: int = 64,
                 num_gat_layers: int = 5,
                 head_sizes: Sequence[int] = (256, 64),
                 seed: int = 0,
                 dtype=np.float64):
        self.dtype = np.dtype(dtype)
        with default_dtype(self.dtype):
            rng = np.random.default_rng(seed)
            self.encoder = GraphEmbeddingNetwork(
                node_dim=NODE_FEATURE_DIM, edge_dim=EDGE_FEATURE_DIM,
                global_dim=GLOBAL_FEATURE_DIM, hidden_dim=hidden_dim,
                embedding_dim=embedding_dim, num_gat_layers=num_gat_layers,
                seed=seed)
            head_sizes = list(head_sizes)
            self.policy_head = MLP([2 * embedding_dim] + head_sizes + [1], rng=rng)
            self.value_head = MLP([2 * embedding_dim] + head_sizes + [1], rng=rng)
        self.embedding_dim = embedding_dim
        self._rng = np.random.default_rng(seed + 1)
        #: Policy output per observation *object*: id -> (observation,
        #: probabilities, value).  The policy is a deterministic function of
        #: (weights, observation), so while the weights are frozen — every
        #: rollout between PPO updates, every evaluation episode — a
        #: re-visited observation costs a dict lookup instead of a GNN
        #: forward.  Holding the observation keeps its id from being reused;
        #: :meth:`invalidate_decision_cache` drops everything when the
        #: weights change.
        # Sized to the environment's own observation cache: once the env
        # evicts an observation, its object id can never hit here again, so
        # a larger bound would only pin dead meta-graphs.
        self._decision_cache = LRUCache(512, name="decision")
        #: Rollout forwards re-embed only each graph's delta when the
        #: observation carries its graph list (the environment's
        #: incremental path); switchable for ablation benchmarks.
        self.incremental_embed = True
        self.embedder = IncrementalEmbedder(self.encoder)

    def invalidate_decision_cache(self) -> None:
        """Drop memoised policy outputs (call whenever weights change)."""
        self._decision_cache.clear()
        self.embedder.invalidate()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self.invalidate_decision_cache()

    # ------------------------------------------------------------------
    def forward(self, observation: Observation) -> Tuple[Tensor, Tensor]:
        """Return (masked logits over the padded action space, state value)."""
        with default_dtype(self.dtype):
            embeddings = self.encoder(observation.meta_graph)  # [1 + C, D]
            return self._heads(embeddings, observation)

    def _heads(self, embeddings: Tensor,
               observation: Observation) -> Tuple[Tensor, Tensor]:
        """Policy and value heads on the encoded meta-graph.

        Split out of :meth:`forward` so the rollout path can feed
        embeddings from the incremental embedder through the identical
        head computation.  Callers hold the ``default_dtype`` context.
        """
        # The graph list carries the batch size on the incremental path;
        # touching ``meta_graph`` there would force the lazy batch to be
        # assembled just to read its count.
        num_graphs = (len(observation.graphs)
                      if observation.graphs is not None
                      else observation.meta_graph.num_graphs)
        num_actions = observation.action_mask.shape[0]

        first, second, positions = _pair_indices(num_graphs, 0, num_actions)
        pair_matrix = concat([embeddings.gather_rows(first),
                              embeddings.gather_rows(second)], axis=1)
        logits = self.policy_head(pair_matrix).reshape(num_graphs)
        # Pad to the fixed action-space size: candidate logits occupy the
        # first C slots, the No-Op logit the final slot, everything else
        # the mask value.  One O(C) scatter, gradient is a plain gather.
        masked_logits = logits.scatter_into(
            (num_actions,), positions, fill=_MASK_VALUE)
        # Any candidate slot the environment marked invalid is masked too.
        invalid = ~observation.action_mask
        if invalid.any():
            masked_logits = masked_logits + Tensor(
                np.where(invalid, _MASK_VALUE, 0.0))

        # Value estimate from the current graph and the mean candidate
        # embedding.
        current_b = embeddings[0:1].reshape(self.embedding_dim)
        if num_graphs > 1:
            mean_candidate = embeddings[1:num_graphs].mean(axis=0)
        else:
            mean_candidate = current_b
        value_input = concat([current_b, mean_candidate], axis=0).reshape(1, -1)
        value = self.value_head(value_input).reshape(1)
        return masked_logits, value

    # ------------------------------------------------------------------
    def act(self, observation: Observation, deterministic: bool = False,
            grad: bool = False) -> ActionDecision:
        """Sample (or argmax) an action from the masked policy.

        Runs under :func:`~repro.nn.tensor.no_grad` unless ``grad=True`` —
        rollouts never backpropagate through the decision, so building the
        tape is pure overhead (kept switchable as the benchmark baseline).
        The masked distribution and value are memoised per observation
        object until the next weight update; sampling still draws from the
        generator on every call, so cached and uncached rollouts consume
        the rng identically.
        """
        entry = None if grad else self._decision_cache.get(id(observation))
        if entry is not None and entry[0] is observation:
            _, probs, value_f = entry
        else:
            if entry is not None:
                # A dead observation's id was recycled; drop the stale row.
                self._decision_cache.pop(id(observation))
            if grad:
                logits, value = self.forward(observation)
            elif self.incremental_embed and observation.graphs is not None:
                # Delta GNN forward: per-graph activations are cached and
                # only each graph's mutated cone is recomputed — the
                # embeddings (and hence the decision) are identical to the
                # full encoder's by row-consistency (see repro.rl.embed).
                with no_grad(), default_dtype(self.dtype):
                    embeddings = Tensor(self.embedder.embed(observation))
                    logits, value = self._heads(embeddings, observation)
            else:
                with no_grad():
                    logits, value = self.forward(observation)
            probs = logits.softmax(axis=0).numpy().astype(np.float64, copy=True)
            probs = probs / probs.sum()
            value_f = float(value.numpy()[0])
            if not grad:
                self._decision_cache.put(
                    id(observation), (observation, probs, value_f))
        if deterministic:
            action = int(np.argmax(probs))
        else:
            action = int(self._rng.choice(len(probs), p=probs))
        log_prob = float(np.log(probs[action] + 1e-12))
        return ActionDecision(action=action, log_prob=log_prob,
                              value=value_f, probabilities=probs)

    def evaluate_actions(self, observation: Observation, action: int
                         ) -> Tuple[Tensor, Tensor, Tensor]:
        """Differentiable (log-prob, value, entropy) of ``action``.

        One observation at a time — the reference path for the batched
        update and the equivalence suite.
        """
        logits, value = self.forward(observation)
        log_probs = logits.log_softmax(axis=0)
        probs = log_probs.exp()
        entropy = -(probs * log_probs).sum()
        return log_probs[action:action + 1], value, entropy

    def evaluate_actions_batch(self, observations: Sequence[Observation],
                               actions: Sequence[int]
                               ) -> Tuple[Tensor, Tensor, Tensor]:
        """Differentiable (log-probs, values, entropies), each ``[B]``.

        Splices every *distinct* observation's meta-graph into one
        :class:`~repro.nn.gnn.BatchedGraphs` and runs a *single* encoder
        forward for the whole minibatch — the GNN message passing is where
        nearly all the per-transition ops (and the autograd tape) used to
        go.  Duplicate observations (the environment memoises re-visited
        states, so one observation object can back several transitions) are
        encoded and head-evaluated once.  All embedding rows the heads need
        are pulled out of the combined matrix with *two* gathers — per-item
        slicing of the big matrix would allocate a full-size gradient
        buffer per item in the backward pass.  The head MLPs then run per
        observation with exactly the shapes the single-observation path
        uses: BLAS picks different kernels for different row counts
        (``M=1`` matmuls round differently from ``M=B``), so batching the
        *heads* would break the bit-for-bit float64 equivalence with
        :meth:`evaluate_actions` that the segment-kernel accumulation order
        guarantees for the encoder.
        """
        with default_dtype(self.dtype):
            batch_size = len(observations)
            num_actions = observations[0].action_mask.shape[0]
            dim = self.embedding_dim

            # Deduplicate by object identity; transition i uses unique[slot[i]].
            unique: List[Observation] = []
            slots: List[int] = []
            positions_by_id: Dict[int, int] = {}
            for obs in observations:
                slot = positions_by_id.get(id(obs))
                if slot is None:
                    slot = len(unique)
                    positions_by_id[id(obs)] = slot
                    unique.append(obs)
                slots.append(slot)

            # Cast each observation's meta-graph up front (memoised per
            # observation, so PPO epochs re-use the converted arrays) and
            # splice the already-converted blocks.
            combined, offsets = combine_meta_graphs(
                [o.meta_graph.cast(self.dtype) for o in unique])
            embeddings = self.encoder(combined)  # [sum G_u, D]

            # Group unique observations by meta-graph size.  Within a group
            # the head MLPs run on one stacked 3-D tensor: numpy's batched
            # matmul applies the identical per-slice kernel as the 2-D
            # single-observation path (same M/N/K), so every slice stays
            # bit-for-bit equal to :meth:`evaluate_actions` while the whole
            # group costs one set of ops.
            groups: Dict[int, List[int]] = {}
            for u, obs in enumerate(unique):
                groups.setdefault(obs.meta_graph.num_graphs, []).append(u)

            group_logit_blocks: List[Tensor] = []
            group_value_blocks: List[Tensor] = []
            row_of_unique = np.empty(len(unique), dtype=np.int64)
            row_cursor = 0
            for count, members in groups.items():
                k = len(members)
                first = np.empty(k * count, dtype=np.int64)
                second = np.empty(k * count, dtype=np.int64)
                for j, u in enumerate(members):
                    f, s, _ = _pair_indices(count, int(offsets[u]),
                                            num_actions)
                    first[j * count:(j + 1) * count] = f
                    second[j * count:(j + 1) * count] = s
                    row_of_unique[u] = row_cursor + j
                row_cursor += k
                gathered_first = embeddings.gather_rows(first) \
                    .reshape(k, count, dim)
                gathered_second = embeddings.gather_rows(second) \
                    .reshape(k, count, dim)
                pair = concat([gathered_first, gathered_second], axis=2)
                logits = self.policy_head(pair).reshape(k, count)
                _, _, positions = _pair_indices(count, 0, num_actions)
                masked = logits.reshape(k * count).scatter_into(
                    (k, num_actions),
                    np.repeat(np.arange(k, dtype=np.int64), count),
                    np.tile(positions, k),
                    fill=_MASK_VALUE)
                invalid = ~np.stack([unique[u].action_mask for u in members])
                masked = masked + Tensor(np.where(invalid, _MASK_VALUE, 0.0))
                group_logit_blocks.append(masked)

                # Current-graph row and mean candidate embedding per member.
                current_rows = gathered_first[:, 0, :]          # [k, D]
                if count > 1:
                    mean_candidates = \
                        gathered_second[:, :count - 1, :].mean(axis=1)
                else:
                    mean_candidates = current_rows
                value_input = concat([current_rows, mean_candidates],
                                     axis=1).reshape(k, 1, 2 * dim)
                group_value_blocks.append(
                    self.value_head(value_input).reshape(k))

            # Reassemble per-transition rows (duplicates reuse unique rows);
            # log-softmax, entropy and the chosen-action gather are row-wise.
            unique_logits = concat(group_logit_blocks, axis=0)   # [U, A]
            unique_values = concat(group_value_blocks, axis=0)   # [U]
            transition_rows = row_of_unique[np.asarray(slots, dtype=np.int64)]
            logit_matrix = unique_logits.gather_rows(transition_rows)
            log_probs = logit_matrix.log_softmax(axis=-1)        # [B, A]
            probs = log_probs.exp()
            entropy = -(probs * log_probs).sum(axis=1)           # [B]
            actions = np.asarray(actions, dtype=np.int64)
            chosen = log_probs[np.arange(batch_size), actions]   # [B]
            values = unique_values.gather_rows(transition_rows)  # [B]
            return chosen, values, entropy


@dataclass
class PPOUpdateStats:
    policy_loss: float
    value_loss: float
    entropy: float
    grad_norm: float


class PPOUpdater:
    """PPO-clip optimiser for an :class:`XRLflowAgent`.

    ``batched=True`` (the default) evaluates each minibatch through
    :meth:`XRLflowAgent.evaluate_actions_batch`; ``batched=False`` keeps the
    seed per-transition loop as the benchmark baseline and equivalence
    reference.

    Minibatches whose observations sum to more than ``max_batch_nodes``
    meta-graph nodes are split into node-bounded chunks with gradient
    accumulation (each chunk's loss is scaled by ``1/B``, so the summed
    gradient equals the whole-minibatch mean exactly, up to float addition
    order).  One giant fused batch is *slower* than the loop on large
    models: its activation arrays fall out of the CPU caches, and every
    elementwise op becomes a round-trip to DRAM.  Chunking keeps the
    per-op working set cache-resident while still amortising the Python
    dispatch overhead over many transitions.
    """

    def __init__(self, agent: XRLflowAgent,
                 learning_rate: float = 5e-4,
                 clip_epsilon: float = 0.2,
                 value_coef: float = 0.5,
                 entropy_coef: float = 0.01,
                 epochs: int = 4,
                 batch_size: int = 16,
                 max_grad_norm: float = 0.5,
                 seed: int = 0,
                 batched: bool = True,
                 max_batch_nodes: int = 8192):
        self.agent = agent
        self.optimizer = Adam(agent.parameters(), lr=learning_rate)
        self.clip_epsilon = float(clip_epsilon)
        self.value_coef = float(value_coef)
        self.entropy_coef = float(entropy_coef)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.max_grad_norm = float(max_grad_norm)
        self.batched = bool(batched)
        self.max_batch_nodes = int(max_batch_nodes)
        self._rng = np.random.default_rng(seed)

    def update(self, buffer: RolloutBuffer) -> PPOUpdateStats:
        """Run PPO epochs over the buffer and return averaged statistics."""
        advantages, returns = buffer.finalise()
        stats = {"policy": 0.0, "value": 0.0, "entropy": 0.0, "grad": 0.0}
        updates = 0

        dtype = getattr(self.agent, "dtype", np.float64)
        with default_dtype(dtype):
            for _ in range(self.epochs):
                for batch_idx in buffer.minibatches(self.batch_size, self._rng):
                    if self.batched:
                        step = self._update_batched(buffer, batch_idx,
                                                    advantages, returns)
                    else:
                        step = self._update_loop(buffer, batch_idx,
                                                 advantages, returns)
                    for key, value in step.items():
                        stats[key] += value
                    updates += 1

        # The weights moved: memoised rollout decisions are stale.
        invalidate = getattr(self.agent, "invalidate_decision_cache", None)
        if invalidate is not None:
            invalidate()

        scale = 1.0 / max(updates, 1)
        return PPOUpdateStats(policy_loss=stats["policy"] * scale,
                              value_loss=stats["value"] * scale,
                              entropy=stats["entropy"] * scale,
                              grad_norm=stats["grad"] * scale)

    # ------------------------------------------------------------------
    def _node_bounded_chunks(self, buffer: RolloutBuffer,
                             batch_idx: np.ndarray) -> List[np.ndarray]:
        """Split a minibatch into runs of <= ``max_batch_nodes`` meta nodes.

        Duplicate observations inside a chunk are counted once — they are
        deduplicated before encoding.
        """
        transitions = buffer.transitions
        chunks: List[np.ndarray] = []
        current: List[int] = []
        seen: set = set()
        nodes = 0
        for i in batch_idx:
            obs = transitions[i].observation
            cost = 0 if id(obs) in seen else obs.meta_graph.num_nodes
            if current and nodes + cost > self.max_batch_nodes:
                chunks.append(np.asarray(current))
                current, seen, nodes = [], set(), 0
                cost = obs.meta_graph.num_nodes
            current.append(int(i))
            seen.add(id(obs))
            nodes += cost
        if current:
            chunks.append(np.asarray(current))
        return chunks

    def _update_batched(self, buffer: RolloutBuffer, batch_idx: np.ndarray,
                        advantages: np.ndarray, returns: np.ndarray):
        """One optimiser step on a minibatch via the batched-forward path.

        Each node-bounded chunk contributes ``chunk_loss_sum / B`` and is
        backpropagated immediately (gradient accumulation): the summed
        gradients equal the whole-minibatch mean-loss gradient by
        linearity, and each chunk's tape is freed before the next one runs.
        """
        self.optimizer.zero_grad()
        total_count = len(batch_idx)
        scale = 1.0 / total_count
        sums = {"policy": 0.0, "value": 0.0, "entropy": 0.0}
        for chunk in self._node_bounded_chunks(buffer, batch_idx):
            observations, actions, old_log_probs = buffer.gather(chunk)
            new_log_probs, values, entropies = self.agent.evaluate_actions_batch(
                observations, actions)
            adv = Tensor(advantages[chunk])
            ratio = (new_log_probs - Tensor(old_log_probs)).exp()
            surrogate1 = ratio * adv
            surrogate2 = ratio.clip(1 - self.clip_epsilon,
                                    1 + self.clip_epsilon) * adv
            # Elementwise min with the same subgradient choice as the loop
            # path (ties go to the unclipped surrogate).
            take_first = Tensor(
                (surrogate1.data <= surrogate2.data).astype(
                    surrogate1.data.dtype))
            policy_elements = -(surrogate1 * take_first
                                + surrogate2 * (1.0 - take_first))
            policy_sum = policy_elements.sum()
            value_sum = ((values - Tensor(returns[chunk])) ** 2).sum()
            entropy_sum = entropies.sum()
            total = (policy_sum + self.value_coef * value_sum
                     - self.entropy_coef * entropy_sum) * scale
            total.backward()
            sums["policy"] += float(policy_sum.numpy().sum())
            sums["value"] += float(value_sum.numpy().sum())
            sums["entropy"] += float(entropy_sum.numpy().sum())
        grad_norm = clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        return {"policy": sums["policy"] * scale,
                "value": sums["value"] * scale,
                "entropy": sums["entropy"] * scale,
                "grad": grad_norm}

    def _update_loop(self, buffer: RolloutBuffer, batch_idx: np.ndarray,
                     advantages: np.ndarray, returns: np.ndarray):
        """The seed per-transition update (one forward per transition)."""
        transitions = buffer.transitions
        self.optimizer.zero_grad()
        losses = []
        entropies = []
        value_losses = []
        for i in batch_idx:
            t = transitions[i]
            new_log_prob, value, entropy = self.agent.evaluate_actions(
                t.observation, t.action)
            ratio = (new_log_prob - t.log_prob).exp()
            adv = float(advantages[i])
            surrogate1 = ratio * adv
            surrogate2 = ratio.clip(1 - self.clip_epsilon,
                                    1 + self.clip_epsilon) * adv
            # elementwise min of the two 1-element tensors
            take_first = float(surrogate1.numpy()[0]) <= float(surrogate2.numpy()[0])
            policy_loss = -(surrogate1 if take_first else surrogate2)
            value_loss = (value - float(returns[i])) ** 2
            losses.append(policy_loss)
            value_losses.append(value_loss)
            entropies.append(entropy)
        n = len(batch_idx)
        policy_term = sum(losses[1:], losses[0]) * (1.0 / n)
        value_term = sum(value_losses[1:], value_losses[0]) * (1.0 / n)
        entropy_term = sum(entropies[1:], entropies[0]) * (1.0 / n)
        total = (policy_term + self.value_coef * value_term
                 - self.entropy_coef * entropy_term)
        total.backward()
        grad_norm = clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        return {"policy": float(policy_term.numpy().sum()),
                "value": float(value_term.numpy().sum()),
                "entropy": float(entropy_term.numpy().sum()),
                "grad": grad_norm}
