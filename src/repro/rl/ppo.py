"""The X-RLflow actor-critic agent and its PPO-clip update.

Architecture (Figure 3 of the paper):

* the meta-graph (current graph + all candidates) is encoded by the GNN into
  one embedding per graph,
* the *policy head* scores each candidate by looking at its embedding next to
  the current graph's embedding (the No-Op action is scored as "keep the
  current graph"), producing a categorical distribution after invalid-action
  masking,
* the *value head* estimates the state value from the current graph's
  embedding and the mean candidate embedding.

The update is the PPO clip objective (Eq. 3–5): policy surrogate + value MSE
+ entropy bonus, optimised end-to-end with Adam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..nn.gnn import GraphEmbeddingNetwork
from ..nn.layers import MLP, Module
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor, concat, stack
from .buffer import RolloutBuffer
from .env import Observation
from .features import EDGE_FEATURE_DIM, GLOBAL_FEATURE_DIM, NODE_FEATURE_DIM

__all__ = ["ActionDecision", "XRLflowAgent", "PPOUpdater"]

_MASK_VALUE = -1e9


@dataclass
class ActionDecision:
    """The agent's output for one observation."""

    action: int
    log_prob: float
    value: float
    probabilities: np.ndarray


class XRLflowAgent(Module):
    """GNN encoder + policy head + value head."""

    def __init__(self, hidden_dim: int = 64, embedding_dim: int = 64,
                 num_gat_layers: int = 5,
                 head_sizes: Sequence[int] = (256, 64),
                 seed: int = 0):
        rng = np.random.default_rng(seed)
        self.encoder = GraphEmbeddingNetwork(
            node_dim=NODE_FEATURE_DIM, edge_dim=EDGE_FEATURE_DIM,
            global_dim=GLOBAL_FEATURE_DIM, hidden_dim=hidden_dim,
            embedding_dim=embedding_dim, num_gat_layers=num_gat_layers, seed=seed)
        head_sizes = list(head_sizes)
        self.policy_head = MLP([2 * embedding_dim] + head_sizes + [1], rng=rng)
        self.value_head = MLP([2 * embedding_dim] + head_sizes + [1], rng=rng)
        self.embedding_dim = embedding_dim
        self._rng = np.random.default_rng(seed + 1)

    # ------------------------------------------------------------------
    def forward(self, observation: Observation) -> Tuple[Tensor, Tensor]:
        """Return (masked logits over the padded action space, state value)."""
        embeddings = self.encoder(observation.meta_graph)  # [1 + C, D]
        num_graphs = observation.meta_graph.num_graphs
        current = embeddings[0:1]                          # [1, D]
        num_candidates = num_graphs - 1

        rows = []
        current_b = current.reshape(self.embedding_dim)
        if num_candidates > 0:
            candidate_emb = embeddings[1:num_graphs]
            for i in range(num_candidates):
                rows.append(concat([current_b, candidate_emb[i]], axis=0))
        # The No-Op action is "stay on the current graph".
        rows.append(concat([current_b, current_b], axis=0))
        pair_matrix = stack(rows, axis=0)                   # [C + 1, 2D]
        logits = self.policy_head(pair_matrix).reshape(len(rows))

        # Pad to the fixed action-space size and apply the invalid-action mask.
        mask = observation.action_mask
        padded = np.full(mask.shape[0], _MASK_VALUE)
        # Valid candidate logits occupy the first `num_candidates` slots and
        # the final slot (No-Op).
        logits_np_positions = list(range(num_candidates)) + [mask.shape[0] - 1]
        pad_rows = []
        for position in range(mask.shape[0]):
            if position in logits_np_positions:
                idx = logits_np_positions.index(position)
                pad_rows.append(logits[idx:idx + 1])
            else:
                pad_rows.append(Tensor(np.array([_MASK_VALUE])))
        masked_logits = concat(pad_rows, axis=0)
        # Any candidate slot the environment marked invalid is masked too.
        invalid = ~mask
        if invalid.any():
            masked_logits = masked_logits + Tensor(np.where(invalid, _MASK_VALUE, 0.0))

        # Value estimate from the current graph and the mean candidate embedding.
        if num_candidates > 0:
            mean_candidate = embeddings[1:num_graphs].mean(axis=0)
        else:
            mean_candidate = current_b
        value_input = concat([current_b, mean_candidate], axis=0).reshape(1, -1)
        value = self.value_head(value_input).reshape(1)
        return masked_logits, value

    # ------------------------------------------------------------------
    def act(self, observation: Observation, deterministic: bool = False) -> ActionDecision:
        """Sample (or argmax) an action from the masked policy."""
        logits, value = self.forward(observation)
        probs = logits.softmax(axis=0).numpy()
        probs = probs / probs.sum()
        if deterministic:
            action = int(np.argmax(probs))
        else:
            action = int(self._rng.choice(len(probs), p=probs))
        log_prob = float(np.log(probs[action] + 1e-12))
        return ActionDecision(action=action, log_prob=log_prob,
                              value=float(value.numpy()[0]), probabilities=probs)

    def evaluate_actions(self, observation: Observation, action: int
                         ) -> Tuple[Tensor, Tensor, Tensor]:
        """Differentiable (log-prob, value, entropy) of ``action``."""
        logits, value = self.forward(observation)
        log_probs = logits.log_softmax(axis=0)
        probs = log_probs.exp()
        entropy = -(probs * log_probs).sum()
        return log_probs[action:action + 1], value, entropy


@dataclass
class PPOUpdateStats:
    policy_loss: float
    value_loss: float
    entropy: float
    grad_norm: float


class PPOUpdater:
    """PPO-clip optimiser for an :class:`XRLflowAgent`."""

    def __init__(self, agent: XRLflowAgent,
                 learning_rate: float = 5e-4,
                 clip_epsilon: float = 0.2,
                 value_coef: float = 0.5,
                 entropy_coef: float = 0.01,
                 epochs: int = 4,
                 batch_size: int = 16,
                 max_grad_norm: float = 0.5,
                 seed: int = 0):
        self.agent = agent
        self.optimizer = Adam(agent.parameters(), lr=learning_rate)
        self.clip_epsilon = float(clip_epsilon)
        self.value_coef = float(value_coef)
        self.entropy_coef = float(entropy_coef)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.max_grad_norm = float(max_grad_norm)
        self._rng = np.random.default_rng(seed)

    def update(self, buffer: RolloutBuffer) -> PPOUpdateStats:
        """Run PPO epochs over the buffer and return averaged statistics."""
        advantages, returns = buffer.finalise()
        transitions = buffer.transitions
        stats = {"policy": 0.0, "value": 0.0, "entropy": 0.0, "grad": 0.0}
        updates = 0

        for _ in range(self.epochs):
            for batch_idx in buffer.minibatches(self.batch_size, self._rng):
                self.optimizer.zero_grad()
                losses = []
                entropies = []
                value_losses = []
                for i in batch_idx:
                    t = transitions[i]
                    new_log_prob, value, entropy = self.agent.evaluate_actions(
                        t.observation, t.action)
                    ratio = (new_log_prob - t.log_prob).exp()
                    adv = float(advantages[i])
                    surrogate1 = ratio * adv
                    surrogate2 = ratio.clip(1 - self.clip_epsilon,
                                            1 + self.clip_epsilon) * adv
                    # elementwise min of the two 1-element tensors
                    take_first = float(surrogate1.numpy()[0]) <= float(surrogate2.numpy()[0])
                    policy_loss = -(surrogate1 if take_first else surrogate2)
                    value_loss = (value - float(returns[i])) ** 2
                    losses.append(policy_loss)
                    value_losses.append(value_loss)
                    entropies.append(entropy)
                n = len(batch_idx)
                policy_term = sum(losses[1:], losses[0]) * (1.0 / n)
                value_term = sum(value_losses[1:], value_losses[0]) * (1.0 / n)
                entropy_term = sum(entropies[1:], entropies[0]) * (1.0 / n)
                total = (policy_term + self.value_coef * value_term
                         - self.entropy_coef * entropy_term)
                total.backward()
                grad_norm = clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
                self.optimizer.step()
                stats["policy"] += float(policy_term.numpy().sum())
                stats["value"] += float(value_term.numpy().sum())
                stats["entropy"] += float(entropy_term.numpy().sum())
                stats["grad"] += grad_norm
                updates += 1

        scale = 1.0 / max(updates, 1)
        return PPOUpdateStats(policy_loss=stats["policy"] * scale,
                              value_loss=stats["value"] * scale,
                              entropy=stats["entropy"] * scale,
                              grad_norm=stats["grad"] * scale)
