"""Persistent worker pool for intra-search parallelism.

Every optimiser in this repository evaluates its per-iteration candidate set
— match, materialise, cost — on one core.  This module shards that work
across a pool of long-lived worker processes while preserving the serial
search trajectory *bit-for-bit*:

* **Base graph once.**  A search opens a :class:`PoolSession`, which ships
  the base graph to every worker a single time (binary wire format, see
  :mod:`repro.ir.wire`).  Afterwards only compact deltas travel: when the
  search moves to a new current graph, workers reconstruct it from the
  parent replica they already hold via :func:`repro.ir.wire.apply_delta`.
  Replicas carry the exact node ids and id counter of the searcher's graphs,
  so worker-side rule application allocates identical ids and computes
  identical float64 costs.
* **Deterministic merge.**  Work items are ``(candidate index, rule name,
  match)`` triples; results come back keyed by candidate index and the
  searcher merges them in index order, replaying exactly the decisions the
  serial loop would make (dedup against ``seen``, best updates, queue
  admission).  ``parallel=True`` therefore reproduces the serial trajectory
  bit-for-bit — asserted in ``tests/search/test_parallel_search.py``.
* **Graceful degradation.**  A worker that dies mid-search (killed, OOM,
  crashed) is detected on its next reply; its shard is re-evaluated
  in-process with the *same* code path workers run
  (:func:`evaluate_candidates_inline`), so results are unaffected.  A pool
  with no live workers degrades to fully serial evaluation.

The pool is deliberately persistent: process spin-up and module imports are
paid once per process lifetime (see :func:`shared_pool`), not per search —
the profiling that motivated this design showed pool spin-up and whole-graph
pickling were exactly where the old 0.91x "parallel" scaling went.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import time
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..ir.graph import Graph
from ..ir.wire import apply_delta, decode_graph, encode_delta, encode_graph
from ..rules.base import Candidate, Match, RuleSet

if False:  # typing only — the runtime import is deferred (cycle via
    from ..service.profiling import StageProfiler  # repro.service.__init__)

__all__ = ["EvalResult", "WorkerPool", "PoolSession", "open_session",
           "evaluate_candidates_inline", "shared_pool", "close_shared_pool"]


class EvalResult(NamedTuple):
    """Outcome of one candidate evaluation (order-preserving merge unit)."""

    ok: bool
    cost: float
    structural_hash: str
    num_nodes: int


# ---------------------------------------------------------------------------
# Evaluation kernel — the one code path used by workers AND the in-process
# fallback, so a dead worker can never change results.
# ---------------------------------------------------------------------------

def evaluate_candidates_inline(graph: Graph, ruleset: RuleSet,
                               items: Sequence[Tuple[int, str, Match]],
                               cost_model=None, latency_source=None,
                               parent_cost: Optional[float] = None,
                               ) -> List[Tuple[int, EvalResult]]:
    """Materialise + hash + cost each ``(index, rule_name, match)`` item.

    ``cost_model`` scores via :meth:`CostModel.estimate_delta` when
    ``parent_cost`` is given (the incremental search path) and a full
    :meth:`CostModel.estimate` otherwise — mirroring the serial optimiser's
    two modes exactly.  ``latency_source`` (mutually exclusive) scores with
    ``latency_ms``.  With neither, candidates are hashed but not scored
    (the saturation explorer's mode).
    """
    out: List[Tuple[int, EvalResult]] = []
    for index, rule_name, match in items:
        rule = ruleset.rule(rule_name)
        candidate = Candidate(rule_name=rule_name, match=match, rule=rule,
                              parent=graph)
        cand_graph = candidate.materialise()
        if cand_graph is None:
            out.append((index, EvalResult(False, 0.0, "", 0)))
            continue
        cand_hash = cand_graph.structural_hash()
        if cost_model is not None:
            if parent_cost is not None:
                cost = cost_model.estimate_delta(graph, cand_graph,
                                                 parent_cost=parent_cost)
            else:
                cost = cost_model.estimate(cand_graph)
        elif latency_source is not None:
            cost = latency_source.latency_ms(cand_graph)
        else:
            cost = 0.0
        out.append((index, EvalResult(True, cost, cand_hash,
                                      cand_graph.num_nodes)))
    return out


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

class _WorkerSession:
    """Per-search state held inside one worker process."""

    __slots__ = ("graphs", "ruleset", "cost_model", "latency_source")

    def __init__(self, base: Graph, ruleset: RuleSet, cost_model,
                 latency_source) -> None:
        self.graphs: Dict[int, Graph] = {0: base}
        self.ruleset = ruleset
        self.cost_model = cost_model
        self.latency_source = latency_source
        self._warm(base)

    def _warm(self, graph: Graph) -> None:
        # Populate the replica's per-node cost table so candidate deltas
        # recompute only the nodes their rewrite touched — the same cache
        # state the searcher-side graph is in.
        if self.cost_model is not None:
            self.cost_model.estimate_cached(graph)

    def install(self, key: int, parent_key: int, payload: bytes) -> None:
        parent = self.graphs[parent_key]
        child = apply_delta(parent, payload)
        # Seed the child's cost table from the parent replica (they share
        # unchanged node objects but not cache tables).
        if self.cost_model is not None:
            self.cost_model.estimate_delta(parent, child)
        self.graphs[key] = child


def _worker_main(conn) -> None:
    """Request/reply loop of one pool worker (runs in a child process)."""
    sessions: Dict[int, _WorkerSession] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        try:
            if kind == "eval":
                _, sid, key, parent_cost, items = message
                session = sessions[sid]
                start = time.perf_counter()
                results = evaluate_candidates_inline(
                    session.graphs[key], session.ruleset, items,
                    cost_model=session.cost_model,
                    latency_source=session.latency_source,
                    parent_cost=parent_cost)
                conn.send(("ok", results, time.perf_counter() - start))
            elif kind == "graph":
                _, sid, key, parent_key, payload = message
                sessions[sid].install(key, parent_key, payload)
                conn.send(("ok", None, 0.0))
            elif kind == "matches":
                _, sid, key, rule_names = message
                session = sessions[sid]
                graph = session.graphs[key]
                start = time.perf_counter()
                found = [(name, session.ruleset.rule(name).find_matches(graph))
                         for name in rule_names]
                conn.send(("ok", found, time.perf_counter() - start))
            elif kind == "cost":
                _, sid, keys = message
                session = sessions[sid]
                start = time.perf_counter()
                costs = [session.cost_model.estimate_cached(
                    session.graphs[key]) for key in keys]
                conn.send(("ok", costs, time.perf_counter() - start))
            elif kind == "open":
                _, sid, base_payload, ruleset, cost_model, latency = message
                sessions[sid] = _WorkerSession(
                    decode_graph(base_payload), ruleset, cost_model, latency)
                conn.send(("ok", None, 0.0))
            elif kind == "close":
                sessions.pop(message[1], None)
                conn.send(("ok", None, 0.0))
            elif kind == "ping":
                conn.send(("ok", os.getpid(), 0.0))
            elif kind == "stop":
                conn.send(("ok", None, 0.0))
                return
            else:
                conn.send(("err", f"unknown message kind {kind!r}", 0.0))
        except Exception as exc:  # must answer every request exactly once
            try:
                conn.send(("err", repr(exc), 0.0))
            except (OSError, ValueError):
                return


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("process", "conn", "alive")

    def __init__(self, ctx) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main, args=(child_conn,),
                                   daemon=True, name="repro-pool-worker")
        self.process.start()
        child_conn.close()
        self.alive = True

    def request(self, message) -> Tuple[object, float]:
        """One round trip; raises on transport failure (caller marks dead)."""
        self.conn.send(message)
        reply = self.conn.recv()
        if reply[0] == "err":
            raise RuntimeError(f"pool worker failed: {reply[1]}")
        return reply[1], reply[2]

    def send(self, message) -> None:
        self.conn.send(message)

    def recv(self) -> Tuple[object, float]:
        reply = self.conn.recv()
        if reply[0] == "err":
            raise RuntimeError(f"pool worker failed: {reply[1]}")
        return reply[1], reply[2]

    def stop(self) -> None:
        if self.alive:
            try:
                self.conn.send(("stop",))
                self.conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
        self.alive = False
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=2)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2)


# ---------------------------------------------------------------------------
# Pool + session
# ---------------------------------------------------------------------------

class WorkerPool:
    """A persistent, prewarmed pool of search-evaluation processes.

    Parameters
    ----------
    num_workers:
        Worker process count; defaults to ``os.cpu_count()``.
    context:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (cheap start, inherits imported modules — rules defined in
        the calling process remain picklable by reference), else ``"spawn"``.
    prewarm:
        Round-trip a ping to every worker before returning, so the first
        search never pays process start-up inside its timed region.
    profiler:
        Optional shared :class:`~repro.service.profiling.StageProfiler`;
        a fresh one is created when omitted (see :attr:`profiler`).
    """

    def __init__(self, num_workers: Optional[int] = None,
                 context: Optional[str] = None, prewarm: bool = True,
                 profiler: Optional["StageProfiler"] = None):
        from ..service.profiling import StageProfiler
        start = time.perf_counter()
        self.num_workers = int(num_workers or os.cpu_count() or 1)
        if context is None:
            context = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                       else "spawn")
        self._ctx = multiprocessing.get_context(context)
        self.profiler = profiler if profiler is not None else StageProfiler()
        self._workers: List[_Worker] = []
        self._session_ids = itertools.count(1)
        self._closed = False
        for _ in range(self.num_workers):
            try:
                self._workers.append(_Worker(self._ctx))
            except OSError:  # pragma: no cover - fork failure
                break
        if prewarm:
            self._prewarm()
        self.spinup_s = time.perf_counter() - start
        self.profiler.add("spinup", self.spinup_s)

    def _prewarm(self) -> None:
        for worker in self._workers:
            try:
                worker.request(("ping",))
            except (OSError, EOFError, BrokenPipeError, RuntimeError):
                worker.alive = False

    # ------------------------------------------------------------------
    def alive_workers(self) -> List[_Worker]:
        return [w for w in self._workers if w.alive]

    @property
    def healthy(self) -> bool:
        """At least one worker is accepting requests."""
        return not self._closed and any(w.alive for w in self._workers)

    def start_search(self, base_graph: Graph, ruleset: RuleSet,
                     cost_model=None, latency_source=None) -> "PoolSession":
        """Open a session: ship ``base_graph`` (once) plus the evaluation
        config to every live worker.  Always returns a session; check
        :attr:`PoolSession.healthy` — an unhealthy session falls back to
        in-process evaluation transparently."""
        return PoolSession(self, next(self._session_ids), base_graph,
                           ruleset, cost_model, latency_source)

    def close(self) -> None:
        """Stop every worker process (idempotent)."""
        self._closed = True
        for worker in self._workers:
            worker.stop()
        self._workers = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"WorkerPool(workers={len(self.alive_workers())}/"
                f"{self.num_workers}, closed={self._closed})")


class PoolSession:
    """One search's window onto the pool: graph replicas + sharded work.

    The session tracks which graphs each worker holds (every shipped graph is
    retained on both sides until the session closes — memory stays modest
    because replicas share unchanged node objects with their parents).  All
    public methods degrade gracefully: transport failures mark the worker
    dead and the affected shard is recomputed in-process with identical
    results.
    """

    def __init__(self, pool: WorkerPool, sid: int, base_graph: Graph,
                 ruleset: RuleSet, cost_model, latency_source):
        self.pool = pool
        self.sid = sid
        self.ruleset = ruleset
        self.cost_model = cost_model
        self.latency_source = latency_source
        self.profiler = pool.profiler
        #: graph object id -> wire key; the companion dict keeps the graphs
        #: alive so object ids can never be recycled mid-session.
        self._keys: Dict[int, int] = {id(base_graph): 0}
        self._graphs: Dict[int, Graph] = {0: base_graph}
        self._next_key = 1
        self.fallback_batches = 0
        self.bytes_shipped = 0
        self._members: List[_Worker] = []
        with self.profiler.stage("serialise"):
            payload = encode_graph(base_graph)
        self.bytes_shipped += len(payload)
        with self.profiler.stage("dispatch"):
            for worker in pool.alive_workers():
                try:
                    worker.request(("open", sid, payload, ruleset,
                                    cost_model, latency_source))
                    self._members.append(worker)
                except (OSError, EOFError, BrokenPipeError, RuntimeError,
                        TypeError, AttributeError):
                    # Transport death or unpicklable config: this worker
                    # cannot serve the session.
                    pass

    @property
    def healthy(self) -> bool:
        return any(w.alive for w in self._members)

    def _live(self) -> List[_Worker]:
        return [w for w in self._members if w.alive]

    # ------------------------------------------------------------------
    def ensure_graph(self, graph: Graph, parent: Optional[Graph]) -> bool:
        """Make sure every live worker holds a replica of ``graph``.

        ``parent`` must be a graph the session has already shipped (the
        search's previous current graph / the candidate's origin); ``graph``
        travels as a delta against it.  Returns False when the graph cannot
        be shipped (no live workers, unknown parent) — callers then stay on
        the in-process path.
        """
        if id(graph) in self._keys:
            return True
        if parent is None or id(parent) not in self._keys:
            return False
        workers = self._live()
        if not workers:
            return False
        parent_key = self._keys[id(parent)]
        key = self._next_key
        with self.profiler.stage("serialise"):
            payload = encode_delta(parent, graph)
        self.bytes_shipped += len(payload)
        shipped = False
        with self.profiler.stage("dispatch"):
            for worker in workers:
                try:
                    worker.request(("graph", self.sid, key, parent_key,
                                    payload))
                    shipped = True
                except (OSError, EOFError, BrokenPipeError, RuntimeError):
                    worker.alive = False
        if not shipped:
            return False
        self._next_key = key + 1
        self._keys[id(graph)] = key
        self._graphs[key] = graph
        return True

    def ensure_lineage(self, graph: Graph) -> bool:
        """Ship ``graph`` by walking its ``delta_parent`` chain back to an
        already-shipped ancestor (deltas shipped oldest-first).

        Used by callers that did not track parents explicitly (e.g. the RL
        environment, whose current graph descends from the episode's initial
        graph by per-step copies).  Returns False when the chain is broken
        (a parent was garbage-collected) before reaching shipped ground.
        """
        chain: List[Graph] = []
        node: Optional[Graph] = graph
        while node is not None and id(node) not in self._keys:
            chain.append(node)
            node = node.delta_parent()
        if node is None:
            return not chain
        for member in reversed(chain):
            if not self.ensure_graph(member, member.delta_parent()):
                return False
        return True

    # ------------------------------------------------------------------
    def evaluate(self, graph: Graph, candidates: Sequence[Candidate],
                 parent_cost: Optional[float] = None) -> List[EvalResult]:
        """Shard ``candidates`` of ``graph`` across workers; merge by index.

        The returned list is index-aligned with ``candidates`` and identical
        (bit-for-bit, float64) to what serial evaluation would produce.
        ``graph`` must have been shipped via :meth:`ensure_graph` (or be the
        base graph); otherwise everything is evaluated in-process.
        """
        items = [(i, c.rule_name, c.match) for i, c in enumerate(candidates)]
        merged: List[Optional[EvalResult]] = [None] * len(items)
        key = self._keys.get(id(graph))
        workers = self._live() if key is not None else []
        shards: List[Tuple[_Worker, List[Tuple[int, str, Match]]]] = []
        if workers:
            per_worker: List[List[Tuple[int, str, Match]]] = [
                [] for _ in workers]
            for i, item in enumerate(items):
                per_worker[i % len(workers)].append(item)
            shards = [(w, shard) for w, shard in zip(workers, per_worker)
                      if shard]
        pending: List[Tuple[_Worker, List[Tuple[int, str, Match]]]] = []
        with self.profiler.stage("dispatch"):
            for worker, shard in shards:
                try:
                    worker.send(("eval", self.sid, key, parent_cost, shard))
                    pending.append((worker, shard))
                except (OSError, BrokenPipeError):
                    worker.alive = False
                    self.fallback_batches += 1
                    self._fallback(graph, shard, parent_cost, merged)
            for worker, shard in pending:
                try:
                    results, compute_s = worker.recv()
                except (OSError, EOFError, BrokenPipeError, RuntimeError):
                    worker.alive = False
                    self.fallback_batches += 1
                    self._fallback(graph, shard, parent_cost, merged)
                    continue
                self.profiler.add("compute", compute_s)
                for index, result in results:
                    merged[index] = result
        leftover = [item for item in items if merged[item[0]] is None]
        if leftover:
            if shards:
                self.fallback_batches += 1
            self._fallback(graph, leftover, parent_cost, merged)
        return [result for result in merged]  # type: ignore[misc]

    def _fallback(self, graph: Graph, shard, parent_cost, merged) -> None:
        with self.profiler.stage("compute"):
            for index, result in evaluate_candidates_inline(
                    graph, self.ruleset, shard, cost_model=self.cost_model,
                    latency_source=self.latency_source,
                    parent_cost=parent_cost):
                merged[index] = result

    # ------------------------------------------------------------------
    def find_matches(self, graph: Graph,
                     rule_names: Sequence[str]) -> Dict[str, List[Match]]:
        """Shard per-rule match finding on ``graph`` across workers.

        Replicas enumerate nodes in the same (ascending-id) order as the
        original, so the returned matches are exactly what serial
        ``rule.find_matches`` yields.  Rules whose worker died are matched
        in-process.
        """
        out: Dict[str, List[Match]] = {}
        key = self._keys.get(id(graph))
        workers = self._live() if key is not None else []
        pending: List[Tuple[_Worker, List[str]]] = []
        if workers:
            per_worker: List[List[str]] = [[] for _ in workers]
            for i, name in enumerate(rule_names):
                per_worker[i % len(workers)].append(name)
            with self.profiler.stage("dispatch"):
                for worker, names in zip(workers, per_worker):
                    if not names:
                        continue
                    try:
                        worker.send(("matches", self.sid, key, names))
                        pending.append((worker, names))
                    except (OSError, BrokenPipeError):
                        worker.alive = False
                for worker, names in pending:
                    try:
                        found, compute_s = worker.recv()
                    except (OSError, EOFError, BrokenPipeError, RuntimeError):
                        worker.alive = False
                        continue
                    self.profiler.add("compute", compute_s)
                    for name, matches in found:
                        out[name] = matches
        missing = [name for name in rule_names if name not in out]
        if missing:
            if workers:
                self.fallback_batches += 1
            with self.profiler.stage("compute"):
                for name in missing:
                    out[name] = self.ruleset.rule(name).find_matches(graph)
        return out

    # ------------------------------------------------------------------
    def cost_graphs(self, graphs: Sequence[Graph],
                    parents: Sequence[Optional[Graph]]) -> List[float]:
        """Batched cost-model estimates for already-materialised graphs.

        Each graph is shipped (as a delta against its parent) if needed and
        costed worker-side with ``estimate_cached`` — bit-for-bit equal to a
        local estimate.  Used by the RL environment's batched candidate
        costing.  Graphs that cannot be shipped are costed in-process.
        """
        costs: List[Optional[float]] = [None] * len(graphs)
        assignments: Dict[_Worker, List[Tuple[int, int]]] = {}
        workers = self._live() if self.cost_model is not None else []
        if workers:
            for i, (graph, parent) in enumerate(zip(graphs, parents)):
                if not self.ensure_graph(graph, parent):
                    continue
                worker = workers[i % len(workers)]
                if not worker.alive:
                    continue
                assignments.setdefault(worker, []).append(
                    (i, self._keys[id(graph)]))
            pending = []
            with self.profiler.stage("dispatch"):
                for worker, pairs in assignments.items():
                    try:
                        worker.send(("cost", self.sid,
                                     [key for _, key in pairs]))
                        pending.append((worker, pairs))
                    except (OSError, BrokenPipeError):
                        worker.alive = False
                for worker, pairs in pending:
                    try:
                        values, compute_s = worker.recv()
                    except (OSError, EOFError, BrokenPipeError, RuntimeError):
                        worker.alive = False
                        continue
                    self.profiler.add("compute", compute_s)
                    for (i, _), value in zip(pairs, values):
                        costs[i] = value
        with self.profiler.stage("compute"):
            for i, graph in enumerate(graphs):
                if costs[i] is None:
                    costs[i] = self.cost_model.estimate_cached(graph)
        return [float(c) for c in costs]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release replicas on every worker (the pool itself stays up)."""
        for worker in self._live():
            try:
                worker.request(("close", self.sid))
            except (OSError, EOFError, BrokenPipeError, RuntimeError):
                worker.alive = False
        self._keys.clear()
        self._graphs.clear()

    def __enter__(self) -> "PoolSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Shared default pool
# ---------------------------------------------------------------------------

def open_session(parallel: bool, pool: Optional[WorkerPool],
                 num_workers: Optional[int], graph: Graph, ruleset: RuleSet,
                 cost_model=None, latency_source=None
                 ) -> Optional[PoolSession]:
    """Resolve an optimiser's ``parallel=`` / ``pool=`` knobs into a session.

    Returns ``None`` (→ serial evaluation) when parallelism is off or no
    worker can serve the session; otherwise a healthy :class:`PoolSession`
    the caller must close.  An explicit ``pool=`` implies ``parallel=True``.
    """
    if pool is None:
        if not parallel:
            return None
        pool = shared_pool(num_workers)
    if not pool.healthy:
        return None
    session = pool.start_search(graph, ruleset, cost_model=cost_model,
                                latency_source=latency_source)
    if not session.healthy:
        session.close()
        return None
    return session


_SHARED: Dict[int, WorkerPool] = {}


def shared_pool(num_workers: Optional[int] = None) -> WorkerPool:
    """The process-wide persistent pool for ``num_workers`` (created once).

    Optimisers constructed with ``parallel=True`` but no explicit ``pool=``
    use this, so repeated searches amortise worker start-up — the
    "persistent, prewarmed" part of the design.  Closed automatically at
    interpreter exit.
    """
    size = int(num_workers or os.cpu_count() or 1)
    pool = _SHARED.get(size)
    if pool is None or not pool.healthy:
        pool = _SHARED[size] = WorkerPool(num_workers=size)
    return pool


def close_shared_pool() -> None:
    """Tear down every shared pool (tests; also runs atexit)."""
    for pool in _SHARED.values():
        pool.close()
    _SHARED.clear()


atexit.register(close_shared_pool)
