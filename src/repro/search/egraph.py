"""A bounded graph-space explorer standing in for Tensat's e-graph.

Tensat represents the space of equivalent graphs compactly in an e-graph and
extracts the cheapest representative.  A full congruence-closure e-graph over
our mutable dataflow IR is out of scope; instead :class:`GraphSpace` keeps an
explicit population of distinct (structurally hashed) graphs grown by rewrite
application rounds.  It preserves the *behavioural* properties Tensat's
evaluation depends on:

* exploration is bounded by a node budget and an iteration budget, so the
  space is usually **not** saturated (exactly as the paper reports for the
  real system),
* "multi-pattern" rules (the merge rules, which blow up the e-graph on
  transformer graphs) are only applied for the first ``multi_pattern_rounds``
  rounds, mirroring Tensat's ``k`` parameter,
* extraction picks the representative with the lowest cost-model estimate,
  because per-node cost extraction cannot use an end-to-end signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..cost.cost_model import CostModel
from ..ir.graph import Graph
from ..rules.base import RuleSet

__all__ = ["GraphSpace", "SaturationStats"]

#: Rule categories treated as "multi-pattern" (they match pairs of operators
#: and therefore grow the space combinatorially, like Tensat's multi-pattern
#: rewrites do for matrix multiplications).
MULTI_PATTERN_CATEGORIES = {"merge"}


@dataclass
class SaturationStats:
    """Diagnostics of one saturation run."""

    rounds: int = 0
    graphs_explored: int = 0
    total_nodes: int = 0
    saturated: bool = False
    node_budget_hit: bool = False
    applied_rules: Dict[str, int] = field(default_factory=dict)


class GraphSpace:
    """Bounded exploration of the rewrite closure of a graph."""

    def __init__(self, ruleset: RuleSet,
                 node_limit: int = 20000,
                 round_limit: int = 10,
                 multi_pattern_rounds: int = 1,
                 per_round_cap: int = 200):
        self.ruleset = ruleset
        self.node_limit = int(node_limit)
        self.round_limit = int(round_limit)
        self.multi_pattern_rounds = int(multi_pattern_rounds)
        self.per_round_cap = int(per_round_cap)

    # ------------------------------------------------------------------
    def explore(self, graph: Graph,
                on_round: Optional[Callable[
                    [int, List[Tuple[Graph, List[str]]]], None]] = None,
                session=None,
                ) -> Tuple[List[Tuple[Graph, List[str]]], SaturationStats]:
        """Grow the space from ``graph``.

        ``on_round(round_number, population)`` — when given — is invoked
        after every completed saturation round with the 1-based round
        number and the population grown so far; the Tensat optimiser uses
        it to stream per-round progress.

        ``session`` — an optional :class:`~repro.search.parallel.PoolSession`
        opened on ``graph`` — shards each frontier graph's candidate
        materialisation + hashing across the worker pool.  Admission
        decisions (dedup, node budget, per-round cap) replay in strict
        enumeration order on the merged results, so the population is
        identical to a serial run; admitted graphs are re-materialised
        locally and shipped to workers as deltas against their parent.

        Returns the population as ``(graph, applied-rule-names)`` pairs (the
        root graph is always first) plus run statistics.
        """
        stats = SaturationStats()
        population: List[Tuple[Graph, List[str]]] = [(graph, [])]
        # Parent of each population member — the frontier graph its rewrite
        # applied to.  Parents are always processed (hence pool-shipped)
        # before their children become frontier, so one-level deltas suffice.
        parents: List[Optional[Graph]] = [None]
        hashes: Set[str] = {graph.structural_hash()}
        total_nodes = graph.num_nodes
        frontier = [0]  # indices into population

        for round_index in range(self.round_limit):
            stats.rounds = round_index + 1
            new_frontier: List[int] = []
            additions = 0
            allow_multi = round_index < self.multi_pattern_rounds
            for idx in frontier:
                current, applied = population[idx]
                rules = [rule for rule in self.ruleset
                         if allow_multi
                         or rule.category not in MULTI_PATTERN_CATEGORIES]
                for rule, candidate, h, num_nodes in self._evaluations(
                        current, parents[idx], rules, session):
                    if h is None:  # failed to apply
                        continue
                    if h in hashes:
                        continue
                    if total_nodes + num_nodes > self.node_limit:
                        stats.node_budget_hit = True
                        break
                    if additions >= self.per_round_cap:
                        break
                    cand_graph = candidate.materialise()
                    if cand_graph is None:  # pragma: no cover
                        continue
                    hashes.add(h)
                    population.append((cand_graph, applied + [rule.name]))
                    parents.append(current)
                    new_frontier.append(len(population) - 1)
                    total_nodes += num_nodes
                    additions += 1
                    stats.applied_rules[rule.name] = (
                        stats.applied_rules.get(rule.name, 0) + 1)
                if stats.node_budget_hit or additions >= self.per_round_cap:
                    break
            if on_round is not None:
                on_round(round_index + 1, population)
            if not new_frontier:
                stats.saturated = not stats.node_budget_hit
                break
            if stats.node_budget_hit:
                break
            frontier = new_frontier

        stats.graphs_explored = len(population)
        stats.total_nodes = total_nodes
        return population, stats

    def _evaluations(self, current: Graph, parent: Optional[Graph],
                     rules, session):
        """Yield ``(rule, candidate, hash-or-None, num_nodes)`` for every
        rewrite candidate of ``current``, in enumeration order.

        Serial mode materialises inline; pool mode ships ``current`` as a
        delta and lets workers materialise + hash the candidates, yielding
        the merged results in the same order.
        """
        if session is None:
            for rule in rules:
                for candidate in rule.lazy_candidates(current):
                    cand_graph = candidate.materialise()
                    if cand_graph is None:
                        yield rule, candidate, None, 0
                    else:
                        yield (rule, candidate, cand_graph.structural_hash(),
                               cand_graph.num_nodes)
            return
        session.ensure_graph(current, parent)
        cand_list = []
        rule_of = []
        for rule in rules:
            for candidate in rule.lazy_candidates(current):
                cand_list.append(candidate)
                rule_of.append(rule)
        results = session.evaluate(current, cand_list)
        for rule, candidate, res in zip(rule_of, cand_list, results):
            if not res.ok:
                yield rule, candidate, None, 0
            else:
                yield rule, candidate, res.structural_hash, res.num_nodes

    # ------------------------------------------------------------------
    def extract(self, population: List[Tuple[Graph, List[str]]],
                cost_model: CostModel) -> Tuple[Graph, List[str], float]:
        """Pick the representative with the lowest cost-model estimate.

        Every population member descends from the root by graph copies, so
        the cached estimate only re-derives the nodes its rewrites touched
        (bit-for-bit equal to a full estimate).
        """
        best_graph, best_rules = population[0]
        best_cost = cost_model.estimate_cached(best_graph)
        for candidate, rules in population[1:]:
            cost = cost_model.estimate_cached(candidate)
            if cost < best_cost:
                best_graph, best_rules, best_cost = candidate, rules, cost
        return best_graph, best_rules, best_cost
