"""Random-walk baseline: apply uniformly random rewrites for a fixed horizon.

Used as a sanity baseline in ablation benchmarks — it shares the RL agent's
action space (one candidate per step, E2E-evaluated at the end) but has no
learning, so it isolates how much of X-RLflow's gain comes from learning
versus from merely being allowed to take non-greedy steps.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..cost.cost_model import CostModel
from ..cost.e2e import E2ESimulator
from ..ir.graph import Graph
from ..rules.base import Candidate, RuleSet
from ..rules.rulesets import default_ruleset
from .parallel import WorkerPool, open_session
from .result import SearchResult, resolve_latency_source, timed

__all__ = ["RandomSearchOptimizer"]


class RandomSearchOptimizer:
    """Repeated random rewrite walks, keeping the best end graph seen.

    Parameters
    ----------
    ruleset:
        Rewrite rules to draw random candidates from.
    e2e:
        End-to-end simulator; the walk's objective (each finished walk's
        end graph is measured, best-of-walks wins).
    cost_model:
        Used only to report initial/final cost-model estimates.
    num_walks:
        Independent walks from the input graph.
    horizon:
        Rewrite steps per walk (walks stop early when no rule applies).
    seed:
        RNG seed; fixed seed → deterministic walks.
    progress_callback:
        Optional ``f(iteration, best_cost, best_graph_fp)`` invoked once
        per finished walk with the best simulated end-to-end latency so
        far; the serving layer uses it to stream job progress.
    cost_source:
        Objective provider: ``"simulated"`` (default) scores each walk's
        end graph with the e2e simulator; ``"measured"`` executes it with
        the numpy backend and uses wall-clock — here the knob changes the
        *search objective*, not just reporting.
    executor:
        Executor backing ``cost_source="measured"``.
    parallel:
        Shard each step's per-rule match finding across the persistent
        worker pool (see :mod:`repro.search.parallel`).  Matches come back
        per rule and are reassembled in rule order, so the candidate list
        — and therefore the RNG stream and the whole walk — is identical
        to a serial run.
    num_workers:
        Pool size when ``parallel=True`` and no ``pool`` is given.
    pool:
        Explicit :class:`~repro.search.parallel.WorkerPool` to use
        (implies ``parallel=True``).
    """

    name = "random"

    #: Per-walk progress hook; also settable after construction
    #: (the service worker assigns its event sink here).
    progress_callback: Optional[Callable[[int, float, str], None]] = None

    def __init__(self, ruleset: Optional[RuleSet] = None,
                 e2e: Optional[E2ESimulator] = None,
                 cost_model: Optional[CostModel] = None,
                 num_walks: int = 5,
                 horizon: int = 30,
                 seed: int = 0,
                 progress_callback: Optional[
                     Callable[[int, float, str], None]] = None,
                 cost_source: str = "simulated",
                 executor: Optional[object] = None,
                 parallel: bool = False,
                 num_workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None):
        self.parallel = bool(parallel)
        self.num_workers = num_workers
        self.pool = pool
        self.ruleset = ruleset or default_ruleset()
        self.e2e = e2e or E2ESimulator()
        self.cost_model = cost_model or CostModel()
        self.num_walks = int(num_walks)
        self.horizon = int(horizon)
        self.progress_callback = progress_callback
        self.cost_source = str(cost_source)
        self.latency_source = resolve_latency_source(
            self.cost_source, self.e2e, executor)
        self._rng = np.random.default_rng(seed)

    def optimise(self, graph: Graph, model_name: str = "") -> SearchResult:
        """Run ``num_walks`` random walks and keep the best end graph.

        Parameters
        ----------
        graph:
            The input graph; never mutated.
        model_name:
            Label for the result; defaults to ``graph.name``.

        Returns
        -------
        SearchResult
            Best-of-walks by simulated end-to-end latency (the input graph
            itself if no walk improved on it), with ``stats`` recording
            walks taken and total steps.
        """
        with timed() as elapsed:
            initial_latency = self.latency_source.latency_ms(graph)
            best_graph, best_latency, best_rules = graph, initial_latency, []
            steps_total = 0
            progress = self.progress_callback
            # Workers only find matches (the RNG draw and the single
            # materialisation stay local), so no cost model ships.
            session = open_session(self.parallel, self.pool,
                                   self.num_workers, graph, self.ruleset)
            rule_names = [rule.name for rule in self.ruleset.rules]
            for walk_index in range(self.num_walks):
                current, applied, previous = graph, [], None
                for _ in range(self.horizon):
                    # Lazy candidates: only the randomly chosen one is ever
                    # materialised; the rest never copy the graph.
                    if session is not None:
                        session.ensure_graph(current, previous)
                        matches = session.find_matches(current, rule_names)
                        candidates = [
                            Candidate(rule_name=rule.name, match=match,
                                      rule=rule, parent=current)
                            for rule in self.ruleset.rules
                            for match in matches[rule.name]]
                    else:
                        candidates = self.ruleset.lazy_candidates(current)
                    chosen = None
                    while candidates:
                        index = int(self._rng.integers(len(candidates)))
                        chosen = candidates[index]
                        if chosen.materialise() is not None:
                            break
                        # Match failed to apply (shape corner case): discard
                        # it and redraw among the remaining candidates.
                        candidates.pop(index)
                        chosen = None
                    if chosen is None:
                        break
                    previous = current
                    current, applied = chosen.graph, applied + [chosen.rule_name]
                    steps_total += 1
                latency = self.latency_source.latency_ms(current)
                if latency < best_latency:
                    best_graph, best_latency, best_rules = current, latency, applied
                if progress is not None:
                    progress(walk_index + 1, float(best_latency),
                             best_graph.structural_hash())
            stats = {"steps": float(steps_total),
                     "walks": float(self.num_walks),
                     "measured_latency":
                         1.0 if self.cost_source == "measured" else 0.0,
                     "parallel": 1.0 if session is not None else 0.0}
            if session is not None:
                stats["fallback_batches"] = float(session.fallback_batches)
                stats["bytes_shipped"] = float(session.bytes_shipped)
                session.close()
            return SearchResult(
                optimiser=self.name,
                model=model_name or graph.name,
                initial_graph=graph,
                final_graph=best_graph,
                initial_latency_ms=initial_latency,
                final_latency_ms=best_latency,
                initial_cost_ms=self.cost_model.estimate(graph),
                final_cost_ms=self.cost_model.estimate(best_graph),
                optimisation_time_s=elapsed(),
                applied_rules=best_rules,
                stats=stats,
            )
