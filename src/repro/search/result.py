"""Common result type returned by every optimiser in this repository."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.graph import Graph

__all__ = ["SearchResult", "timed", "resolve_latency_source"]


def resolve_latency_source(cost_source: str, e2e, executor=None):
    """Map an optimiser's ``cost_source`` knob to a latency provider.

    ``"simulated"`` returns ``e2e`` unchanged; ``"measured"`` wraps the
    numpy executor in :class:`~repro.exec.MeasuredLatency`, so reported
    latencies are executed wall-clock instead of the analytic model.
    Anything else raises ``ValueError``.  Both providers expose the same
    ``latency_ms(graph)`` interface.
    """
    if cost_source == "simulated":
        return e2e
    if cost_source == "measured":
        from ..exec import MeasuredLatency
        if hasattr(executor, "latency_ms"):  # already a latency source
            return executor
        return MeasuredLatency(executor)
    raise ValueError(
        f"unknown cost_source {cost_source!r} (use 'simulated' or 'measured')")


@dataclass
class SearchResult:
    """Outcome of one optimisation run.

    ``initial_latency_ms`` / ``final_latency_ms`` are end-to-end simulator
    measurements (the paper's figure of merit); ``initial_cost_ms`` /
    ``final_cost_ms`` are the optimiser's own objective (for cost-model-driven
    optimisers the two differ — that difference is the paper's Table 1).
    """

    optimiser: str
    model: str
    initial_graph: Graph
    final_graph: Graph
    initial_latency_ms: float
    final_latency_ms: float
    initial_cost_ms: float
    final_cost_ms: float
    optimisation_time_s: float
    #: Sequence of rule names applied along the chosen trajectory.
    applied_rules: List[str] = field(default_factory=list)
    #: Free-form per-optimiser diagnostics (candidates explored, episodes, …).
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """End-to-end speedup: initial latency divided by final latency."""
        if self.final_latency_ms <= 0:
            return 1.0
        return self.initial_latency_ms / self.final_latency_ms

    @property
    def speedup_percent(self) -> float:
        """Speedup expressed as a percentage improvement over the input graph."""
        return (self.speedup - 1.0) * 100.0

    def rule_counts(self) -> Dict[str, int]:
        """How many times each rule was applied (Figure 5's heatmap rows)."""
        counts: Dict[str, int] = {}
        for name in self.applied_rules:
            counts[name] = counts.get(name, 0) + 1
        return counts

    def summary(self) -> str:
        return (f"{self.optimiser} on {self.model}: "
                f"{self.initial_latency_ms:.3f} ms -> {self.final_latency_ms:.3f} ms "
                f"({self.speedup_percent:+.1f}%) in {self.optimisation_time_s:.2f}s, "
                f"{len(self.applied_rules)} substitutions")


@contextmanager
def timed():
    """Context manager yielding a callable that returns elapsed seconds."""
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
