"""Baseline optimisers: TASO (greedy backtracking), Tensat (equality
saturation), PET (partially-equivalent transformations) and random search."""

from .result import SearchResult
from .greedy import GreedyOptimizer, TASOOptimizer
from .egraph import GraphSpace, SaturationStats
from .tensat import TensatOptimizer
from .pet import ConvToWinogradGemm, PETOptimizer, pet_ruleset
from .random_search import RandomSearchOptimizer

__all__ = [
    "SearchResult",
    "GreedyOptimizer", "TASOOptimizer",
    "GraphSpace", "SaturationStats", "TensatOptimizer",
    "ConvToWinogradGemm", "PETOptimizer", "pet_ruleset",
    "RandomSearchOptimizer",
]
