"""Baseline optimisers: TASO (greedy backtracking), Tensat (equality
saturation), PET (partially-equivalent transformations) and random search."""

from .result import SearchResult
from .greedy import GreedyOptimizer, TASOOptimizer
from .egraph import GraphSpace, SaturationStats
from .tensat import TensatOptimizer
from .pet import ConvToWinogradGemm, PETOptimizer, pet_ruleset
from .random_search import RandomSearchOptimizer
from .parallel import (PoolSession, WorkerPool, close_shared_pool,
                       shared_pool)

__all__ = [
    "SearchResult",
    "GreedyOptimizer", "TASOOptimizer",
    "GraphSpace", "SaturationStats", "TensatOptimizer",
    "ConvToWinogradGemm", "PETOptimizer", "pet_ruleset",
    "RandomSearchOptimizer",
    "PoolSession", "WorkerPool", "shared_pool", "close_shared_pool",
    "get_optimiser", "available_optimisers",
]


def get_optimiser(name: str, **config):
    """Instantiate a registered optimiser by name.

    Thin hookup into :mod:`repro.service.registry` (imported lazily so the
    search package stays importable on its own) — the same dispatch the
    optimisation service uses for its jobs.
    """
    from ..service.registry import create_optimiser
    return create_optimiser(name, **config)


def available_optimisers():
    """Names accepted by :func:`get_optimiser` and the optimisation service."""
    from ..service.registry import list_optimisers
    return list_optimisers()
