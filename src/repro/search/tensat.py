"""Tensat-style equality-saturation optimiser (baseline for Figure 8)."""

from __future__ import annotations

from typing import Callable, Optional

from ..cost.cost_model import CostModel
from ..cost.e2e import E2ESimulator
from ..ir.graph import Graph
from ..rules.base import RuleSet
from ..rules.rulesets import default_ruleset
from .egraph import GraphSpace
from .parallel import WorkerPool, open_session
from .result import SearchResult, resolve_latency_source, timed

__all__ = ["TensatOptimizer"]


class TensatOptimizer:
    """Grow a bounded rewrite space, then extract the cheapest graph.

    Mirrors Tensat's published defaults: a node budget (10k nodes in the
    artifact), an iteration budget, and the multi-pattern application limit
    ``k`` (1 by default) that caps how many rounds the combinatorially
    explosive merge rules participate in.  Extraction uses the per-node cost
    model — an end-to-end latency signal cannot be used for extraction, which
    is one of the limitations the paper discusses.

    Parameters
    ----------
    ruleset:
        Rewrite rules to saturate over (defaults to the curated set).
    cost_model:
        Per-node cost model used for extraction.
    e2e:
        End-to-end simulator used only for *reporting* true latency of the
        initial and extracted graphs.
    node_limit:
        Stop growing the rewrite space beyond this many total nodes.
    round_limit:
        Maximum saturation rounds.
    multi_pattern_rounds:
        Rounds in which the explosive multi-pattern (merge) rules fire —
        the paper's ``k``.
    per_round_cap:
        Maximum candidates admitted into the space per round.
    progress_callback:
        Optional ``f(iteration, best_cost, best_graph_fp)`` invoked once
        per saturation round with the cheapest extraction candidate so
        far; the serving layer uses it to stream job progress.
    cost_source:
        ``"simulated"`` (default) reports initial/final latency from the
        e2e simulator; ``"measured"`` executes both graphs with the numpy
        backend and reports wall-clock.
    executor:
        Executor backing ``cost_source="measured"``.
    parallel:
        Shard each round's candidate materialisation + hashing across the
        persistent worker pool (see :mod:`repro.search.parallel`).
        Admission replays in enumeration order, so the explored population
        — and therefore the extraction — is identical to a serial run.
    num_workers:
        Pool size when ``parallel=True`` and no ``pool`` is given.
    pool:
        Explicit :class:`~repro.search.parallel.WorkerPool` to use
        (implies ``parallel=True``).
    """

    name = "tensat"

    #: Per-round progress hook; also settable after construction
    #: (the service worker assigns its event sink here).
    progress_callback: Optional[Callable[[int, float, str], None]] = None

    def __init__(self, ruleset: Optional[RuleSet] = None,
                 cost_model: Optional[CostModel] = None,
                 e2e: Optional[E2ESimulator] = None,
                 node_limit: int = 20000,
                 round_limit: int = 6,
                 multi_pattern_rounds: int = 1,
                 per_round_cap: int = 150,
                 progress_callback: Optional[
                     Callable[[int, float, str], None]] = None,
                 cost_source: str = "simulated",
                 executor: Optional[object] = None,
                 parallel: bool = False,
                 num_workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None):
        self.parallel = bool(parallel)
        self.num_workers = num_workers
        self.pool = pool
        self.ruleset = ruleset or default_ruleset()
        self.cost_model = cost_model or CostModel()
        self.e2e = e2e or E2ESimulator()
        self.progress_callback = progress_callback
        self.cost_source = str(cost_source)
        self.latency_source = resolve_latency_source(
            self.cost_source, self.e2e, executor)
        self.space = GraphSpace(self.ruleset, node_limit=node_limit,
                                round_limit=round_limit,
                                multi_pattern_rounds=multi_pattern_rounds,
                                per_round_cap=per_round_cap)

    def _round_reporter(self):
        """Adapt :meth:`GraphSpace.explore`'s per-round hook to the
        ``progress_callback`` signature.

        Tracks the cheapest extraction candidate incrementally (only
        population members added since the previous round are costed; the
        estimates are cached per graph, so the final extraction pass does
        not pay twice).
        """
        callback = self.progress_callback
        if callback is None:
            return None
        state = {"seen": 0, "best_cost": float("inf"), "best_fp": ""}

        def on_round(round_number, population):
            for candidate, _ in population[state["seen"]:]:
                cost = self.cost_model.estimate_cached(candidate)
                if cost < state["best_cost"]:
                    state["best_cost"] = cost
                    state["best_fp"] = candidate.structural_hash()
            state["seen"] = len(population)
            callback(round_number, state["best_cost"], state["best_fp"])

        return on_round

    def optimise(self, graph: Graph, model_name: str = "") -> SearchResult:
        """Saturate the rewrite space around ``graph``, then extract.

        Parameters
        ----------
        graph:
            The input graph; never mutated.
        model_name:
            Label for the result; defaults to ``graph.name``.

        Returns
        -------
        SearchResult
            The cheapest extracted graph, with exploration diagnostics
            (rounds, population size, nodes explored) under ``stats``.
        """
        with timed() as elapsed:
            # Workers only materialise + hash (extraction costs locally),
            # so the session ships no cost model.
            session = open_session(self.parallel, self.pool,
                                   self.num_workers, graph, self.ruleset)
            try:
                population, stats = self.space.explore(
                    graph, on_round=self._round_reporter(), session=session)
            finally:
                if session is not None:
                    session.close()
            best_graph, best_rules, best_cost = self.space.extract(
                population, self.cost_model)
            result = SearchResult(
                optimiser=self.name,
                model=model_name or graph.name,
                initial_graph=graph,
                final_graph=best_graph,
                initial_latency_ms=self.latency_source.latency_ms(graph),
                final_latency_ms=self.latency_source.latency_ms(best_graph),
                initial_cost_ms=self.cost_model.estimate(graph),
                final_cost_ms=best_cost,
                optimisation_time_s=elapsed(),
                applied_rules=best_rules,
                stats={
                    "rounds": float(stats.rounds),
                    "graphs_explored": float(stats.graphs_explored),
                    "total_nodes": float(stats.total_nodes),
                    "saturated": float(stats.saturated),
                    "node_budget_hit": float(stats.node_budget_hit),
                    "measured_latency":
                        1.0 if self.cost_source == "measured" else 0.0,
                    "parallel": 1.0 if session is not None else 0.0,
                    **({"fallback_batches": float(session.fallback_batches),
                        "bytes_shipped": float(session.bytes_shipped)}
                       if session is not None else {}),
                },
            )
        return result
