"""Simplified PET baseline: partially-equivalent transformations.

PET extends TASO's fully-equivalent rewrites with *partially equivalent*
transformations plus automatically generated correction kernels, and uses a
cost model that — as the paper notes — ignores element-wise operators
entirely.  We reproduce both properties:

* an extra rewrite family (:class:`ConvToWinogradGemm`) that switches
  eligible dense 3x3 convolutions to a faster algorithm at the price of a
  correction kernel (an element-wise epilogue that PET's own cost model does
  not even see),
* a :class:`~repro.cost.cost_model.CostModel` configured with
  ``ignore_elementwise=True``.

This is enough to reproduce the qualitative behaviour of the paper's Table 2:
the partially-equivalent trick wins on ResNet-18 (plain dense convolutions)
and backfires on ResNeXt-50 (grouped convolutions are not eligible, and the
element-wise-blind cost model misjudges the correction overhead).
"""

from __future__ import annotations

from typing import List, Optional

from ..cost.cost_model import CostModel
from ..cost.e2e import E2ESimulator
from ..ir.graph import Graph
from ..ir.ops import OpType
from ..rules.base import Match, RewriteRule, RuleSet, replace_all_uses, eliminate_dead_nodes
from ..rules.rulesets import default_ruleset
from .greedy import TASOOptimizer

__all__ = ["ConvToWinogradGemm", "PETOptimizer", "pet_ruleset"]


class ConvToWinogradGemm(RewriteRule):
    """Switch a dense 3x3, stride-1 convolution to a Winograd-style algorithm.

    The transformed convolution performs ~4x fewer multiplications but is
    only *partially* equivalent (numerical error at tile boundaries), so a
    correction Add with a small constant tensor is appended, as PET's
    correction-kernel generator would.
    """

    name = "conv-to-winograd"
    category = "partial"
    exactly_equivalent = False

    #: Dense convolution variants eligible for the Winograd algorithm
    #: (grouped/depthwise convolutions are not).
    _CONV_OPS = (OpType.CONV2D, OpType.FUSED_CONV_BN, OpType.FUSED_CONV_RELU,
                 OpType.FUSED_CONV_BN_RELU)
    anchor_ops = _CONV_OPS

    def find_matches(self, graph: Graph) -> List[Match]:
        matches = []
        for nid, node in self.anchor_nodes(graph):
            if node.attrs.get("algorithm") == "winograd":
                continue
            if int(node.attrs.get("stride", 1)) != 1:
                continue
            edges = graph.in_edges(nid)
            if len(edges) < 2:
                continue
            w_shape = graph.nodes[edges[1].src].output_spec.shape.dims
            if (w_shape[2], w_shape[3]) != (3, 3):
                continue
            matches.append(Match.create(self.name, {"conv": nid}))
        return matches

    def apply(self, graph: Graph, match: Match) -> Graph:
        g = graph.copy()
        conv = match.node("conv")
        inputs = [(e.src, e.src_slot) for e in g.in_edges(conv)]
        attrs = dict(g.nodes[conv].attrs)
        attrs["algorithm"] = "winograd"
        fast = g.add_node(g.nodes[conv].op_type, inputs, attrs,
                          name=f"winograd_{conv}")
        out_shape = g.nodes[fast].output_spec.shape.dims
        correction = g.add_node(OpType.CONSTANT, (), {"shape": out_shape},
                                name=f"correction_{conv}")
        corrected = g.add_node(OpType.ADD, [(fast, 0), (correction, 0)],
                               name=f"corrected_{conv}")
        replace_all_uses(g, conv, corrected)
        # ``corrected`` consumes ``fast``; make sure we did not rewire that edge.
        g.rewire_input(corrected, 0, fast, 0)
        eliminate_dead_nodes(g)
        return g


def pet_ruleset() -> RuleSet:
    """TASO's rules plus PET's partially-equivalent transformation."""
    return default_ruleset().extended([ConvToWinogradGemm()])


class PETOptimizer(TASOOptimizer):
    """Backtracking search over the PET rule set with PET's cost model.

    Identical search mechanics to :class:`TASOOptimizer` (including the
    ``incremental`` flag), with two PET-specific substitutions wired in by
    default:

    Parameters
    ----------
    ruleset:
        Defaults to :func:`pet_ruleset` — the curated TASO rules *plus*
        the partially-equivalent :class:`ConvToWinogradGemm` family.
    cost_model:
        Defaults to ``CostModel(ignore_elementwise=True)``, reproducing
        PET's element-wise-blind objective (so the correction kernels its
        partial rewrites introduce are invisible to the search — the
        paper's Table 2 failure mode on ResNeXt-50).
    e2e:
        End-to-end simulator for *reporting* true latency only.
    **kwargs:
        Forwarded to :class:`TASOOptimizer` (``alpha``,
        ``max_iterations``, ``queue_capacity``, ``incremental``,
        ``progress_callback``).
    """

    name = "pet"

    def __init__(self, ruleset: Optional[RuleSet] = None,
                 cost_model: Optional[CostModel] = None,
                 e2e: Optional[E2ESimulator] = None,
                 **kwargs):
        super().__init__(
            ruleset=ruleset or pet_ruleset(),
            cost_model=cost_model or CostModel(ignore_elementwise=True),
            e2e=e2e,
            **kwargs,
        )
