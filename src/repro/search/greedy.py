"""TASO-style cost-based backtracking search.

TASO's optimiser maintains a priority queue of candidate graphs ordered by
cost-model estimate.  At every step it pops the cheapest graph, generates all
rewrite candidates, and enqueues those whose estimated cost stays within
``alpha`` times the best cost seen so far (``alpha = 1.05`` in the artifact).
The search stops when the queue is exhausted or the iteration budget runs
out, and returns the graph with the lowest *cost-model* estimate.

Because the objective is the cost model — not the true end-to-end latency —
the returned graph can be worse than the input when the cost model is
misleading, which is exactly what the paper observes on SqueezeNet.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..cost.cost_model import CostModel
from ..cost.e2e import E2ESimulator
from ..ir.graph import Graph
from ..rules.base import RuleSet
from ..rules.incremental import IncrementalCandidateEngine
from ..rules.rulesets import default_ruleset
from .parallel import WorkerPool, open_session
from .result import SearchResult, resolve_latency_source, timed

__all__ = ["TASOOptimizer", "GreedyOptimizer"]

#: Signature of a search progress callback:
#: ``f(iteration, best_cost, best_graph_fp)`` — invoked once per search
#: iteration with the best objective value so far and the structural hash
#: of the graph it belongs to.
ProgressCallback = Callable[[int, float, str], None]


class TASOOptimizer:
    """Cost-model-driven backtracking search over rewrite candidates.

    Parameters
    ----------
    ruleset:
        Rewrite rules to search over (defaults to the curated set).
    cost_model:
        The optimisation objective.  TASO ranks candidates with its
        sum-of-operators cost model.
    e2e:
        The end-to-end simulator used only for *reporting* true latency of
        the initial and final graphs (TASO itself never consults it).
    alpha:
        Backtracking tolerance: candidates up to ``alpha`` times the current
        best estimate are kept in the queue.
    max_iterations:
        Upper bound on the number of queue pops (the "budget" knob the paper
        mentions — increasing it rarely helps but costs time).
    queue_capacity:
        Maximum number of graphs kept in the queue at any time.
    incremental:
        When True (the default), candidates are generated lazily and costed
        through :meth:`CostModel.estimate_delta`, which only re-derives the
        nodes each rewrite touched.  The eager path (False) regenerates and
        re-costs every node from scratch; both paths visit the same
        candidates in the same order and produce bit-identical results — the
        flag exists as the equivalence/benchmark baseline.
    progress_callback:
        Optional ``f(iteration, best_cost, best_graph_fp)`` invoked once
        per queue pop with the running best cost-model estimate and the
        structural hash of the best graph; the serving layer uses it to
        stream job progress (see :mod:`repro.service.events`).
    cost_source:
        Where the *reported* initial/final latencies come from:
        ``"simulated"`` (default) asks the end-to-end simulator,
        ``"measured"`` executes the graphs with the numpy backend and
        reports wall-clock (see :class:`repro.exec.MeasuredLatency`).
        The search objective itself stays the TASO cost model either way.
    executor:
        Executor backing ``cost_source="measured"`` (a fresh
        :class:`~repro.exec.NumpyExecutor` when omitted).
    parallel:
        Shard each iteration's candidate evaluation (materialise + hash +
        cost) across the persistent worker pool (see
        :mod:`repro.search.parallel`).  The search trajectory is
        bit-for-bit identical to serial: results are merged in candidate
        index order, replaying exactly the serial loop's decisions.  The
        search objective stays the simulated cost model (workers never run
        the measured executor), so ``parallel=True`` composes with any
        ``cost_source``.
    num_workers:
        Pool size when ``parallel=True`` and no ``pool`` is given
        (defaults to ``os.cpu_count()``).
    pool:
        Explicit :class:`~repro.search.parallel.WorkerPool` to use
        (implies ``parallel=True``); lets many searches share one
        prewarmed pool.
    """

    name = "taso"

    #: Per-iteration progress hook; also settable after construction
    #: (the service worker assigns its event sink here).
    progress_callback: Optional[ProgressCallback] = None

    def __init__(self, ruleset: Optional[RuleSet] = None,
                 cost_model: Optional[CostModel] = None,
                 e2e: Optional[E2ESimulator] = None,
                 alpha: float = 1.05,
                 max_iterations: int = 100,
                 queue_capacity: int = 200,
                 incremental: bool = True,
                 progress_callback: Optional[ProgressCallback] = None,
                 cost_source: str = "simulated",
                 executor: Optional[object] = None,
                 parallel: bool = False,
                 num_workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None):
        self.ruleset = ruleset or default_ruleset()
        self.cost_model = cost_model or CostModel()
        self.e2e = e2e or E2ESimulator()
        self.alpha = float(alpha)
        self.max_iterations = int(max_iterations)
        self.queue_capacity = int(queue_capacity)
        self.incremental = bool(incremental)
        self.progress_callback = progress_callback
        self.cost_source = str(cost_source)
        self.latency_source = resolve_latency_source(
            self.cost_source, self.e2e, executor)
        self.parallel = bool(parallel)
        self.num_workers = num_workers
        self.pool = pool

    # ------------------------------------------------------------------
    def optimise(self, graph: Graph, model_name: str = "") -> SearchResult:
        """Run the backtracking search and return the best graph found.

        Parameters
        ----------
        graph:
            The input graph; never mutated (every rewrite produces a copy).
        model_name:
            Label for the result; defaults to ``graph.name``.

        Returns
        -------
        SearchResult
            The graph with the lowest *cost-model* estimate encountered,
            with true end-to-end latencies of the initial and final graphs
            filled in for reporting, and search diagnostics under
            ``stats`` (iterations, candidates generated/enqueued).
        """
        with timed() as elapsed:
            if self.incremental:
                initial_cost = self.cost_model.estimate_cached(graph)
                # Fresh per-search engine: match sets carry over between
                # queue pops (the popped graph's parent is usually still
                # cached), not between optimise() calls.
                engine = IncrementalCandidateEngine(
                    self.ruleset, capacity=max(64, self.queue_capacity))
            else:
                initial_cost = self.cost_model.estimate(graph)
            best_graph, best_cost = graph, initial_cost
            best_rules: List[str] = []

            # Entries carry the graph they were generated from: every popped
            # graph's parent was itself shipped to the pool when *it* was
            # popped (the root at session open), so the current graph always
            # reaches workers as a single-level delta.
            counter = itertools.count()  # tie-breaker for the heap
            heap: List[Tuple[float, int, Graph, List[str],
                             Optional[Graph]]] = [
                (initial_cost, next(counter), graph, [], None)
            ]
            seen = {graph.structural_hash()}
            iterations = 0
            candidates_evaluated = 0
            session = open_session(self.parallel, self.pool,
                                   self.num_workers, graph, self.ruleset,
                                   cost_model=self.cost_model)

            progress = self.progress_callback
            try:
                while heap and iterations < self.max_iterations:
                    iterations += 1
                    cost, _, current, applied, parent = heapq.heappop(heap)
                    if progress is not None:
                        progress(iterations, float(best_cost),
                                 best_graph.structural_hash())
                    if cost > self.alpha * best_cost:
                        continue
                    if self.incremental:
                        candidates = engine.lazy_candidates(current)
                    else:
                        candidates = self.ruleset.all_candidates(current)
                    if session is not None:
                        evaluations = self._evaluate_pooled(
                            session, current, parent, list(candidates),
                            cost)
                    else:
                        evaluations = self._evaluate_serial(
                            current, candidates, cost)
                    for candidate, cand_hash, get_cost in evaluations:
                        candidates_evaluated += 1
                        if cand_hash in seen:
                            continue
                        seen.add(cand_hash)
                        cand_cost = get_cost()
                        if not (cand_cost < best_cost
                                or cand_cost <= self.alpha * best_cost):
                            continue
                        # Admitted: materialise locally.  Serial evaluation
                        # already did (memoised); pooled evaluation skipped
                        # it for rejected candidates — the bulk.
                        cand_graph = candidate.materialise()
                        if cand_graph is None:  # pragma: no cover
                            continue
                        cand_rules = applied + [candidate.rule_name]
                        if cand_cost < best_cost:
                            best_graph, best_cost = cand_graph, cand_cost
                            best_rules = cand_rules
                        if cand_cost <= self.alpha * best_cost:
                            entry = (cand_cost, next(counter),
                                     cand_graph, cand_rules, current)
                            if len(heap) < self.queue_capacity:
                                heapq.heappush(heap, entry)
                            else:
                                # Queue full: evict the most expensive
                                # queued graph rather than dropping the
                                # (possibly cheaper) new candidate.
                                worst = max(range(len(heap)),
                                            key=lambda i: heap[i][0])
                                if heap[worst][0] > cand_cost:
                                    heap[worst] = entry
                                    heapq.heapify(heap)
            finally:
                if session is not None:
                    session.close()

            stats = {
                "iterations": float(iterations),
                "candidates_evaluated": float(candidates_evaluated),
                "graphs_seen": float(len(seen)),
                "measured_latency":
                    1.0 if self.cost_source == "measured" else 0.0,
                "parallel": 1.0 if session is not None else 0.0,
            }
            if session is not None:
                stats["pool_workers"] = float(len(session.pool.alive_workers()))
                stats["fallback_batches"] = float(session.fallback_batches)
                stats["bytes_shipped"] = float(session.bytes_shipped)
            result = SearchResult(
                optimiser=self.name,
                model=model_name or graph.name,
                initial_graph=graph,
                final_graph=best_graph,
                initial_latency_ms=self.latency_source.latency_ms(graph),
                final_latency_ms=self.latency_source.latency_ms(best_graph),
                initial_cost_ms=initial_cost,
                final_cost_ms=best_cost,
                optimisation_time_s=elapsed(),
                applied_rules=best_rules,
                stats=stats,
            )
        return result

    # ------------------------------------------------------------------
    def _evaluate_serial(self, current: Graph, candidates, cost: float):
        """Yield ``(candidate, hash, lazy-cost)`` exactly as the classic
        serial loop computed them: materialise eagerly, cost only when the
        merge loop finds the hash unseen."""
        for candidate in candidates:
            cand_graph = candidate.materialise()
            if cand_graph is None:
                continue
            if self.incremental:
                def get_cost(g=cand_graph):
                    return self.cost_model.estimate_delta(
                        current, g, parent_cost=cost)
            else:
                def get_cost(g=cand_graph):
                    return self.cost_model.estimate(g)
            yield candidate, cand_graph.structural_hash(), get_cost

    def _evaluate_pooled(self, session, current: Graph,
                         parent: Optional[Graph], candidates, cost: float):
        """Shard candidate evaluation across the pool; yield in index order.

        Workers materialise + hash + cost against their replica of
        ``current`` (shipped here as a delta against ``parent``) and return
        plain floats/strings — bit-identical to what :meth:`_evaluate_serial`
        would produce, because replicas carry the same node ids and id
        counter as the originals.
        """
        session.ensure_graph(current, parent)
        results = session.evaluate(
            current, candidates,
            parent_cost=cost if self.incremental else None)
        for candidate, res in zip(candidates, results):
            if not res.ok:
                continue
            yield candidate, res.structural_hash, lambda c=res.cost: c


class GreedyOptimizer(TASOOptimizer):
    """Pure greedy hill-climbing: ``alpha = 1`` (no tolerance, no backtracking).

    Included as an ablation of how much TASO's backtracking tolerance buys.
    With the queue-eviction behaviour of the full heap (a cheaper candidate
    replaces the queued one), ``queue_capacity = 1`` makes this
    steepest-descent: each step follows the *best* improving rewrite of the
    current graph, not the first one found.
    """

    name = "greedy"

    def __init__(self, **kwargs):
        kwargs.setdefault("alpha", 1.0)
        kwargs.setdefault("queue_capacity", 1)
        super().__init__(**kwargs)
