"""Computation graph (dataflow graph) IR.

A :class:`Graph` is a directed acyclic graph whose nodes are tensor operators
and whose edges carry :class:`~repro.ir.tensor.TensorSpec` metadata.  This is
the representation the rewrite substrate, the cost models and the RL
environment all operate on.

The design follows TASO's graph abstraction: nodes own their attributes, each
node produces one or more output tensors, and edges reference the producing
node's output slot.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .ops import OP_REGISTRY, OpType, infer_output_spec
from .tensor import TensorSpec

__all__ = ["NodeId", "Edge", "Node", "Graph", "GraphValidationError"]

NodeId = int


class GraphValidationError(ValueError):
    """Raised when a graph violates a structural invariant."""


@dataclass(frozen=True)
class Edge:
    """A directed edge carrying one tensor from a producer to a consumer.

    ``src_slot`` identifies which output of the producing node is carried;
    ``dst_slot`` identifies which input position of the consumer it feeds.
    """

    src: NodeId
    dst: NodeId
    src_slot: int = 0
    dst_slot: int = 0


@dataclass
class Node:
    """One operator instance in a computation graph."""

    node_id: NodeId
    op_type: OpType
    attrs: Dict[str, object] = field(default_factory=dict)
    #: Output tensor specs (one per output slot), filled by shape inference.
    outputs: List[TensorSpec] = field(default_factory=list)
    name: str = ""

    @property
    def is_source(self) -> bool:
        return self.op_type in (OpType.INPUT, OpType.WEIGHT, OpType.CONSTANT)

    @property
    def output_spec(self) -> TensorSpec:
        """Spec of the node's first (usually only) output."""
        return self.outputs[0]

    def signature(self) -> Tuple:
        """A hashable structural signature (op type + sorted attrs)."""
        attr_items = tuple(sorted((k, _freeze(v)) for k, v in self.attrs.items()))
        return (self.op_type.value, attr_items)

    def copy(self) -> "Node":
        return Node(
            node_id=self.node_id,
            op_type=self.op_type,
            attrs=dict(self.attrs),
            outputs=list(self.outputs),
            name=self.name,
        )


def _freeze(value):
    """Convert attribute values into hashable equivalents."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


class Graph:
    """A mutable tensor computation graph.

    The graph maintains:

    * ``nodes``: mapping of node id to :class:`Node`
    * ``in_edges`` / ``out_edges``: adjacency keyed by node id
    * a monotonically increasing id counter so that rewrites never reuse ids

    Structural invariants (checked by :meth:`validate`):

    * acyclicity
    * every non-source node's inputs are fully connected, with consistent
      slot numbering and arity within the operator signature
    * every node's output specs agree with shape inference
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: Dict[NodeId, Node] = {}
        self._in_edges: Dict[NodeId, List[Edge]] = {}
        self._out_edges: Dict[NodeId, List[Edge]] = {}
        self._next_id: NodeId = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        op_type: OpType,
        inputs: Sequence[Tuple[NodeId, int]] | Sequence[NodeId] = (),
        attrs: Optional[Mapping[str, object]] = None,
        name: str = "",
    ) -> NodeId:
        """Add a node and connect its inputs.

        ``inputs`` is a sequence of producer node ids, or ``(node_id, slot)``
        pairs when the producer has multiple outputs.  Output specs are
        inferred immediately so that the graph is always well-typed.
        """
        attrs = dict(attrs or {})
        normalised: List[Tuple[NodeId, int]] = []
        for item in inputs:
            if isinstance(item, tuple):
                normalised.append((int(item[0]), int(item[1])))
            else:
                normalised.append((int(item), 0))

        input_specs = []
        for src, slot in normalised:
            if src not in self.nodes:
                raise GraphValidationError(f"input node {src} does not exist")
            src_node = self.nodes[src]
            if slot >= len(src_node.outputs):
                raise GraphValidationError(
                    f"node {src} has no output slot {slot}"
                )
            input_specs.append(src_node.outputs[slot])

        sig = OP_REGISTRY[op_type]
        sig.validate_arity(len(normalised))

        node_id = self._next_id
        self._next_id += 1
        node = Node(node_id=node_id, op_type=op_type, attrs=attrs,
                    name=name or f"{op_type.value.lower()}_{node_id}")

        # Infer all output slots.
        outputs = []
        for out_slot in range(sig.num_outputs):
            outputs.append(infer_output_spec(op_type, input_specs, attrs, out_slot))
        node.outputs = outputs

        self.nodes[node_id] = node
        self._in_edges[node_id] = []
        self._out_edges[node_id] = []
        for dst_slot, (src, src_slot) in enumerate(normalised):
            edge = Edge(src=src, dst=node_id, src_slot=src_slot, dst_slot=dst_slot)
            self._in_edges[node_id].append(edge)
            self._out_edges[src].append(edge)
        return node_id

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node and all edges touching it."""
        if node_id not in self.nodes:
            raise GraphValidationError(f"node {node_id} does not exist")
        for edge in list(self._in_edges[node_id]):
            self._out_edges[edge.src].remove(edge)
        for edge in list(self._out_edges[node_id]):
            self._in_edges[edge.dst].remove(edge)
        del self._in_edges[node_id]
        del self._out_edges[node_id]
        del self.nodes[node_id]

    def rewire_input(self, dst: NodeId, dst_slot: int, new_src: NodeId,
                     new_src_slot: int = 0) -> None:
        """Redirect input ``dst_slot`` of ``dst`` to a different producer."""
        edges = self._in_edges[dst]
        for i, edge in enumerate(edges):
            if edge.dst_slot == dst_slot:
                self._out_edges[edge.src].remove(edge)
                new_edge = Edge(new_src, dst, new_src_slot, dst_slot)
                edges[i] = new_edge
                self._out_edges[new_src].append(new_edge)
                return
        raise GraphValidationError(f"node {dst} has no input slot {dst_slot}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def in_edges(self, node_id: NodeId) -> List[Edge]:
        return sorted(self._in_edges[node_id], key=lambda e: e.dst_slot)

    def out_edges(self, node_id: NodeId) -> List[Edge]:
        return list(self._out_edges[node_id])

    def predecessors(self, node_id: NodeId) -> List[NodeId]:
        return [e.src for e in self.in_edges(node_id)]

    def successors(self, node_id: NodeId) -> List[NodeId]:
        return [e.dst for e in self._out_edges[node_id]]

    def input_specs(self, node_id: NodeId) -> List[TensorSpec]:
        """Specs of the tensors feeding ``node_id``, in slot order."""
        specs = []
        for edge in self.in_edges(node_id):
            specs.append(self.nodes[edge.src].outputs[edge.src_slot])
        return specs

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self._in_edges.values())

    def source_nodes(self) -> List[NodeId]:
        """Ids of all Input/Weight/Constant nodes."""
        return [nid for nid, n in self.nodes.items() if n.is_source]

    def input_nodes(self) -> List[NodeId]:
        return [nid for nid, n in self.nodes.items() if n.op_type is OpType.INPUT]

    def sink_nodes(self) -> List[NodeId]:
        """Ids of nodes with no consumers (graph outputs)."""
        return [nid for nid in self.nodes if not self._out_edges[nid]]

    def operator_nodes(self) -> List[NodeId]:
        """All nodes that perform computation (non-source, non-Output)."""
        return [
            nid for nid, n in self.nodes.items()
            if not n.is_source and n.op_type is not OpType.OUTPUT
        ]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def topological_order(self) -> List[NodeId]:
        """Node ids in a deterministic topological order.

        Raises :class:`GraphValidationError` if the graph contains a cycle.
        """
        in_degree = {nid: len(self._in_edges[nid]) for nid in self.nodes}
        ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        order: List[NodeId] = []
        ready_set = list(ready)
        while ready_set:
            nid = ready_set.pop(0)
            order.append(nid)
            for edge in sorted(self._out_edges[nid], key=lambda e: (e.dst, e.dst_slot)):
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    # keep deterministic order: insert sorted
                    ready_set.append(edge.dst)
            ready_set.sort()
        if len(order) != len(self.nodes):
            raise GraphValidationError("graph contains a cycle")
        return order

    def __iter__(self) -> Iterator[Node]:
        for nid in self.topological_order():
            yield self.nodes[nid]

    # ------------------------------------------------------------------
    # Validation / hashing / copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raise on violation."""
        self.topological_order()  # acyclicity
        for nid, node in self.nodes.items():
            sig = OP_REGISTRY[node.op_type]
            edges = self.in_edges(nid)
            slots = [e.dst_slot for e in edges]
            if slots != list(range(len(slots))):
                raise GraphValidationError(
                    f"node {nid} ({node.op_type.value}) has gap in input slots: {slots}"
                )
            sig.validate_arity(len(edges))
            input_specs = self.input_specs(nid)
            for out_slot in range(sig.num_outputs):
                expected = infer_output_spec(node.op_type, input_specs, node.attrs, out_slot)
                actual = node.outputs[out_slot]
                if expected.shape.dims != actual.shape.dims:
                    raise GraphValidationError(
                        f"node {nid} ({node.op_type.value}) output {out_slot} shape "
                        f"{actual.shape.dims} disagrees with inference {expected.shape.dims}"
                    )

    def refresh_shapes(self) -> None:
        """Re-run shape inference over the whole graph in topological order."""
        for nid in self.topological_order():
            node = self.nodes[nid]
            if node.is_source:
                continue
            input_specs = self.input_specs(nid)
            sig = OP_REGISTRY[node.op_type]
            node.outputs = [
                infer_output_spec(node.op_type, input_specs, node.attrs, s)
                for s in range(sig.num_outputs)
            ]

    def structural_hash(self) -> str:
        """A hash that identifies the graph up to node-id relabelling."""
        order = self.topological_order()
        relabel = {nid: i for i, nid in enumerate(order)}
        payload = []
        for nid in order:
            node = self.nodes[nid]
            edges = [
                (relabel[e.src], e.src_slot, e.dst_slot) for e in self.in_edges(nid)
            ]
            payload.append((node.op_type.value,
                            sorted((k, str(v)) for k, v in node.attrs.items()),
                            [o.shape.as_list() for o in node.outputs],
                            edges))
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def copy(self) -> "Graph":
        """Deep copy preserving node ids."""
        g = Graph(self.name)
        g._next_id = self._next_id
        g.nodes = {nid: node.copy() for nid, node in self.nodes.items()}
        g._in_edges = {nid: list(edges) for nid, edges in self._in_edges.items()}
        g._out_edges = {nid: list(edges) for nid, edges in self._out_edges.items()}
        return g

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def op_type_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes.values():
            counts[node.op_type.value] = counts.get(node.op_type.value, 0) + 1
        return counts

    def total_flops(self) -> float:
        """Approximate floating point operations of one forward pass."""
        from ..cost.op_cost import op_flops  # local import to avoid cycle
        return sum(
            op_flops(node.op_type, self.input_specs(nid), node.outputs, node.attrs)
            for nid, node in self.nodes.items()
        )

    def __repr__(self) -> str:
        return (f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")
