"""Computation graph (dataflow graph) IR.

A :class:`Graph` is a directed acyclic graph whose nodes are tensor operators
and whose edges carry :class:`~repro.ir.tensor.TensorSpec` metadata.  This is
the representation the rewrite substrate, the cost models and the RL
environment all operate on.

The design follows TASO's graph abstraction: nodes own their attributes, each
node produces one or more output tensors, and edges reference the producing
node's output slot.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import weakref
import numpy as np
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple)

from .ops import OP_REGISTRY, OpType, infer_output_spec, op_index
from .tensor import TensorSpec

__all__ = ["NodeId", "Edge", "Node", "Graph", "GraphDelta",
           "GraphValidationError"]

NodeId = int

_MISSING = object()


def _edge_dst_slot(edge: "Edge") -> int:
    return edge.dst_slot


class GraphValidationError(ValueError):
    """Raised when a graph violates a structural invariant."""


#: Tombstone marking a key deleted in a :class:`_CowEdgeMap` overlay.
_DELETED = object()


class _CowEdgeMap:
    """Copy-on-write mapping of node id to its edge list.

    ``Graph.copy()`` used to clone both adjacency dicts *and* every
    per-node edge list eagerly — ~40% of per-candidate cost, paid even
    when the rewrite touches two nodes out of hundreds.  Instead, a copy
    now shares the parent's map as a frozen ``_base`` dict and records
    its own mutations in a small ``_own`` overlay:

    * reads check the overlay first, then the base;
    * :meth:`edit` clones a single per-node list into the overlay the
      first time a mutation needs it (the actual copy-on-write);
    * deletions write a tombstone over base keys;
    * :meth:`share` hands a frozen base to a new child, merging any
      overlay into a fresh dict first — so chains never grow beyond one
      level of indirection, however long the rewrite sequence.

    The freeze invariant: a dict used as ``_base`` (and every list
    reachable from it) is never mutated in place.  All ``Graph``
    mutators go through ``__setitem__`` / :meth:`edit`, which only ever
    write to the overlay.
    """

    __slots__ = ("_base", "_own", "lists_cloned")

    def __init__(self, base: Optional[Dict[NodeId, List[Edge]]] = None):
        self._base: Dict[NodeId, List[Edge]] = base if base is not None else {}
        self._own: Dict[NodeId, object] = {}
        #: Per-node lists cloned from the base so far (test observability).
        self.lists_cloned = 0

    # -- reads ----------------------------------------------------------
    def __getitem__(self, nid: NodeId) -> List[Edge]:
        value = self._own.get(nid, _MISSING)
        if value is _MISSING:
            return self._base[nid]
        if value is _DELETED:
            raise KeyError(nid)
        return value

    def __contains__(self, nid: NodeId) -> bool:
        value = self._own.get(nid, _MISSING)
        if value is _MISSING:
            return nid in self._base
        return value is not _DELETED

    def __len__(self) -> int:
        count = len(self._base)
        base = self._base
        for nid, value in self._own.items():
            if value is _DELETED:
                count -= 1
            elif nid not in base:
                count += 1
        return count

    def __iter__(self) -> Iterator[NodeId]:
        return (nid for nid, _ in self.items())

    def keys(self) -> Iterator[NodeId]:
        return iter(self)

    def items(self) -> Iterator[Tuple[NodeId, List[Edge]]]:
        own, base = self._own, self._base
        for nid, value in base.items():
            override = own.get(nid, _MISSING)
            if override is _MISSING:
                yield nid, value
            elif override is not _DELETED:
                yield nid, override
        for nid, value in own.items():
            if value is not _DELETED and nid not in base:
                yield nid, value

    def values(self) -> Iterator[List[Edge]]:
        return (edges for _, edges in self.items())

    def to_dict(self) -> Dict[NodeId, List[Edge]]:
        """An eager ``{nid: [edges...]}`` snapshot (fresh lists)."""
        return {nid: list(edges) for nid, edges in self.items()}

    # -- writes ---------------------------------------------------------
    def __setitem__(self, nid: NodeId, edges: List[Edge]) -> None:
        self._own[nid] = edges

    def __delitem__(self, nid: NodeId) -> None:
        value = self._own.get(nid, _MISSING)
        if value is _DELETED:
            raise KeyError(nid)
        if value is not _MISSING:
            if nid in self._base:
                self._own[nid] = _DELETED
            else:
                del self._own[nid]
        elif nid in self._base:
            self._own[nid] = _DELETED
        else:
            raise KeyError(nid)

    def edit(self, nid: NodeId) -> List[Edge]:
        """The edge list for ``nid``, guaranteed safe to mutate in place."""
        value = self._own.get(nid, _MISSING)
        if value is not _MISSING:
            if value is _DELETED:
                raise KeyError(nid)
            return value
        cloned = list(self._base[nid])
        self._own[nid] = cloned
        self.lists_cloned += 1
        return cloned

    # -- sharing --------------------------------------------------------
    def share(self) -> Dict[NodeId, List[Edge]]:
        """A frozen base dict for a child map.

        When this map has no overlay the current base is shared as-is
        (zero copies); otherwise base and overlay are merged into one
        fresh dict that becomes both the child's base and this map's new
        base — keeping every COW chain at depth one.
        """
        if self._own:
            merged = dict(self._base)
            for nid, value in self._own.items():
                if value is _DELETED:
                    del merged[nid]
                else:
                    merged[nid] = value
            self._base = merged
            self._own = {}
        return self._base


@dataclass
class GraphDelta:
    """Mutations recorded on a graph since a checkpoint.

    ``added`` holds node ids created after the checkpoint that still exist;
    ``removed`` holds ids that existed at the checkpoint and have since been
    deleted; ``rewired`` holds ids that existed at the checkpoint, still
    exist, and have had an input edge redirected (so their input specs — and
    therefore their per-node cost — may have changed).  A node that was added
    and later removed appears in neither set.
    """

    added: Set[NodeId] = field(default_factory=set)
    removed: Set[NodeId] = field(default_factory=set)
    rewired: Set[NodeId] = field(default_factory=set)
    #: Ids (of nodes alive at the checkpoint) that have lost at least one
    #: out-edge since — via a consumer being rewired away or removed.  Only
    #: these nodes (plus ``added`` ones) can have become dead, which lets
    #: dead-code elimination seed its worklist from the delta instead of
    #: scanning every node (see ``rules.base.eliminate_dead_nodes``).
    out_shrunk: Set[NodeId] = field(default_factory=set)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.rewired)

    def changed_nodes(self) -> Set[NodeId]:
        """All node ids whose presence or cost differs from the checkpoint."""
        return self.added | self.removed | self.rewired


@dataclass(frozen=True)
class Edge:
    """A directed edge carrying one tensor from a producer to a consumer.

    ``src_slot`` identifies which output of the producing node is carried;
    ``dst_slot`` identifies which input position of the consumer it feeds.
    """

    src: NodeId
    dst: NodeId
    src_slot: int = 0
    dst_slot: int = 0


@dataclass
class Node:
    """One operator instance in a computation graph."""

    node_id: NodeId
    op_type: OpType
    attrs: Dict[str, object] = field(default_factory=dict)
    #: Output tensor specs (one per output slot), filled by shape inference.
    outputs: List[TensorSpec] = field(default_factory=list)
    name: str = ""
    #: Memoised JSON fragment of the node's id-independent hash payload
    #: (op type, attrs, output shapes).  Invalidated when ``outputs`` are
    #: re-inferred; attrs are never mutated in place after construction.
    _hash_fragment: Optional[str] = field(
        default=None, repr=False, compare=False)

    @property
    def is_source(self) -> bool:
        return self.op_type in (OpType.INPUT, OpType.WEIGHT, OpType.CONSTANT)

    @property
    def output_spec(self) -> TensorSpec:
        """Spec of the node's first (usually only) output."""
        return self.outputs[0]

    def signature(self) -> Tuple:
        """A hashable structural signature (op type + sorted attrs)."""
        attr_items = tuple(sorted((k, _freeze(v)) for k, v in self.attrs.items()))
        return (self.op_type.value, attr_items)

    def copy(self) -> "Node":
        # Hot path (one call per node per rewrite): clone via __dict__ to
        # skip dataclass __init__ overhead.
        clone = Node.__new__(Node)
        state = clone.__dict__
        state.update(self.__dict__)
        state["attrs"] = dict(self.attrs)
        state["outputs"] = list(self.outputs)
        return clone


def _freeze(value):
    """Convert attribute values into hashable equivalents."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


class Graph:
    """A mutable tensor computation graph.

    The graph maintains:

    * ``nodes``: mapping of node id to :class:`Node`
    * ``in_edges`` / ``out_edges``: adjacency keyed by node id
    * a monotonically increasing id counter so that rewrites never reuse ids

    Structural invariants (checked by :meth:`validate`):

    * acyclicity
    * every non-source node's inputs are fully connected, with consistent
      slot numbering and arity within the operator signature
    * every node's output specs agree with shape inference

    Incremental-engine state (maintained across all mutations):

    * ``_nodes_by_op``: op-type index used by anchor-based rule matching
      (each bucket is an insertion-ordered dict, so iteration is in node-id
      order because ids are handed out monotonically)
    * ``_scalar_cache``: whole-graph memos (topological order, structural
      hash, simulated latency), cleared on any mutation
    * ``_node_caches``: per-node memo tables (per-node cost estimates,
      per-node flop/byte counts), invalidated per affected node
    * ``_delta``: mutation recording (see :class:`GraphDelta`), started by
      :meth:`begin_delta` and automatically on every :meth:`copy`
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: Dict[NodeId, Node] = {}
        self._in_edges: _CowEdgeMap = _CowEdgeMap()
        self._out_edges: _CowEdgeMap = _CowEdgeMap()
        self._next_id: NodeId = 0
        #: Monotonic structure-version counter, bumped on every mutation.
        #: Together with ``_parent_ref``/``_parent_version`` (set by
        #: :meth:`copy`) it lets incremental consumers check that a
        #: parent graph is unchanged since the copy — see
        #: :meth:`delta_parent`.
        self._version: int = 0
        self._parent_ref: Optional["weakref.ref[Graph]"] = None
        self._parent_version: int = -1
        self._copy_delta: Optional[GraphDelta] = None
        self._nodes_by_op: Dict[OpType, Dict[NodeId, None]] = {}
        #: ``_op_ids[node_id]`` is the registry index of that node's op type
        #: (stale entries for removed ids are never read — ids are not
        #: reused).  Lets the RL feature encoder build one-hot rows with one
        #: fancy-indexing pass instead of a per-node Python loop.
        self._op_ids: List[int] = []
        self._scalar_cache: Dict[Hashable, object] = {}
        self._node_caches: Dict[Hashable, Dict[NodeId, object]] = {}
        self._delta: Optional[GraphDelta] = None

    def __getstate__(self):
        """Pickle support (graphs cross process boundaries in the service
        layer): the parent weakref cannot be pickled and would be
        meaningless in another process, so the copy lineage is severed —
        an unpickled graph simply has no ``delta_parent()``."""
        state = self.__dict__.copy()
        state["_parent_ref"] = None
        state["_parent_version"] = -1
        state["_copy_delta"] = None
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        op_type: OpType,
        inputs: Sequence[Tuple[NodeId, int]] | Sequence[NodeId] = (),
        attrs: Optional[Mapping[str, object]] = None,
        name: str = "",
    ) -> NodeId:
        """Add a node and connect its inputs.

        ``inputs`` is a sequence of producer node ids, or ``(node_id, slot)``
        pairs when the producer has multiple outputs.  Output specs are
        inferred immediately so that the graph is always well-typed.
        """
        attrs = dict(attrs or {})
        normalised: List[Tuple[NodeId, int]] = []
        for item in inputs:
            if isinstance(item, tuple):
                normalised.append((int(item[0]), int(item[1])))
            else:
                normalised.append((int(item), 0))

        input_specs = []
        for src, slot in normalised:
            if src not in self.nodes:
                raise GraphValidationError(f"input node {src} does not exist")
            src_node = self.nodes[src]
            if slot >= len(src_node.outputs):
                raise GraphValidationError(
                    f"node {src} has no output slot {slot}"
                )
            input_specs.append(src_node.outputs[slot])

        sig = OP_REGISTRY[op_type]
        sig.validate_arity(len(normalised))

        node_id = self._next_id
        self._next_id += 1
        node = Node(node_id=node_id, op_type=op_type, attrs=attrs,
                    name=name or f"{op_type.value.lower()}_{node_id}")

        # Infer all output slots.
        outputs = []
        for out_slot in range(sig.num_outputs):
            outputs.append(infer_output_spec(op_type, input_specs, attrs, out_slot))
        node.outputs = outputs

        self.nodes[node_id] = node
        in_list: List[Edge] = []
        self._in_edges[node_id] = in_list
        self._out_edges[node_id] = []
        for dst_slot, (src, src_slot) in enumerate(normalised):
            edge = Edge(src=src, dst=node_id, src_slot=src_slot, dst_slot=dst_slot)
            in_list.append(edge)
            self._out_edges.edit(src).append(edge)
        self._nodes_by_op.setdefault(op_type, {})[node_id] = None
        self._op_ids.append(op_index(op_type))
        self._version += 1
        if self._scalar_cache:
            self._scalar_cache.clear()
        if self._delta is not None:
            self._delta.added.add(node_id)
        return node_id

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node and all edges touching it."""
        if node_id not in self.nodes:
            raise GraphValidationError(f"node {node_id} does not exist")
        consumers = {e.dst for e in self._out_edges[node_id]}
        producers = {e.src for e in self._in_edges[node_id]}
        for edge in list(self._in_edges[node_id]):
            self._out_edges.edit(edge.src).remove(edge)
        for edge in list(self._out_edges[node_id]):
            self._in_edges.edit(edge.dst).remove(edge)
        op_type = self.nodes[node_id].op_type
        del self._in_edges[node_id]
        del self._out_edges[node_id]
        del self.nodes[node_id]
        del self._nodes_by_op[op_type][node_id]
        self._version += 1
        if self._scalar_cache:
            self._scalar_cache.clear()
        for table in self._node_caches.values():
            table.pop(node_id, None)
            for consumer in consumers:
                table.pop(consumer, None)
        if self._delta is not None:
            delta = self._delta
            if node_id in delta.added:
                delta.added.discard(node_id)
            else:
                delta.removed.add(node_id)
            delta.rewired.discard(node_id)
            delta.out_shrunk.discard(node_id)
            for consumer in consumers:
                if consumer in self.nodes and consumer not in delta.added:
                    delta.rewired.add(consumer)
            for producer in producers:
                if producer not in delta.added:
                    delta.out_shrunk.add(producer)

    def rewire_input(self, dst: NodeId, dst_slot: int, new_src: NodeId,
                     new_src_slot: int = 0) -> None:
        """Redirect input ``dst_slot`` of ``dst`` to a different producer."""
        edges = self._in_edges[dst]
        for i, edge in enumerate(edges):
            if edge.dst_slot == dst_slot:
                self._out_edges.edit(edge.src).remove(edge)
                new_edge = Edge(new_src, dst, new_src_slot, dst_slot)
                self._in_edges.edit(dst)[i] = new_edge
                self._out_edges.edit(new_src).append(new_edge)
                self._version += 1
                if self._scalar_cache:
                    self._scalar_cache.clear()
                for table in self._node_caches.values():
                    table.pop(dst, None)
                if self._delta is not None:
                    if dst not in self._delta.added:
                        self._delta.rewired.add(dst)
                    if edge.src not in self._delta.added:
                        self._delta.out_shrunk.add(edge.src)
                return
        raise GraphValidationError(f"node {dst} has no input slot {dst_slot}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def in_edges(self, node_id: NodeId) -> List[Edge]:
        edges = self._in_edges[node_id]
        if len(edges) < 2:
            return list(edges)
        return sorted(edges, key=_edge_dst_slot)

    def out_edges(self, node_id: NodeId) -> List[Edge]:
        return list(self._out_edges[node_id])

    def predecessors(self, node_id: NodeId) -> List[NodeId]:
        return [e.src for e in self.in_edges(node_id)]

    def successors(self, node_id: NodeId) -> List[NodeId]:
        return [e.dst for e in self._out_edges[node_id]]

    def input_specs(self, node_id: NodeId) -> List[TensorSpec]:
        """Specs of the tensors feeding ``node_id``, in slot order."""
        specs = []
        for edge in self.in_edges(node_id):
            specs.append(self.nodes[edge.src].outputs[edge.src_slot])
        return specs

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def id_bound(self) -> NodeId:
        """Exclusive upper bound on node ids ever handed out by this graph.

        Ids are monotonic and never reused, so a dense array of this length
        can be used as an id-to-position lookup table (the RL feature
        encoder builds one per encoding instead of a Python dict).
        """
        return self._next_id

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self._in_edges.values())

    def source_nodes(self) -> List[NodeId]:
        """Ids of all Input/Weight/Constant nodes."""
        return [nid for nid, n in self.nodes.items() if n.is_source]

    def input_nodes(self) -> List[NodeId]:
        return [nid for nid, n in self.nodes.items() if n.op_type is OpType.INPUT]

    def sink_nodes(self) -> List[NodeId]:
        """Ids of nodes with no consumers (graph outputs)."""
        return [nid for nid in self.nodes if not self._out_edges[nid]]

    def operator_nodes(self) -> List[NodeId]:
        """All nodes that perform computation (non-source, non-Output)."""
        return [
            nid for nid, n in self.nodes.items()
            if not n.is_source and n.op_type is not OpType.OUTPUT
        ]

    # ------------------------------------------------------------------
    # Op-type index / caches / mutation delta
    # ------------------------------------------------------------------
    def op_index_table(self) -> np.ndarray:
        """Node-id-indexed array of operator registry indices (read-only).

        ``table[nid]`` is ``op_index(self.nodes[nid].op_type)`` for every
        live node id; entries for removed ids are stale but never read.
        Maintained incrementally by :meth:`add_node`; the ndarray view is
        memoised until the next mutation — callers must not write to it.
        """
        cached = self._scalar_cache.get("op_ids")
        if cached is None:
            cached = np.asarray(self._op_ids, dtype=np.int64)
            self._scalar_cache["op_ids"] = cached
        return cached

    def nodes_by_op(self, *op_types: OpType) -> List[NodeId]:
        """Ids of all nodes with one of the given op types, in creation order.

        Backed by an index maintained across mutations, so rule matching can
        seed from the handful of anchor operators instead of scanning every
        node in the graph.
        """
        if len(op_types) == 1:
            return list(self._nodes_by_op.get(op_types[0], ()))
        ids = [nid for op in op_types for nid in self._nodes_by_op.get(op, ())]
        ids.sort()
        return ids

    def node_cache(self, key: Hashable) -> Dict[NodeId, object]:
        """A per-node memo table for ``key`` (e.g. one cost model's params).

        Entries survive :meth:`copy` and are invalidated per node when the
        node is removed or has an input rewired, so derived per-node values
        (costs, flop counts) can be reused across rewrite steps.
        """
        table = self._node_caches.get(key)
        if table is None:
            table = self._node_caches[key] = {}
        return table

    def memo(self, key: Hashable, compute: Callable[[], object]):
        """A whole-graph memo for ``key``, dropped on any mutation."""
        value = self._scalar_cache.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self._scalar_cache[key] = value
        return value

    def memo_peek(self, key: Hashable, default=None):
        """The memoised value for ``key``, or ``default`` — never computes."""
        value = self._scalar_cache.get(key, _MISSING)
        return default if value is _MISSING else value

    def begin_delta(self) -> GraphDelta:
        """Start (or restart) mutation recording from the current state."""
        self._delta = GraphDelta()
        return self._delta

    def mutation_delta(self) -> Optional[GraphDelta]:
        """The mutations recorded since the last checkpoint (or ``None``).

        :meth:`copy` checkpoints the copy automatically, so the graph a
        rewrite rule returns always carries the delta of its surgery.
        """
        return self._delta

    def _rebuild_indices(self) -> None:
        """Recompute the op-type index and drop every cache.

        Only needed after constructing graph internals directly (e.g. when
        deserialising); the normal mutation API maintains them in place.
        """
        self._nodes_by_op = {}
        self._op_ids = [0] * self._next_id
        for nid in sorted(self.nodes):
            node = self.nodes[nid]
            self._nodes_by_op.setdefault(node.op_type, {})[nid] = None
            self._op_ids[nid] = op_index(node.op_type)
        self._version += 1
        self._scalar_cache.clear()
        self._node_caches.clear()

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def topological_order(self) -> List[NodeId]:
        """Node ids in a deterministic topological order.

        Raises :class:`GraphValidationError` if the graph contains a cycle.
        The order is memoised until the next mutation.
        """
        cached = self._scalar_cache.get("topo")
        if cached is None:
            cached = self._compute_topological_order()
            self._scalar_cache["topo"] = cached
        return list(cached)

    def _compute_topological_order(self) -> List[NodeId]:
        # Kahn's algorithm with a min-heap of ready nodes: pops the smallest
        # ready id first, which is exactly the order the previous
        # sort-the-ready-list implementation produced.
        in_degree = {nid: len(self._in_edges[nid]) for nid in self.nodes}
        ready = [nid for nid, deg in in_degree.items() if deg == 0]
        heapq.heapify(ready)
        order: List[NodeId] = []
        while ready:
            nid = heapq.heappop(ready)
            order.append(nid)
            for edge in self._out_edges[nid]:
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    heapq.heappush(ready, edge.dst)
        if len(order) != len(self.nodes):
            raise GraphValidationError("graph contains a cycle")
        return order

    def __iter__(self) -> Iterator[Node]:
        for nid in self.topological_order():
            yield self.nodes[nid]

    # ------------------------------------------------------------------
    # Validation / hashing / copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raise on violation."""
        self.topological_order()  # acyclicity
        for nid, node in self.nodes.items():
            sig = OP_REGISTRY[node.op_type]
            edges = self.in_edges(nid)
            slots = [e.dst_slot for e in edges]
            if slots != list(range(len(slots))):
                raise GraphValidationError(
                    f"node {nid} ({node.op_type.value}) has gap in input slots: {slots}"
                )
            sig.validate_arity(len(edges))
            input_specs = self.input_specs(nid)
            for out_slot in range(sig.num_outputs):
                expected = infer_output_spec(node.op_type, input_specs, node.attrs, out_slot)
                actual = node.outputs[out_slot]
                if expected.shape.dims != actual.shape.dims:
                    raise GraphValidationError(
                        f"node {nid} ({node.op_type.value}) output {out_slot} shape "
                        f"{actual.shape.dims} disagrees with inference {expected.shape.dims}"
                    )

    def refresh_shapes(self) -> None:
        """Re-run shape inference over the whole graph in topological order."""
        for nid in self.topological_order():
            node = self.nodes[nid]
            if node.is_source:
                continue
            input_specs = self.input_specs(nid)
            sig = OP_REGISTRY[node.op_type]
            # Nodes may be shared with copies of this graph (see
            # :meth:`copy`), so replace the node instead of mutating it.
            node = node.copy()
            node.outputs = [
                infer_output_spec(node.op_type, input_specs, node.attrs, s)
                for s in range(sig.num_outputs)
            ]
            node._hash_fragment = None
            self.nodes[nid] = node
        # Output specs feed every derived per-node value, so a full refresh
        # invalidates everything.
        self._version += 1
        self._scalar_cache.clear()
        self._node_caches.clear()

    def structural_hash(self) -> str:
        """A hash that identifies the graph up to node-id relabelling.

        Memoised until the next mutation.  The id-independent part of each
        node's payload (op type, attrs, output shapes) is cached on the node
        and spliced together with the relabelled edge list, producing the
        exact byte stream ``json.dumps`` emitted in the original one-shot
        implementation — hash values are stable across versions (the service
        layer persists fingerprints keyed on them).
        """
        cached = self._scalar_cache.get("hash")
        if cached is not None:
            return cached
        order = self.topological_order()
        relabel = {nid: i for i, nid in enumerate(order)}
        nodes = self.nodes
        in_edges = self._in_edges
        parts: List[str] = []
        for nid in order:
            node = nodes[nid]
            fragment = node._hash_fragment
            if fragment is None:
                fragment = json.dumps(
                    [node.op_type.value,
                     sorted((k, str(v)) for k, v in node.attrs.items()),
                     [o.shape.as_list() for o in node.outputs]])
                node._hash_fragment = fragment
            edges = in_edges[nid]
            if len(edges) > 1:
                edges = sorted(edges, key=_edge_dst_slot)
            if edges:
                # Hand-rolled int-list rendering; byte-identical to
                # ``json.dumps([[src, src_slot, dst_slot], ...])``.
                edge_blob = "[[" + "], [".join(
                    f"{relabel[e.src]}, {e.src_slot}, {e.dst_slot}"
                    for e in edges) + "]]"
            else:
                edge_blob = "[]"
            parts.append(f"{fragment[:-1]}, {edge_blob}]")
        blob = ("[" + ", ".join(parts) + "]").encode()
        digest = hashlib.sha256(blob).hexdigest()
        self._scalar_cache["hash"] = digest
        return digest

    def copy(self) -> "Graph":
        """Deep copy preserving node ids.

        The copy carries the op-type index, all per-node and whole-graph
        caches (valid because the copy is structurally identical), and starts
        recording a fresh mutation delta — so a candidate graph produced by
        ``parent.copy()`` plus surgery knows exactly what changed relative to
        its parent and only re-derives costs for those nodes.

        :class:`Node` objects are shared with the copy (copy-on-write):
        nothing in the mutation API writes to an existing node — rewrites
        add/remove nodes and rewire edges, and :meth:`refresh_shapes`
        replaces nodes rather than mutating them — so sharing is safe and
        saves a per-node allocation on every rewrite.
        """
        g = Graph(self.name)
        g._next_id = self._next_id
        g.nodes = dict(self.nodes)
        # Adjacency is shared copy-on-write: the child starts from a frozen
        # snapshot of this graph's maps and clones only the per-node lists
        # its own mutations touch (see :class:`_CowEdgeMap`).
        g._in_edges = _CowEdgeMap(self._in_edges.share())
        g._out_edges = _CowEdgeMap(self._out_edges.share())
        g._nodes_by_op = {op: dict(bucket)
                          for op, bucket in self._nodes_by_op.items()}
        g._op_ids = list(self._op_ids)
        g._scalar_cache = dict(self._scalar_cache)
        g._node_caches = {key: dict(table)
                          for key, table in self._node_caches.items()}
        g.begin_delta()
        g._parent_ref = weakref.ref(self)
        g._parent_version = self._version
        g._copy_delta = g._delta
        return g

    def delta_parent(self) -> Optional["Graph"]:
        """The graph this one was copied from, when the recorded delta is
        still a faithful diff against it.

        Returns ``None`` unless *all* of: this graph was produced by
        :meth:`copy`, the parent object is still alive, the parent's
        structure has not mutated since the copy, and this graph's delta
        recording was never restarted (``begin_delta`` would orphan the
        copy-time checkpoint).  Incremental consumers — the delta GNN
        embedder, the candidate-set maintainer — use this as their
        validity gate and fall back to full recomputation on ``None``.
        """
        if (self._delta is None or self._delta is not self._copy_delta
                or self._parent_ref is None):
            return None
        parent = self._parent_ref()
        if parent is None or parent._version != self._parent_version:
            return None
        return parent

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def op_type_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes.values():
            counts[node.op_type.value] = counts.get(node.op_type.value, 0) + 1
        return counts

    def total_flops(self) -> float:
        """Approximate floating point operations of one forward pass."""
        from ..cost.op_cost import op_flops  # local import to avoid cycle
        return sum(
            op_flops(node.op_type, self.input_specs(nid), node.outputs, node.attrs)
            for nid, node in self.nodes.items()
        )

    def __repr__(self) -> str:
        return (f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")
