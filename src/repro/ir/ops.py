"""Operator registry for the tensor graph IR.

Mirrors TASO's operator set (the paper notes "around 40 different tensor
operators").  Each operator has a kind, an arity, an attribute schema and a
shape-inference function.  Shape inference keeps graphs well-typed across
rewrites: every substitution must reproduce the same output specs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence

from .tensor import DataType, TensorShape, TensorSpec

__all__ = ["OpType", "OpSignature", "OP_REGISTRY", "infer_output_spec",
           "op_index", "num_op_types", "OPAQUE_OPS"]


class OpType(Enum):
    """Tensor operators supported by the IR (TASO-compatible subset)."""

    # Sources / sinks
    INPUT = "Input"
    WEIGHT = "Weight"
    CONSTANT = "Constant"
    OUTPUT = "Output"

    # Dense linear algebra
    MATMUL = "MatMul"
    BATCH_MATMUL = "BatchMatMul"

    # Convolutions
    CONV2D = "Conv2D"
    DEPTHWISE_CONV2D = "DepthwiseConv2D"
    GROUP_CONV2D = "GroupConv2D"

    # Pooling
    MAXPOOL2D = "MaxPool2D"
    AVGPOOL2D = "AvgPool2D"
    GLOBAL_AVGPOOL = "GlobalAvgPool"

    # Elementwise binary
    ADD = "Add"
    SUB = "Sub"
    MUL = "Mul"
    DIV = "Div"

    # Elementwise unary / activations
    RELU = "Relu"
    GELU = "Gelu"
    SIGMOID = "Sigmoid"
    TANH = "Tanh"
    EXP = "Exp"
    SQRT = "Sqrt"
    ERF = "Erf"
    IDENTITY = "Identity"
    CAST = "Cast"
    DROPOUT = "Dropout"

    # Normalisation
    BATCHNORM = "BatchNorm"
    LAYERNORM = "LayerNorm"
    SOFTMAX = "Softmax"

    # Shape manipulation
    RESHAPE = "Reshape"
    TRANSPOSE = "Transpose"
    CONCAT = "Concat"
    SPLIT = "Split"
    SLICE = "Slice"
    SQUEEZE = "Squeeze"
    UNSQUEEZE = "Unsqueeze"
    FLATTEN = "Flatten"
    PAD = "Pad"

    # Reductions
    REDUCE_SUM = "ReduceSum"
    REDUCE_MEAN = "ReduceMean"
    REDUCE_MAX = "ReduceMax"

    # Misc / composite
    EMBEDDING = "Embedding"
    GATHER = "Gather"
    ENLARGE_CONV = "EnlargeConv"
    FUSED_CONV_BN = "FusedConvBN"
    FUSED_CONV_RELU = "FusedConvRelu"
    FUSED_CONV_BN_RELU = "FusedConvBNRelu"
    FUSED_MATMUL_ADD = "FusedMatMulAdd"
    NOOP = "NoOp"

    # Opaque foreign operator (frontend importer fallback).  Carries the
    # original op name plus *declared* output shape/dtype in its attrs; the
    # executor runs it through the counted pass-through and no rewrite rule
    # may match into it.  Keep this the last member: appending preserves the
    # stable ``op_index`` values of every existing operator.
    CUSTOM = "Custom"


#: Stable ordering of operator types used for one-hot node encodings in the
#: GNN.  The order is the enum declaration order.
_OP_ORDER: List[OpType] = list(OpType)
_OP_INDEX: Dict[OpType, int] = {op: i for i, op in enumerate(_OP_ORDER)}


def op_index(op: OpType) -> int:
    """Return the stable integer index of ``op`` (used for one-hot encoding)."""
    return _OP_INDEX[op]


def num_op_types() -> int:
    """Total number of operator types in the registry."""
    return len(_OP_ORDER)


ELEMENTWISE_UNARY = {
    OpType.RELU, OpType.GELU, OpType.SIGMOID, OpType.TANH, OpType.EXP,
    OpType.SQRT, OpType.ERF, OpType.IDENTITY, OpType.CAST, OpType.DROPOUT,
}
ELEMENTWISE_BINARY = {OpType.ADD, OpType.SUB, OpType.MUL, OpType.DIV}
SOURCE_OPS = {OpType.INPUT, OpType.WEIGHT, OpType.CONSTANT}
#: Operators that are opaque by contract: no kernel exists (the executor's
#: counted pass-through is their defined behaviour) and rewrite rules must
#: never bind one of their nodes into a match.
OPAQUE_OPS = {OpType.CUSTOM}
FUSED_OPS = {
    OpType.FUSED_CONV_BN, OpType.FUSED_CONV_RELU, OpType.FUSED_CONV_BN_RELU,
    OpType.FUSED_MATMUL_ADD,
}


@dataclass(frozen=True)
class OpSignature:
    """Static description of an operator."""

    op_type: OpType
    min_inputs: int
    max_inputs: int
    num_outputs: int = 1
    #: Attributes the operator understands, mapped to their default values.
    attr_schema: Mapping[str, object] = field(default_factory=dict)
    #: Whether the operator performs no arithmetic (pure data movement).
    is_data_movement: bool = False

    def validate_arity(self, n_inputs: int) -> None:
        if not (self.min_inputs <= n_inputs <= self.max_inputs):
            raise ValueError(
                f"{self.op_type.value} expects between {self.min_inputs} and "
                f"{self.max_inputs} inputs, got {n_inputs}"
            )


def _sig(op, lo, hi, outs=1, attrs=None, data_movement=False) -> OpSignature:
    return OpSignature(op, lo, hi, outs, attrs or {}, data_movement)


OP_REGISTRY: Dict[OpType, OpSignature] = {
    OpType.INPUT: _sig(OpType.INPUT, 0, 0, attrs={"shape": None}),
    OpType.WEIGHT: _sig(OpType.WEIGHT, 0, 0, attrs={"shape": None}),
    OpType.CONSTANT: _sig(OpType.CONSTANT, 0, 0, attrs={"shape": None}),
    OpType.OUTPUT: _sig(OpType.OUTPUT, 1, 64, data_movement=True),

    OpType.MATMUL: _sig(OpType.MATMUL, 2, 2),
    OpType.BATCH_MATMUL: _sig(OpType.BATCH_MATMUL, 2, 2),

    OpType.CONV2D: _sig(
        OpType.CONV2D, 2, 3,
        attrs={"stride": 1, "padding": "same", "kernel": None},
    ),
    OpType.DEPTHWISE_CONV2D: _sig(
        OpType.DEPTHWISE_CONV2D, 2, 3, attrs={"stride": 1, "padding": "same"},
    ),
    OpType.GROUP_CONV2D: _sig(
        OpType.GROUP_CONV2D, 2, 3,
        attrs={"stride": 1, "padding": "same", "groups": 1},
    ),

    OpType.MAXPOOL2D: _sig(
        OpType.MAXPOOL2D, 1, 1, attrs={"kernel": 2, "stride": 2, "padding": "valid"},
    ),
    OpType.AVGPOOL2D: _sig(
        OpType.AVGPOOL2D, 1, 1, attrs={"kernel": 2, "stride": 2, "padding": "valid"},
    ),
    OpType.GLOBAL_AVGPOOL: _sig(OpType.GLOBAL_AVGPOOL, 1, 1),

    OpType.ADD: _sig(OpType.ADD, 2, 2),
    OpType.SUB: _sig(OpType.SUB, 2, 2),
    OpType.MUL: _sig(OpType.MUL, 2, 2),
    OpType.DIV: _sig(OpType.DIV, 2, 2),

    OpType.RELU: _sig(OpType.RELU, 1, 1),
    OpType.GELU: _sig(OpType.GELU, 1, 1),
    OpType.SIGMOID: _sig(OpType.SIGMOID, 1, 1),
    OpType.TANH: _sig(OpType.TANH, 1, 1),
    OpType.EXP: _sig(OpType.EXP, 1, 1),
    OpType.SQRT: _sig(OpType.SQRT, 1, 1),
    OpType.ERF: _sig(OpType.ERF, 1, 1),
    OpType.IDENTITY: _sig(OpType.IDENTITY, 1, 1, data_movement=True),
    OpType.CAST: _sig(OpType.CAST, 1, 1, attrs={"to": "float32"}, data_movement=True),
    OpType.DROPOUT: _sig(OpType.DROPOUT, 1, 1, attrs={"rate": 0.0}),

    OpType.BATCHNORM: _sig(OpType.BATCHNORM, 1, 5, attrs={"epsilon": 1e-5}),
    OpType.LAYERNORM: _sig(OpType.LAYERNORM, 1, 3, attrs={"epsilon": 1e-5}),
    OpType.SOFTMAX: _sig(OpType.SOFTMAX, 1, 1, attrs={"axis": -1}),

    OpType.RESHAPE: _sig(OpType.RESHAPE, 1, 1, attrs={"shape": None}, data_movement=True),
    OpType.TRANSPOSE: _sig(OpType.TRANSPOSE, 1, 1, attrs={"perm": None}, data_movement=True),
    OpType.CONCAT: _sig(OpType.CONCAT, 2, 64, attrs={"axis": 0}, data_movement=True),
    OpType.SPLIT: _sig(OpType.SPLIT, 1, 1, outs=2, attrs={"axis": 0, "parts": 2}, data_movement=True),
    OpType.SLICE: _sig(OpType.SLICE, 1, 1, attrs={"axis": 0, "start": 0, "end": None}, data_movement=True),
    OpType.SQUEEZE: _sig(OpType.SQUEEZE, 1, 1, attrs={"axis": 0}, data_movement=True),
    OpType.UNSQUEEZE: _sig(OpType.UNSQUEEZE, 1, 1, attrs={"axis": 0}, data_movement=True),
    OpType.FLATTEN: _sig(OpType.FLATTEN, 1, 1, data_movement=True),
    OpType.PAD: _sig(OpType.PAD, 1, 1, attrs={"pads": None}, data_movement=True),

    OpType.REDUCE_SUM: _sig(OpType.REDUCE_SUM, 1, 1, attrs={"axis": -1, "keepdims": False}),
    OpType.REDUCE_MEAN: _sig(OpType.REDUCE_MEAN, 1, 1, attrs={"axis": -1, "keepdims": False}),
    OpType.REDUCE_MAX: _sig(OpType.REDUCE_MAX, 1, 1, attrs={"axis": -1, "keepdims": False}),

    OpType.EMBEDDING: _sig(OpType.EMBEDDING, 2, 2),
    OpType.GATHER: _sig(OpType.GATHER, 2, 2, attrs={"axis": 0}),
    OpType.ENLARGE_CONV: _sig(OpType.ENLARGE_CONV, 2, 3, attrs={"kernel": 3}),
    OpType.FUSED_CONV_BN: _sig(OpType.FUSED_CONV_BN, 2, 7, attrs={"stride": 1, "padding": "same"}),
    OpType.FUSED_CONV_RELU: _sig(OpType.FUSED_CONV_RELU, 2, 3, attrs={"stride": 1, "padding": "same"}),
    OpType.FUSED_CONV_BN_RELU: _sig(OpType.FUSED_CONV_BN_RELU, 2, 7, attrs={"stride": 1, "padding": "same"}),
    OpType.FUSED_MATMUL_ADD: _sig(OpType.FUSED_MATMUL_ADD, 3, 3),
    OpType.NOOP: _sig(OpType.NOOP, 0, 0),
    OpType.CUSTOM: _sig(
        OpType.CUSTOM, 0, 64,
        attrs={"op": "", "shape": None, "dtype": "float32"},
    ),
}


# ---------------------------------------------------------------------------
# Shape inference
# ---------------------------------------------------------------------------

def _conv2d_output(inp: TensorSpec, weight: TensorSpec, attrs: Mapping) -> TensorSpec:
    """Shape inference for NCHW 2-D convolution.

    ``inp`` is ``[N, C_in, H, W]`` and ``weight`` is ``[C_out, C_in/groups, kh, kw]``.
    """
    n, _, h, w = inp.shape.dims
    c_out = weight.shape.dims[0]
    kh, kw = weight.shape.dims[2], weight.shape.dims[3]
    stride = int(attrs.get("stride", 1))
    padding = attrs.get("padding", "same")
    if padding == "same":
        oh = math.ceil(h / stride)
        ow = math.ceil(w / stride)
    else:  # "valid"
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(f"conv output collapsed to {oh}x{ow}")
    return TensorSpec(TensorShape((n, c_out, oh, ow)), inp.dtype)


def _pool_output(inp: TensorSpec, attrs: Mapping) -> TensorSpec:
    n, c, h, w = inp.shape.dims
    kernel = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", kernel))
    padding = attrs.get("padding", "valid")
    if padding == "same":
        oh, ow = math.ceil(h / stride), math.ceil(w / stride)
    else:
        oh = (h - kernel) // stride + 1
        ow = (w - kernel) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(f"pool output collapsed to {oh}x{ow}")
    return TensorSpec(TensorShape((n, c, oh, ow)), inp.dtype)


def _matmul_output(a: TensorSpec, b: TensorSpec) -> TensorSpec:
    ad, bd = a.shape.dims, b.shape.dims
    if len(ad) < 2 or len(bd) < 2:
        raise ValueError(f"matmul requires rank>=2 inputs, got {ad} x {bd}")
    if ad[-1] != bd[-2]:
        raise ValueError(f"matmul inner-dim mismatch: {ad} x {bd}")
    # Batch dims broadcast elementwise (numpy semantics), not "whichever
    # operand has more of them" — the executor surfaced the difference.
    abatch, bbatch = ad[:-2], bd[:-2]
    rank = max(len(abatch), len(bbatch))
    abatch = (1,) * (rank - len(abatch)) + abatch
    bbatch = (1,) * (rank - len(bbatch)) + bbatch
    batch = []
    for x, y in zip(abatch, bbatch):
        if x != y and x != 1 and y != 1:
            raise ValueError(f"matmul batch-dim mismatch: {ad} x {bd}")
        batch.append(max(x, y))
    return TensorSpec(TensorShape(tuple(batch) + (ad[-2], bd[-1])), a.dtype)


def _broadcast_output(a: TensorSpec, b: TensorSpec) -> TensorSpec:
    ad, bd = a.shape.dims, b.shape.dims
    rank = max(len(ad), len(bd))
    ad = (1,) * (rank - len(ad)) + ad
    bd = (1,) * (rank - len(bd)) + bd
    out = []
    for x, y in zip(ad, bd):
        if x != y and x != 1 and y != 1:
            raise ValueError(f"cannot broadcast {a.shape} with {b.shape}")
        out.append(max(x, y))
    return TensorSpec(TensorShape(out), a.dtype)


#: Memo for :func:`infer_output_spec` — the function is pure over
#: value-hashable arguments, and rewrite candidates re-infer the same
#: handful of (op, input specs, attrs) combinations thousands of times.
_INFER_MEMO: Dict[tuple, TensorSpec] = {}
_INFER_MEMO_MAX = 65536


def _attrs_key(attrs: Mapping[str, object]) -> Optional[tuple]:
    """A hashable snapshot of ``attrs``, or ``None`` when impossible."""
    items = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, list):
            value = tuple(value)
        items.append((key, value))
    return tuple(items)


def infer_output_spec(
    op_type: OpType,
    inputs: Sequence[TensorSpec],
    attrs: Optional[Mapping[str, object]] = None,
    output_index: int = 0,
) -> TensorSpec:
    """Infer the output :class:`TensorSpec` of an operator application.

    Raises ``ValueError`` when the inputs are not compatible with the
    operator; the substitution engine relies on this to reject ill-typed
    rewrites.
    """
    attrs_map = dict(attrs or {})
    try:
        memo_key = (op_type, tuple(inputs), _attrs_key(attrs_map),
                    output_index)
        spec = _INFER_MEMO.get(memo_key)
    except TypeError:
        memo_key = None
        spec = None
    if spec is not None:
        return spec
    spec = _infer_output_spec(op_type, inputs, attrs_map, output_index)
    if memo_key is not None and len(_INFER_MEMO) < _INFER_MEMO_MAX:
        _INFER_MEMO[memo_key] = spec
    return spec


def _infer_output_spec(
    op_type: OpType,
    inputs: Sequence[TensorSpec],
    attrs: Mapping[str, object],
    output_index: int = 0,
) -> TensorSpec:
    sig = OP_REGISTRY[op_type]
    sig.validate_arity(len(inputs))

    if op_type in SOURCE_OPS:
        shape = attrs.get("shape")
        if shape is None:
            raise ValueError(f"{op_type.value} requires a 'shape' attribute")
        return TensorSpec(
            TensorShape(shape),
            is_constant=op_type in (OpType.WEIGHT, OpType.CONSTANT),
        )

    if op_type is OpType.OUTPUT or op_type is OpType.IDENTITY or op_type is OpType.CAST:
        return inputs[0]
    if op_type is OpType.CUSTOM:
        # Opaque node: the importer *declares* the output spec; inference
        # only replays the declaration (stable under input rewiring).
        shape = attrs.get("shape")
        if shape is None:
            raise ValueError("Custom requires a declared 'shape' attribute")
        return TensorSpec(TensorShape(shape),
                          DataType(attrs.get("dtype", "float32")))
    if op_type is OpType.NOOP:
        return TensorSpec(TensorShape(()), DataType.FLOAT32)

    if op_type in ELEMENTWISE_UNARY or op_type in (
        OpType.BATCHNORM, OpType.LAYERNORM, OpType.SOFTMAX, OpType.DROPOUT, OpType.PAD
    ):
        if op_type is OpType.PAD and attrs.get("pads"):
            pads = attrs["pads"]
            dims = [d + pads[2 * i] + pads[2 * i + 1] for i, d in enumerate(inputs[0].shape.dims)]
            return inputs[0].with_shape(dims)
        return inputs[0]

    if op_type in ELEMENTWISE_BINARY:
        return _broadcast_output(inputs[0], inputs[1])

    if op_type in (OpType.MATMUL, OpType.BATCH_MATMUL):
        return _matmul_output(inputs[0], inputs[1])
    if op_type is OpType.FUSED_MATMUL_ADD:
        out = _matmul_output(inputs[0], inputs[1])
        return _broadcast_output(out, inputs[2])

    if op_type in (OpType.CONV2D, OpType.GROUP_CONV2D, OpType.DEPTHWISE_CONV2D,
                   OpType.ENLARGE_CONV, OpType.FUSED_CONV_BN, OpType.FUSED_CONV_RELU,
                   OpType.FUSED_CONV_BN_RELU):
        return _conv2d_output(inputs[0], inputs[1], attrs)

    if op_type in (OpType.MAXPOOL2D, OpType.AVGPOOL2D):
        return _pool_output(inputs[0], attrs)
    if op_type is OpType.GLOBAL_AVGPOOL:
        n, c = inputs[0].shape.dims[0], inputs[0].shape.dims[1]
        return TensorSpec(TensorShape((n, c)), inputs[0].dtype)

    if op_type is OpType.RESHAPE:
        target = attrs.get("shape")
        if target is None:
            raise ValueError("Reshape requires a 'shape' attribute")
        target_shape = TensorShape(target)
        if target_shape.num_elements != inputs[0].shape.num_elements:
            raise ValueError(
                f"reshape element mismatch: {inputs[0].shape} -> {target_shape}"
            )
        return inputs[0].with_shape(target_shape)

    if op_type is OpType.TRANSPOSE:
        perm = attrs.get("perm")
        dims = inputs[0].shape.dims
        if perm is None:
            perm = tuple(reversed(range(len(dims))))
        if sorted(perm) != list(range(len(dims))):
            raise ValueError(f"invalid transpose permutation {perm} for rank {len(dims)}")
        return inputs[0].with_shape([dims[p] for p in perm])

    if op_type is OpType.CONCAT:
        axis = int(attrs.get("axis", 0))
        out_shape = inputs[0].shape
        for other in inputs[1:]:
            out_shape = out_shape.concat(other.shape, axis)
        return inputs[0].with_shape(out_shape)

    if op_type is OpType.SPLIT:
        axis = int(attrs.get("axis", 0)) % inputs[0].shape.rank
        parts = int(attrs.get("parts", 2))
        dim = inputs[0].shape.dims[axis]
        if dim % parts != 0:
            raise ValueError(f"cannot split dim {dim} into {parts} equal parts")
        return inputs[0].with_shape(inputs[0].shape.with_dim(axis, dim // parts))

    if op_type is OpType.SLICE:
        axis = int(attrs.get("axis", 0)) % inputs[0].shape.rank
        start = int(attrs.get("start", 0))
        end = attrs.get("end")
        dim = inputs[0].shape.dims[axis]
        end = dim if end is None else int(end)
        if not (0 <= start < end <= dim):
            raise ValueError(f"invalid slice [{start}:{end}] of dim {dim}")
        return inputs[0].with_shape(inputs[0].shape.with_dim(axis, end - start))

    if op_type is OpType.SQUEEZE:
        axis = int(attrs.get("axis", 0)) % inputs[0].shape.rank
        dims = list(inputs[0].shape.dims)
        if dims[axis] != 1:
            raise ValueError(f"cannot squeeze non-unit dim {dims[axis]}")
        dims.pop(axis)
        return inputs[0].with_shape(dims)

    if op_type is OpType.UNSQUEEZE:
        axis = int(attrs.get("axis", 0))
        dims = list(inputs[0].shape.dims)
        axis = axis % (len(dims) + 1)
        dims.insert(axis, 1)
        return inputs[0].with_shape(dims)

    if op_type is OpType.FLATTEN:
        dims = inputs[0].shape.dims
        if not dims:
            return inputs[0].with_shape((1,))
        return inputs[0].with_shape((dims[0], int(math.prod(dims[1:])) or 1))

    if op_type in (OpType.REDUCE_SUM, OpType.REDUCE_MEAN, OpType.REDUCE_MAX):
        axis = int(attrs.get("axis", -1)) % inputs[0].shape.rank
        keepdims = bool(attrs.get("keepdims", False))
        dims = list(inputs[0].shape.dims)
        if keepdims:
            dims[axis] = 1
        else:
            # Reducing the only axis yields a scalar — the executed shape
            # is () (numpy drops the axis), not (1,).
            dims.pop(axis)
        return inputs[0].with_shape(dims)

    if op_type in (OpType.EMBEDDING, OpType.GATHER):
        # indices [..., L] gathering rows of a [V, D] table
        table, indices = inputs[0], inputs[1]
        if op_type is OpType.EMBEDDING:
            return TensorSpec(
                TensorShape(indices.shape.dims + (table.shape.dims[-1],)),
                table.dtype,
            )
        axis = int(attrs.get("axis", 0)) % table.shape.rank
        dims = list(table.shape.dims)
        dims[axis] = indices.shape.num_elements
        return table.with_shape(dims)

    raise NotImplementedError(f"shape inference missing for {op_type.value}")
