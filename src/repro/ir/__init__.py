"""Tensor computation graph intermediate representation.

Public surface:

* :class:`~repro.ir.tensor.TensorShape`, :class:`~repro.ir.tensor.TensorSpec`
* :class:`~repro.ir.ops.OpType` and shape inference
* :class:`~repro.ir.graph.Graph` and :class:`~repro.ir.builder.GraphBuilder`
* JSON (ONNX-like) serialisation helpers
* binary wire codec for whole graphs and graph deltas (:mod:`repro.ir.wire`)
"""

from .tensor import DataType, TensorShape, TensorSpec, make_spec
from .ops import OpType, OP_REGISTRY, infer_output_spec, op_index, num_op_types
from .graph import Edge, Graph, GraphDelta, GraphValidationError, Node, NodeId
from .builder import GraphBuilder
from .serialize import graph_from_dict, graph_to_dict, load_graph, save_graph
from .wire import (WireFormatError, apply_delta, decode_graph, delta_summary,
                   encode_delta, encode_graph, roundtrip_equal)

__all__ = [
    "DataType", "TensorShape", "TensorSpec", "make_spec",
    "OpType", "OP_REGISTRY", "infer_output_spec", "op_index", "num_op_types",
    "Edge", "Graph", "GraphDelta", "GraphValidationError", "Node", "NodeId",
    "GraphBuilder",
    "graph_from_dict", "graph_to_dict", "load_graph", "save_graph",
    "WireFormatError", "apply_delta", "decode_graph", "delta_summary",
    "encode_delta", "encode_graph", "roundtrip_equal",
]
