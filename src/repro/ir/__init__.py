"""Tensor computation graph intermediate representation.

Public surface:

* :class:`~repro.ir.tensor.TensorShape`, :class:`~repro.ir.tensor.TensorSpec`
* :class:`~repro.ir.ops.OpType` and shape inference
* :class:`~repro.ir.graph.Graph` and :class:`~repro.ir.builder.GraphBuilder`
* JSON (ONNX-like) serialisation helpers
"""

from .tensor import DataType, TensorShape, TensorSpec, make_spec
from .ops import OpType, OP_REGISTRY, infer_output_spec, op_index, num_op_types
from .graph import Edge, Graph, GraphDelta, GraphValidationError, Node, NodeId
from .builder import GraphBuilder
from .serialize import graph_from_dict, graph_to_dict, load_graph, save_graph

__all__ = [
    "DataType", "TensorShape", "TensorSpec", "make_spec",
    "OpType", "OP_REGISTRY", "infer_output_spec", "op_index", "num_op_types",
    "Edge", "Graph", "GraphDelta", "GraphValidationError", "Node", "NodeId",
    "GraphBuilder",
    "graph_from_dict", "graph_to_dict", "load_graph", "save_graph",
]
