"""ONNX-like JSON serialisation for computation graphs.

The paper imports models through ONNX into TASO's representation and exports
the optimised graph back out.  We provide the same round-trip through a plain
JSON document so optimised graphs can be persisted and compared.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from .graph import Edge, Graph, Node
from .ops import OpType
from .tensor import TensorSpec

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

_FORMAT_VERSION = 1


def graph_to_dict(graph: Graph) -> Dict:
    """Serialise a graph to a JSON-compatible dictionary."""
    nodes = []
    for nid in graph.topological_order():
        node = graph.nodes[nid]
        nodes.append({
            "id": nid,
            "op": node.op_type.value,
            "name": node.name,
            "attrs": _encode_attrs(node.attrs),
            "outputs": [spec.to_dict() for spec in node.outputs],
            "inputs": [
                {"src": e.src, "src_slot": e.src_slot, "dst_slot": e.dst_slot}
                for e in graph.in_edges(nid)
            ],
        })
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "nodes": nodes,
    }


def graph_from_dict(data: Dict) -> Graph:
    """Reconstruct a graph from :func:`graph_to_dict` output."""
    if data.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {data.get('format_version')}")
    graph = Graph(data.get("name", "graph"))
    # Recreate nodes preserving the original ids so edge references resolve.
    # Install them in ascending-id order: the engine's invariant is that
    # ``graph.nodes`` iterates in id order (= creation order), which keeps
    # indexed anchor matching and full-scan matching enumeration-identical.
    max_id = -1
    for entry in sorted(data["nodes"], key=lambda e: int(e["id"])):
        nid = int(entry["id"])
        node = Node(
            node_id=nid,
            op_type=OpType(entry["op"]),
            attrs=_decode_attrs(entry.get("attrs", {})),
            outputs=[TensorSpec.from_dict(o) for o in entry["outputs"]],
            name=entry.get("name", ""),
        )
        graph.nodes[nid] = node
        graph._in_edges[nid] = []
        graph._out_edges[nid] = []
        max_id = max(max_id, nid)
    for entry in data["nodes"]:
        nid = int(entry["id"])
        for edge in entry.get("inputs", []):
            e = Edge(src=int(edge["src"]), dst=nid,
                     src_slot=int(edge["src_slot"]), dst_slot=int(edge["dst_slot"]))
            graph._in_edges[nid].append(e)
            graph._out_edges[e.src].append(e)
    graph._next_id = max_id + 1
    graph._rebuild_indices()  # nodes were installed without the mutation API
    graph.validate()
    return graph


def save_graph(graph: Graph, path: Union[str, Path]) -> None:
    """Write a graph to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: Union[str, Path]) -> Graph:
    """Read a graph previously written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def _encode_attrs(attrs: Dict) -> Dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        else:
            out[key] = value
    return out


def _decode_attrs(attrs: Dict) -> Dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out
