"""Tensor shape and dtype descriptors used throughout the graph IR.

The graph IR only carries *metadata* about tensors (shape, dtype, whether the
tensor is a constant / weight), never the numerical payload itself, mirroring
how TASO's substitution engine reasons about computation graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence, Tuple

__all__ = ["DataType", "TensorShape", "TensorSpec", "MAX_RANK"]

#: Maximum tensor rank supported by the IR.  The paper pads edge attributes to
#: rank 4 (leading dimensions padded with zeros), so we keep the same bound.
MAX_RANK = 4


class DataType(Enum):
    """Element type of a tensor."""

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    INT64 = "int64"
    INT32 = "int32"
    BOOL = "bool"

    @property
    def size_bytes(self) -> int:
        """Size in bytes of a single element of this dtype."""
        return {
            DataType.FLOAT32: 4,
            DataType.FLOAT16: 2,
            DataType.INT64: 8,
            DataType.INT32: 4,
            DataType.BOOL: 1,
        }[self]


@dataclass(frozen=True)
class TensorShape:
    """An immutable tensor shape.

    Parameters
    ----------
    dims:
        The extent of each dimension, outermost first.  Dimensions must be
        positive integers; the empty tuple denotes a scalar.
    """

    dims: Tuple[int, ...]

    def __init__(self, dims: Iterable[int] = ()):  # noqa: D401 - dataclass init
        dims = tuple(int(d) for d in dims)
        if len(dims) > MAX_RANK:
            raise ValueError(
                f"rank {len(dims)} exceeds MAX_RANK={MAX_RANK}: {dims!r}"
            )
        if any(d <= 0 for d in dims):
            raise ValueError(f"all dimensions must be positive, got {dims!r}")
        object.__setattr__(self, "dims", dims)

    # -- basic properties -------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        """Total number of elements (1 for a scalar)."""
        return int(math.prod(self.dims)) if self.dims else 1

    def dim(self, index: int) -> int:
        """Return the extent of dimension ``index`` (supports negatives)."""
        return self.dims[index]

    # -- conversions -------------------------------------------------------
    def padded(self, rank: int = MAX_RANK) -> Tuple[int, ...]:
        """Return dims left-padded with zeros to ``rank`` entries.

        This is the edge-attribute encoding used by the paper's GNN: a tensor
        of shape ``[3, 256, 256]`` becomes ``(0, 3, 256, 256)``.
        """
        if self.rank > rank:
            raise ValueError(f"cannot pad rank-{self.rank} shape to rank {rank}")
        return (0,) * (rank - self.rank) + self.dims

    def as_list(self) -> list[int]:
        """Return dims as a plain list (for JSON serialisation)."""
        return list(self.dims)

    # -- shape algebra -----------------------------------------------------
    def with_dim(self, index: int, value: int) -> "TensorShape":
        """Return a copy with dimension ``index`` replaced by ``value``."""
        dims = list(self.dims)
        dims[index] = value
        return TensorShape(dims)

    def concat(self, other: "TensorShape", axis: int) -> "TensorShape":
        """Shape of concatenating a tensor of this shape with ``other``."""
        if self.rank != other.rank:
            raise ValueError("concat requires equal ranks")
        axis = axis % self.rank
        for i, (a, b) in enumerate(zip(self.dims, other.dims)):
            if i != axis and a != b:
                raise ValueError(
                    f"concat mismatch on dim {i}: {self.dims} vs {other.dims}"
                )
        return self.with_dim(axis, self.dims[axis] + other.dims[axis])

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __getitem__(self, index):
        return self.dims[index]

    def __repr__(self) -> str:
        return f"TensorShape({list(self.dims)})"


@dataclass(frozen=True)
class TensorSpec:
    """Full description of a tensor value flowing along a graph edge."""

    shape: TensorShape
    dtype: DataType = DataType.FLOAT32
    #: Constant tensors (weights, fixed masks) have no runtime data
    #: dependency; subgraphs whose inputs are all constants are candidates
    #: for constant folding in the end-to-end simulator.
    is_constant: bool = False
    name: str = ""

    @property
    def num_elements(self) -> int:
        return self.shape.num_elements

    @property
    def size_bytes(self) -> int:
        """Number of bytes this tensor occupies in device memory."""
        return self.num_elements * self.dtype.size_bytes

    def with_shape(self, shape: Sequence[int] | TensorShape) -> "TensorSpec":
        """Return a copy with a different shape."""
        if not isinstance(shape, TensorShape):
            shape = TensorShape(shape)
        return TensorSpec(shape, self.dtype, self.is_constant, self.name)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "shape": self.shape.as_list(),
            "dtype": self.dtype.value,
            "is_constant": self.is_constant,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TensorSpec":
        return cls(
            shape=TensorShape(data["shape"]),
            dtype=DataType(data.get("dtype", "float32")),
            is_constant=bool(data.get("is_constant", False)),
            name=data.get("name", ""),
        )


def make_spec(*dims: int, constant: bool = False, name: str = "") -> TensorSpec:
    """Convenience constructor: ``make_spec(1, 3, 224, 224)``."""
    return TensorSpec(TensorShape(dims), is_constant=constant, name=name)
