"""Compact binary wire format for graphs and graph deltas.

The JSON codec in :mod:`repro.ir.serialize` is the archival format; this
module is the *transport* format the parallel search engine and the remote
worker protocol use.  Two payload kinds share one envelope:

* **graph** — a complete graph, including its private id counter
  (``Graph._next_id``).  Carrying the counter matters: rewrites allocate node
  ids from it, so a replica decoded in a worker process hands out exactly the
  ids the originating process would — the foundation of the serial-vs-parallel
  bit-for-bit determinism contract (see ``docs/parallel.md``).
* **delta** — the difference between a child graph and a parent the receiver
  already holds: removed node ids plus full records for added/changed nodes.
  A search ships its base graph *once* and thereafter only deltas, keeping
  per-iteration traffic proportional to what the rewrite touched instead of
  to the whole model.

Encoded graphs round-trip exactly: node ids, the id counter, attrs (including
tuples, preserved as tuples), output specs, edge slots and — consequently —
the structural hash and every cost estimate are identical on both sides.
Node iteration order is canonicalised to ascending id, which is the invariant
order every live graph already has (ids are handed out monotonically and
``Graph.copy`` preserves insertion order), so match enumeration on a decoded
replica is identical to the original too.

Layout: little-endian, varint-based.  Strings (op names, dtypes) are
interned in a per-payload string table.  No pickle anywhere — payloads are
safe to pass between heterogeneous processes and over sockets.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from .graph import Edge, Graph, Node, NodeId
from .ops import OpType
from .tensor import DataType, TensorShape, TensorSpec

__all__ = ["encode_graph", "decode_graph", "encode_delta", "apply_delta",
           "delta_summary", "roundtrip_equal", "WireFormatError",
           "WIRE_VERSION"]

WIRE_VERSION = 1

_MAGIC = b"RG"
_KIND_GRAPH = 1
_KIND_DELTA = 2

# Attribute value tags.
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_TUPLE = 6
_T_LIST = 7
_T_DICT = 8
_T_BYTES = 9

_FLOAT = struct.Struct("<d")


class WireFormatError(ValueError):
    """Raised when a payload cannot be decoded."""


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

def _w_uvarint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise WireFormatError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _r_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise WireFormatError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _w_svarint(buf: bytearray, value: int) -> None:
    # ZigZag: interleave signs so small magnitudes stay small.
    _w_uvarint(buf, value * 2 if value >= 0 else -value * 2 - 1)


def _r_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _r_uvarint(data, pos)
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos


def _w_str(buf: bytearray, value: str) -> None:
    raw = value.encode("utf-8")
    _w_uvarint(buf, len(raw))
    buf.extend(raw)


def _r_str(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _r_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise WireFormatError("truncated string")
    return data[pos:end].decode("utf-8"), end


def _w_value(buf: bytearray, value: object) -> None:
    """Tagged encoding of one attribute value (JSON-ish type universe)."""
    if value is None:
        buf.append(_T_NONE)
    elif value is True:
        buf.append(_T_TRUE)
    elif value is False:
        buf.append(_T_FALSE)
    elif isinstance(value, int):
        buf.append(_T_INT)
        _w_svarint(buf, value)
    elif isinstance(value, float):
        buf.append(_T_FLOAT)
        buf.extend(_FLOAT.pack(value))
    elif isinstance(value, str):
        buf.append(_T_STR)
        _w_str(buf, value)
    elif isinstance(value, tuple):
        buf.append(_T_TUPLE)
        _w_uvarint(buf, len(value))
        for item in value:
            _w_value(buf, item)
    elif isinstance(value, list):
        buf.append(_T_LIST)
        _w_uvarint(buf, len(value))
        for item in value:
            _w_value(buf, item)
    elif isinstance(value, dict):
        buf.append(_T_DICT)
        _w_uvarint(buf, len(value))
        for key, item in value.items():
            _w_str(buf, str(key))
            _w_value(buf, item)
    elif isinstance(value, (bytes, bytearray)):
        buf.append(_T_BYTES)
        _w_uvarint(buf, len(value))
        buf.extend(value)
    else:
        raise WireFormatError(
            f"unsupported attribute value type {type(value).__name__}")


def _r_value(data: bytes, pos: int) -> Tuple[object, int]:
    if pos >= len(data):
        raise WireFormatError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _r_svarint(data, pos)
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise WireFormatError("truncated float")
        return _FLOAT.unpack_from(data, pos)[0], pos + 8
    if tag == _T_STR:
        return _r_str(data, pos)
    if tag in (_T_TUPLE, _T_LIST):
        count, pos = _r_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _r_value(data, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _r_uvarint(data, pos)
        out: Dict[str, object] = {}
        for _ in range(count):
            key, pos = _r_str(data, pos)
            out[key], pos = _r_value(data, pos)
        return out, pos
    if tag == _T_BYTES:
        length, pos = _r_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise WireFormatError("truncated bytes")
        return bytes(data[pos:end]), end
    raise WireFormatError(f"unknown value tag {tag}")


class _StringTable:
    """Interns strings during encoding; emitted once per payload."""

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self.strings: List[str] = []

    def intern(self, value: str) -> int:
        idx = self._index.get(value)
        if idx is None:
            idx = self._index[value] = len(self.strings)
            self.strings.append(value)
        return idx

    def write(self, buf: bytearray) -> None:
        _w_uvarint(buf, len(self.strings))
        for value in self.strings:
            _w_str(buf, value)


def _r_strtab(data: bytes, pos: int) -> Tuple[List[str], int]:
    count, pos = _r_uvarint(data, pos)
    strings = []
    for _ in range(count):
        value, pos = _r_str(data, pos)
        strings.append(value)
    return strings, pos


# ---------------------------------------------------------------------------
# Node records
# ---------------------------------------------------------------------------

def _w_node(buf: bytearray, table: _StringTable, graph: Graph, nid: NodeId,
            node: Node) -> None:
    _w_uvarint(buf, nid)
    _w_uvarint(buf, table.intern(node.op_type.value))
    _w_str(buf, node.name)
    _w_uvarint(buf, len(node.attrs))
    for key, value in node.attrs.items():
        _w_str(buf, key)
        _w_value(buf, value)
    _w_uvarint(buf, len(node.outputs))
    for spec in node.outputs:
        _w_uvarint(buf, table.intern(spec.dtype.value))
        buf.append(1 if spec.is_constant else 0)
        _w_str(buf, spec.name)
        dims = spec.shape.dims
        _w_uvarint(buf, len(dims))
        for dim in dims:
            _w_uvarint(buf, dim)
    edges = graph.in_edges(nid)  # dst_slot order; slots are dense (validate)
    _w_uvarint(buf, len(edges))
    for edge in edges:
        _w_uvarint(buf, edge.src)
        _w_uvarint(buf, edge.src_slot)


def _r_node(data: bytes, pos: int, strings: List[str],
            ) -> Tuple[NodeId, Node, List[Tuple[int, int]], int]:
    """Returns (id, node, in-edge (src, src_slot) pairs in slot order, pos)."""
    nid, pos = _r_uvarint(data, pos)
    op_idx, pos = _r_uvarint(data, pos)
    name, pos = _r_str(data, pos)
    nattrs, pos = _r_uvarint(data, pos)
    attrs: Dict[str, object] = {}
    for _ in range(nattrs):
        key, pos = _r_str(data, pos)
        attrs[key], pos = _r_value(data, pos)
    nouts, pos = _r_uvarint(data, pos)
    outputs: List[TensorSpec] = []
    for _ in range(nouts):
        dtype_idx, pos = _r_uvarint(data, pos)
        if pos >= len(data):
            raise WireFormatError("truncated output spec")
        is_constant = bool(data[pos])
        pos += 1
        spec_name, pos = _r_str(data, pos)
        rank, pos = _r_uvarint(data, pos)
        dims = []
        for _ in range(rank):
            dim, pos = _r_uvarint(data, pos)
            dims.append(dim)
        outputs.append(TensorSpec(TensorShape(dims),
                                  dtype=DataType(strings[dtype_idx]),
                                  is_constant=is_constant, name=spec_name))
    nins, pos = _r_uvarint(data, pos)
    edges: List[Tuple[int, int]] = []
    for _ in range(nins):
        src, pos = _r_uvarint(data, pos)
        src_slot, pos = _r_uvarint(data, pos)
        edges.append((src, src_slot))
    node = Node(node_id=nid, op_type=OpType(strings[op_idx]), attrs=attrs,
                outputs=outputs, name=name)
    return nid, node, edges, pos


def _check_header(data: bytes, expected_kind: int) -> int:
    if len(data) < 4 or data[:2] != _MAGIC:
        raise WireFormatError("not a graph wire payload (bad magic)")
    if data[2] != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {data[2]}")
    if data[3] != expected_kind:
        raise WireFormatError(
            f"payload kind {data[3]} where {expected_kind} was expected")
    return 4


def _header(kind: int) -> bytearray:
    return bytearray(_MAGIC + bytes((WIRE_VERSION, kind)))


# ---------------------------------------------------------------------------
# Whole graphs
# ---------------------------------------------------------------------------

def encode_graph(graph: Graph) -> bytes:
    """Serialise ``graph`` (including its id counter) to bytes."""
    table = _StringTable()
    body = bytearray()
    nodes = graph.nodes
    ids = sorted(nodes)
    _w_uvarint(body, len(ids))
    for nid in ids:
        _w_node(body, table, graph, nid, nodes[nid])
    buf = _header(_KIND_GRAPH)
    _w_str(buf, graph.name)
    _w_uvarint(buf, graph.id_bound)
    table.write(buf)
    buf.extend(body)
    return bytes(buf)


def decode_graph(data: bytes, validate: bool = False) -> Graph:
    """Reconstruct a graph encoded by :func:`encode_graph`."""
    pos = _check_header(data, _KIND_GRAPH)
    name, pos = _r_str(data, pos)
    next_id, pos = _r_uvarint(data, pos)
    strings, pos = _r_strtab(data, pos)
    count, pos = _r_uvarint(data, pos)
    records = []
    for _ in range(count):
        nid, node, edges, pos = _r_node(data, pos, strings)
        records.append((nid, node, edges))
    graph = _build(name, next_id, records)
    if validate:
        graph.validate()
    return graph


def _build(name: str, next_id: int,
           records: List[Tuple[NodeId, Node, List[Tuple[int, int]]]]) -> Graph:
    """Assemble a graph from decoded node records (ascending-id order)."""
    graph = Graph(name)
    nodes = graph.nodes
    in_map = graph._in_edges
    out_map = graph._out_edges
    for nid, node, _ in records:
        nodes[nid] = node
        out_map[nid] = []
    for nid, _, edges in records:
        in_list: List[Edge] = []
        for dst_slot, (src, src_slot) in enumerate(edges):
            if src not in nodes:
                raise WireFormatError(
                    f"edge references unknown node {src} -> {nid}")
            edge = Edge(src=src, dst=nid, src_slot=src_slot, dst_slot=dst_slot)
            in_list.append(edge)
            out_map.edit(src).append(edge)
        in_map[nid] = in_list
    graph._next_id = max(
        next_id, max((nid for nid, _, _ in records), default=-1) + 1)
    graph._rebuild_indices()
    return graph


# ---------------------------------------------------------------------------
# Deltas
# ---------------------------------------------------------------------------

def _node_unchanged(parent: Graph, child: Graph, nid: NodeId) -> bool:
    pnode = parent.nodes[nid]
    cnode = child.nodes[nid]
    if pnode is not cnode:
        if (pnode.op_type is not cnode.op_type or pnode.attrs != cnode.attrs
                or pnode.outputs != cnode.outputs or pnode.name != cnode.name):
            return False
    pedges = parent._in_edges[nid]
    cedges = child._in_edges[nid]
    return pedges is cedges or list(pedges) == list(cedges)


def encode_delta(parent: Graph, child: Graph) -> bytes:
    """Encode ``child`` as a delta against ``parent``.

    Works for any pair of graphs whose shared node ids mean the same thing —
    in practice, any descendant produced from ``parent`` through
    ``Graph.copy`` + rewrites (ids are never reused, so surviving ids always
    refer to the identical node).  Unchanged nodes are detected by object
    identity first (copies share node objects), falling back to a structural
    comparison.
    """
    parent_nodes = parent.nodes
    child_nodes = child.nodes
    removed = [nid for nid in parent_nodes if nid not in child_nodes]
    installed = [nid for nid in child_nodes
                 if nid not in parent_nodes
                 or not _node_unchanged(parent, child, nid)]
    installed.sort()

    table = _StringTable()
    body = bytearray()
    _w_uvarint(body, len(installed))
    for nid in installed:
        _w_node(body, table, child, nid, child_nodes[nid])

    buf = _header(_KIND_DELTA)
    _w_str(buf, child.name)
    _w_uvarint(buf, child.id_bound)
    _w_uvarint(buf, len(removed))
    for nid in sorted(removed):
        _w_uvarint(buf, nid)
    table.write(buf)
    buf.extend(body)
    return bytes(buf)


def apply_delta(parent: Graph, data: bytes, validate: bool = False) -> Graph:
    """Materialise the child graph a delta payload describes.

    ``parent`` is left untouched; unchanged nodes are shared by reference
    (node objects are immutable by convention — see ``Graph.copy``).  The
    result carries no caches and no delta lineage: it is a fresh, standalone
    graph whose structural hash, costs and id counter are identical to the
    child the delta was encoded from.
    """
    pos = _check_header(data, _KIND_DELTA)
    name, pos = _r_str(data, pos)
    next_id, pos = _r_uvarint(data, pos)
    nremoved, pos = _r_uvarint(data, pos)
    removed = set()
    for _ in range(nremoved):
        nid, pos = _r_uvarint(data, pos)
        removed.add(nid)
    strings, pos = _r_strtab(data, pos)
    count, pos = _r_uvarint(data, pos)
    installed: Dict[NodeId, Tuple[Node, List[Tuple[int, int]]]] = {}
    for _ in range(count):
        nid, node, edges, pos = _r_node(data, pos, strings)
        installed[nid] = (node, edges)

    records: List[Tuple[NodeId, Node, List[Tuple[int, int]]]] = []
    parent_nodes = parent.nodes
    all_ids = sorted((set(parent_nodes) - removed) | set(installed))
    for nid in all_ids:
        entry = installed.get(nid)
        if entry is not None:
            records.append((nid, entry[0], entry[1]))
        else:
            if nid in removed or nid not in parent_nodes:
                raise WireFormatError(f"delta references unknown node {nid}")
            edges = [(e.src, e.src_slot) for e in parent.in_edges(nid)]
            records.append((nid, parent_nodes[nid], edges))
    graph = _build(name, next_id, records)
    if validate:
        graph.validate()
    return graph


def delta_summary(data: bytes) -> Dict[str, int]:
    """Cheap introspection of a delta payload: counts and byte size."""
    pos = _check_header(data, _KIND_DELTA)
    _, pos = _r_str(data, pos)
    _, pos = _r_uvarint(data, pos)
    nremoved, pos = _r_uvarint(data, pos)
    for _ in range(nremoved):
        _, pos = _r_uvarint(data, pos)
    strings, pos = _r_strtab(data, pos)
    ninstalled, pos = _r_uvarint(data, pos)
    return {"removed": nremoved, "installed": ninstalled,
            "payload_bytes": len(data)}


def roundtrip_equal(a: Graph, b: Graph) -> bool:
    """True when two graphs are indistinguishable to the engine: same ids,
    same id counter, same structure per node, same structural hash."""
    if a.id_bound != b.id_bound or set(a.nodes) != set(b.nodes):
        return False
    for nid in a.nodes:
        if not _node_unchanged(a, b, nid):
            return False
    return a.structural_hash() == b.structural_hash()
