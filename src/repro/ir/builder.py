"""Fluent builder API for constructing computation graphs.

This mirrors TASO's programming interface (``graph.conv2d(...)``,
``graph.matmul(...)`` etc.) so that the model zoo reads like the original
network definitions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .graph import Graph, NodeId
from .ops import OpType

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Convenience wrapper producing a well-typed :class:`Graph`.

    Every method returns the id of the node it created so calls compose
    naturally::

        b = GraphBuilder("mlp")
        x = b.input((1, 128))
        w = b.weight((128, 256))
        h = b.relu(b.matmul(x, w))
    """

    def __init__(self, name: str = "graph"):
        self.graph = Graph(name)

    # -- sources -----------------------------------------------------------
    def input(self, shape: Sequence[int], name: str = "") -> NodeId:
        return self.graph.add_node(OpType.INPUT, (), {"shape": tuple(shape)}, name)

    def weight(self, shape: Sequence[int], name: str = "") -> NodeId:
        return self.graph.add_node(OpType.WEIGHT, (), {"shape": tuple(shape)}, name)

    def constant(self, shape: Sequence[int], name: str = "") -> NodeId:
        return self.graph.add_node(OpType.CONSTANT, (), {"shape": tuple(shape)}, name)

    # -- dense -------------------------------------------------------------
    def matmul(self, a: NodeId, b: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.MATMUL, (a, b), name=name)

    def batch_matmul(self, a: NodeId, b: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.BATCH_MATMUL, (a, b), name=name)

    def linear(self, x: NodeId, in_features: int, out_features: int,
               bias: bool = True, name: str = "") -> NodeId:
        """Dense layer: ``x @ W (+ b)`` with a freshly created weight."""
        w = self.weight((in_features, out_features), name=f"{name}_w" if name else "")
        out = self.matmul(x, w, name=name)
        if bias:
            b = self.weight((out_features,), name=f"{name}_b" if name else "")
            out = self.add(out, b)
        return out

    # -- convolutions --------------------------------------------------------
    def conv2d(self, x: NodeId, out_channels: int, kernel: int = 3,
               stride: int = 1, padding: str = "same",
               in_channels: Optional[int] = None, name: str = "") -> NodeId:
        if in_channels is None:
            in_channels = self.graph.nodes[x].output_spec.shape.dims[1]
        w = self.weight((out_channels, in_channels, kernel, kernel),
                        name=f"{name}_w" if name else "")
        return self.graph.add_node(
            OpType.CONV2D, (x, w),
            {"stride": stride, "padding": padding, "kernel": kernel}, name)

    def group_conv2d(self, x: NodeId, out_channels: int, groups: int,
                     kernel: int = 3, stride: int = 1, padding: str = "same",
                     name: str = "") -> NodeId:
        in_channels = self.graph.nodes[x].output_spec.shape.dims[1]
        w = self.weight((out_channels, max(in_channels // groups, 1), kernel, kernel))
        return self.graph.add_node(
            OpType.GROUP_CONV2D, (x, w),
            {"stride": stride, "padding": padding, "groups": groups, "kernel": kernel},
            name)

    def depthwise_conv2d(self, x: NodeId, kernel: int = 3, stride: int = 1,
                         padding: str = "same", name: str = "") -> NodeId:
        channels = self.graph.nodes[x].output_spec.shape.dims[1]
        w = self.weight((channels, 1, kernel, kernel))
        return self.graph.add_node(
            OpType.DEPTHWISE_CONV2D, (x, w),
            {"stride": stride, "padding": padding, "kernel": kernel}, name)

    # -- pooling -------------------------------------------------------------
    def maxpool(self, x: NodeId, kernel: int = 2, stride: Optional[int] = None,
                padding: str = "valid", name: str = "") -> NodeId:
        return self.graph.add_node(
            OpType.MAXPOOL2D, (x,),
            {"kernel": kernel, "stride": stride or kernel, "padding": padding}, name)

    def avgpool(self, x: NodeId, kernel: int = 2, stride: Optional[int] = None,
                padding: str = "valid", name: str = "") -> NodeId:
        return self.graph.add_node(
            OpType.AVGPOOL2D, (x,),
            {"kernel": kernel, "stride": stride or kernel, "padding": padding}, name)

    def global_avgpool(self, x: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.GLOBAL_AVGPOOL, (x,), name=name)

    # -- elementwise ----------------------------------------------------------
    def add(self, a: NodeId, b: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.ADD, (a, b), name=name)

    def sub(self, a: NodeId, b: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.SUB, (a, b), name=name)

    def mul(self, a: NodeId, b: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.MUL, (a, b), name=name)

    def div(self, a: NodeId, b: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.DIV, (a, b), name=name)

    def relu(self, x: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.RELU, (x,), name=name)

    def gelu(self, x: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.GELU, (x,), name=name)

    def sigmoid(self, x: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.SIGMOID, (x,), name=name)

    def tanh(self, x: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.TANH, (x,), name=name)

    def identity(self, x: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.IDENTITY, (x,), name=name)

    def dropout(self, x: NodeId, rate: float = 0.1, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.DROPOUT, (x,), {"rate": rate}, name)

    # -- normalisation ---------------------------------------------------------
    def batchnorm(self, x: NodeId, name: str = "") -> NodeId:
        channels = self.graph.nodes[x].output_spec.shape.dims[1]
        scale = self.weight((channels,))
        bias = self.weight((channels,))
        return self.graph.add_node(OpType.BATCHNORM, (x, scale, bias), name=name)

    def layernorm(self, x: NodeId, name: str = "") -> NodeId:
        hidden = self.graph.nodes[x].output_spec.shape.dims[-1]
        scale = self.weight((hidden,))
        bias = self.weight((hidden,))
        return self.graph.add_node(OpType.LAYERNORM, (x, scale, bias), name=name)

    def softmax(self, x: NodeId, axis: int = -1, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.SOFTMAX, (x,), {"axis": axis}, name)

    # -- shape ops ---------------------------------------------------------------
    def reshape(self, x: NodeId, shape: Sequence[int], name: str = "") -> NodeId:
        return self.graph.add_node(OpType.RESHAPE, (x,), {"shape": tuple(shape)}, name)

    def transpose(self, x: NodeId, perm: Optional[Sequence[int]] = None,
                  name: str = "") -> NodeId:
        attrs = {"perm": tuple(perm)} if perm is not None else {}
        return self.graph.add_node(OpType.TRANSPOSE, (x,), attrs, name)

    def concat(self, xs: Sequence[NodeId], axis: int = 1, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.CONCAT, tuple(xs), {"axis": axis}, name)

    def split(self, x: NodeId, parts: int = 2, axis: int = 1,
              name: str = "") -> NodeId:
        return self.graph.add_node(
            OpType.SPLIT, (x,), {"axis": axis, "parts": parts}, name)

    def slice(self, x: NodeId, axis: int, start: int, end: int,
              name: str = "") -> NodeId:
        return self.graph.add_node(
            OpType.SLICE, (x,), {"axis": axis, "start": start, "end": end}, name)

    def flatten(self, x: NodeId, name: str = "") -> NodeId:
        return self.graph.add_node(OpType.FLATTEN, (x,), name=name)

    def reduce_mean(self, x: NodeId, axis: int = -1, keepdims: bool = False,
                    name: str = "") -> NodeId:
        return self.graph.add_node(
            OpType.REDUCE_MEAN, (x,), {"axis": axis, "keepdims": keepdims}, name)

    # -- misc --------------------------------------------------------------------
    def custom(self, inputs: Sequence[NodeId], op: str, shape: Sequence[int],
               dtype: str = "float32", name: str = "") -> NodeId:
        """An opaque foreign operator with a *declared* output shape.

        Used by the frontend importer for ops outside the bridge table: the
        node is excluded from rewrite matching and executes as a counted
        pass-through, but carries enough metadata (foreign op name, output
        spec) to keep the graph well-typed end to end.
        """
        return self.graph.add_node(
            OpType.CUSTOM, tuple(inputs),
            {"op": op, "shape": tuple(shape), "dtype": dtype}, name)

    def embedding(self, indices: NodeId, vocab: int, dim: int,
                  name: str = "") -> NodeId:
        table = self.weight((vocab, dim))
        return self.graph.add_node(OpType.EMBEDDING, (table, indices), name=name)

    def output(self, xs: Sequence[NodeId] | NodeId, name: str = "output") -> NodeId:
        if isinstance(xs, int):
            xs = (xs,)
        return self.graph.add_node(OpType.OUTPUT, tuple(xs), name=name)

    # -- composite blocks ----------------------------------------------------------
    def conv_bn_relu(self, x: NodeId, out_channels: int, kernel: int = 3,
                     stride: int = 1, padding: str = "same", name: str = "") -> NodeId:
        """The ubiquitous Conv → BatchNorm → ReLU block."""
        c = self.conv2d(x, out_channels, kernel, stride, padding, name=name)
        b = self.batchnorm(c)
        return self.relu(b)

    def multi_head_attention(self, x: NodeId, hidden: int, num_heads: int,
                             seq_len: int, batch: int = 1, name: str = "") -> NodeId:
        """Standard multi-head self-attention block (pre-softmax scaling)."""
        head_dim = hidden // num_heads
        q = self.linear(x, hidden, hidden, name=f"{name}_q")
        k = self.linear(x, hidden, hidden, name=f"{name}_k")
        v = self.linear(x, hidden, hidden, name=f"{name}_v")
        # [B, S, H] -> [B*num_heads, S, head_dim]
        q = self.reshape(q, (batch * num_heads, seq_len, head_dim))
        k = self.reshape(k, (batch * num_heads, seq_len, head_dim))
        v = self.reshape(v, (batch * num_heads, seq_len, head_dim))
        kt = self.transpose(k, (0, 2, 1))
        scores = self.batch_matmul(q, kt)
        scale = self.constant((1,), name=f"{name}_scale")
        scores = self.mul(scores, scale)
        probs = self.softmax(scores, axis=-1)
        ctx = self.batch_matmul(probs, v)
        ctx = self.reshape(ctx, (batch, seq_len, hidden))
        return self.linear(ctx, hidden, hidden, name=f"{name}_o")

    def transformer_ffn(self, x: NodeId, hidden: int, ffn_dim: int,
                        activation: str = "gelu", name: str = "") -> NodeId:
        h = self.linear(x, hidden, ffn_dim, name=f"{name}_fc1")
        h = self.gelu(h) if activation == "gelu" else self.relu(h)
        return self.linear(h, ffn_dim, hidden, name=f"{name}_fc2")

    def transformer_block(self, x: NodeId, hidden: int, num_heads: int,
                          seq_len: int, ffn_dim: Optional[int] = None,
                          batch: int = 1, name: str = "") -> NodeId:
        """Pre-LN transformer encoder block."""
        ffn_dim = ffn_dim or hidden * 4
        normed = self.layernorm(x)
        attn = self.multi_head_attention(normed, hidden, num_heads, seq_len,
                                         batch, name=f"{name}_attn")
        x = self.add(x, attn)
        normed = self.layernorm(x)
        ffn = self.transformer_ffn(normed, hidden, ffn_dim, name=f"{name}_ffn")
        return self.add(x, ffn)

    # -- finalise -------------------------------------------------------------------
    def build(self, outputs: Optional[Sequence[NodeId]] = None) -> Graph:
        """Validate and return the underlying graph.

        If ``outputs`` is given, an explicit Output node is appended that
        consumes them (so they are never dead-code-eliminated by rewrites).
        """
        if outputs:
            self.output(tuple(outputs))
        self.graph.validate()
        return self.graph
