"""X-RLflow reproduction: graph reinforcement learning for tensor graph superoptimisation.

The package is organised into:

* :mod:`repro.ir` — tensor computation graph IR
* :mod:`repro.models` — model zoo (graph builders for the evaluated DNNs)
* :mod:`repro.rules` — TASO-style rewrite-rule substrate
* :mod:`repro.cost` — simulated device, cost model, end-to-end latency simulator
* :mod:`repro.search` — baseline optimisers (greedy/TASO, Tensat, PET, …)
* :mod:`repro.nn` — numpy autodiff, GNN layers, optimisers
* :mod:`repro.rl` — PPO, GAE, the graph-rewrite RL environment
* :mod:`repro.core` — the X-RLflow optimiser public API
* :mod:`repro.experiments` — the per-table / per-figure reproduction harness

The most common entry points (``Graph``, ``GraphBuilder``, ``XRLflow``,
``XRLflowConfig``) are re-exported lazily at the package root.
"""

from importlib import import_module
from typing import Any

__version__ = "0.1.0"

#: name → (module, attribute) for lazy top-level re-exports.
_LAZY_EXPORTS = {
    "Graph": ("repro.ir", "Graph"),
    "GraphBuilder": ("repro.ir", "GraphBuilder"),
    "OpType": ("repro.ir", "OpType"),
    "XRLflowConfig": ("repro.core.config", "XRLflowConfig"),
    "XRLflow": ("repro.core.xrlflow", "XRLflow"),
    "OptimisationResult": ("repro.core.xrlflow", "OptimisationResult"),
    "build_model": ("repro.models", "build_model"),
    "OptimisationService": ("repro.service.api", "OptimisationService"),
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    if name in _LAZY_EXPORTS:
        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return __all__
