"""Experiment harness reproducing every table and figure of the paper.

* Table 1 — cost-model vs end-to-end latency discrepancy
* Table 2 — PET vs TASO on ResNet-18 / ResNeXt-50
* Table 3 — evaluated DNN properties (family, rewrite complexity)
* Figure 4 — end-to-end speedup, TASO vs X-RLflow
* Figure 5 — rewrite-rule application heatmap
* Figure 6 — optimisation time, TASO vs X-RLflow
* Figure 7 — generalisation to unseen tensor shapes
* Figure 8 — comparison with Tensat
"""

from .common import (ExperimentReport, ExperimentRow, benchmark_config,
                     build_small_model, format_table, small_model_kwargs)
from .tables import run_table1, run_table2, run_table3
from .figures import (optimise_suite, run_figure4, run_figure5, run_figure6,
                      run_figure7, run_figure8)

__all__ = [
    "ExperimentReport", "ExperimentRow", "benchmark_config", "build_small_model",
    "format_table", "small_model_kwargs",
    "run_table1", "run_table2", "run_table3",
    "optimise_suite", "run_figure4", "run_figure5", "run_figure6",
    "run_figure7", "run_figure8",
]
