"""Reproduction of the paper's tables (1, 2 and 3)."""

from __future__ import annotations

from typing import Optional, Sequence

from ..cost.cost_model import CostModel
from ..cost.e2e import E2ESimulator
from ..models.registry import TABLE1_MODELS, PAPER_EVAL_MODELS, MODEL_REGISTRY, build_model
from ..rules.rulesets import default_ruleset
from ..search.greedy import TASOOptimizer
from ..search.pet import PETOptimizer
from .common import ExperimentReport, build_small_model

__all__ = ["run_table1", "run_table2", "run_table3"]


def run_table1(models: Optional[Sequence[str]] = None,
               use_small_models: bool = True) -> ExperimentReport:
    """Table 1: discrepancy between cost-model estimates and end-to-end latency.

    For each unoptimised DNN we report the cost-model estimate, the simulated
    end-to-end latency and the relative difference.  The paper reports 5–24%.
    """
    models = list(models or TABLE1_MODELS)
    cost_model = CostModel()
    e2e = E2ESimulator()
    report = ExperimentReport(
        experiment="Table 1",
        description="cost model vs end-to-end latency on unoptimised DNNs (ms, %)",
    )
    for name in models:
        graph = build_small_model(name) if use_small_models else build_model(name)
        cost = cost_model.estimate(graph)
        latency = e2e.measure(graph, repeats=5).mean_ms
        diff = abs(latency - cost) / cost * 100.0
        report.add(name, cost_model_ms=cost, e2e_ms=latency, diff_percent=diff)
    return report


def run_table2(max_iterations: int = 40) -> ExperimentReport:
    """Table 2: PET vs TASO optimised latency on ResNet-18 and ResNeXt-50.

    The paper observes that PET's partially-equivalent transformations win on
    ResNet-18 but lose on ResNeXt-50; the same crossover should appear here.
    """
    e2e = E2ESimulator()
    report = ExperimentReport(
        experiment="Table 2",
        description="optimised end-to-end latency (ms): PET vs TASO",
    )
    for name in ("resnet18", "resnext50"):
        graph = build_small_model(name)
        taso = TASOOptimizer(max_iterations=max_iterations, e2e=e2e)
        pet = PETOptimizer(max_iterations=max_iterations, e2e=e2e)
        taso_result = taso.optimise(graph, name)
        pet_result = pet.optimise(graph, name)
        report.add(name,
                   pet_ms=pet_result.final_latency_ms,
                   taso_ms=taso_result.final_latency_ms,
                   unoptimised_ms=taso_result.initial_latency_ms)
    return report


def run_table3(models: Optional[Sequence[str]] = None,
               use_small_models: bool = True) -> ExperimentReport:
    """Table 3: evaluated DNN properties — family and transformation "complexity".

    Complexity is the number of rewrite candidates available on the
    unoptimised graph (the paper reports the average over the optimisation
    process; the initial count is a close, deterministic proxy).
    """
    models = list(models or PAPER_EVAL_MODELS)
    ruleset = default_ruleset()
    report = ExperimentReport(
        experiment="Table 3",
        description="model family (0=conv, 1=transformer) and rewrite complexity",
    )
    for name in models:
        graph = build_small_model(name) if use_small_models else build_model(name)
        candidates = ruleset.all_candidates(graph)
        family = MODEL_REGISTRY[name].family
        report.add(name,
                   is_transformer=1.0 if family == "transformer" else 0.0,
                   complexity=float(len(candidates)),
                   num_nodes=float(graph.num_nodes))
    return report
