"""Reproduction of the paper's figures (4, 5, 6, 7 and 8)."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..core.config import XRLflowConfig
from ..core.generalise import ShapeVariant, evaluate_generalisation
from ..core.xrlflow import XRLflow
from ..cost.e2e import E2ESimulator
from ..models.registry import PAPER_EVAL_MODELS, TENSAT_MODELS, build_model
from ..search.result import SearchResult
from ..search.tensat import TensatOptimizer
from .common import (ExperimentReport, benchmark_config, build_small_model,
                     optimise_via_service, small_model_kwargs)

__all__ = ["run_figure4", "run_figure5", "run_figure6", "run_figure7",
           "run_figure8", "optimise_suite"]


def optimise_suite(models: Optional[Sequence[str]] = None,
                   config: Optional[XRLflowConfig] = None,
                   taso_iterations: int = 40,
                   ) -> Dict[str, Dict[str, SearchResult]]:
    """Optimise every model with TASO and X-RLflow.

    Returns ``{model: {"taso": result, "xrlflow": result}}`` — the raw data
    behind Figures 4, 5 and 6 (speedup, rule heatmap and optimisation time).
    """
    models = list(models or PAPER_EVAL_MODELS)
    config = config or benchmark_config()
    results: Dict[str, Dict[str, SearchResult]] = {}
    for name in models:
        graph = build_small_model(name)
        # The TASO leg routes through the shared optimisation service, so a
        # second sweep over the same models returns from the warm cache.
        # (E2ESimulator.latency_ms is deterministic, so the service worker's
        # own simulator reports the same numbers as a shared instance.)
        taso_result = optimise_via_service(
            graph, "taso", {"max_iterations": taso_iterations},
            model_name=name).search
        if taso_result.stats.get("cache_hit"):
            # Figure 6 plots optimisation wall-clock time; a cache hit
            # reports retrieval time, so restore the original search time
            # the cache entry preserved.
            taso_result = dataclasses.replace(
                taso_result,
                optimisation_time_s=taso_result.stats["search_time_s"])
        xrlflow = XRLflow(config, e2e=E2ESimulator())
        results[name] = {
            "taso": taso_result,
            "xrlflow": xrlflow.optimise(graph, name),
        }
    return results


def run_figure4(results: Optional[Dict[str, Dict[str, SearchResult]]] = None,
                models: Optional[Sequence[str]] = None,
                config: Optional[XRLflowConfig] = None) -> ExperimentReport:
    """Figure 4: end-to-end inference speedup, TASO vs X-RLflow, per DNN."""
    results = results or optimise_suite(models, config)
    report = ExperimentReport(
        experiment="Figure 4",
        description="end-to-end speedup (%) over the unoptimised graph",
    )
    for name, by_opt in results.items():
        report.add(name,
                   taso_speedup_pct=by_opt["taso"].speedup_percent,
                   xrlflow_speedup_pct=by_opt["xrlflow"].speedup_percent)
    return report


def run_figure5(results: Optional[Dict[str, Dict[str, SearchResult]]] = None,
                models: Optional[Sequence[str]] = None,
                config: Optional[XRLflowConfig] = None) -> ExperimentReport:
    """Figure 5: heatmap of rewrite rules applied by X-RLflow per DNN."""
    results = results or optimise_suite(models, config)
    report = ExperimentReport(
        experiment="Figure 5",
        description="count of each rewrite rule applied by X-RLflow",
    )
    for name, by_opt in results.items():
        counts = by_opt["xrlflow"].rule_counts()
        report.add(name, **{rule: float(count) for rule, count in counts.items()},
                   total_substitutions=float(len(by_opt["xrlflow"].applied_rules)))
    return report


def run_figure6(results: Optional[Dict[str, Dict[str, SearchResult]]] = None,
                models: Optional[Sequence[str]] = None,
                config: Optional[XRLflowConfig] = None) -> ExperimentReport:
    """Figure 6: optimisation wall-clock time, TASO vs X-RLflow.

    As in the paper, X-RLflow's time excludes agent training (the trained
    policy is reused across deployments) but includes its per-step inference.
    """
    results = results or optimise_suite(models, config)
    report = ExperimentReport(
        experiment="Figure 6",
        description="optimisation time (seconds)",
    )
    for name, by_opt in results.items():
        report.add(name,
                   taso_seconds=by_opt["taso"].optimisation_time_s,
                   xrlflow_seconds=by_opt["xrlflow"].optimisation_time_s)
    return report


def run_figure7(config: Optional[XRLflowConfig] = None) -> ExperimentReport:
    """Figure 7: generalisation of a trained agent to unseen tensor shapes.

    DALL-E is trained at one text length and evaluated at others; InceptionV3
    is trained at one image resolution and evaluated at others.
    """
    config = config or benchmark_config()
    report = ExperimentReport(
        experiment="Figure 7",
        description="speedup (%) at unseen tensor shapes (trained shape marked)",
    )

    dalle_variants = [
        ShapeVariant("dalle-32", dict(small_model_kwargs("dalle"), text_len=32),
                     is_training_shape=True),
        ShapeVariant("dalle-48", dict(small_model_kwargs("dalle"), text_len=48)),
        ShapeVariant("dalle-64", dict(small_model_kwargs("dalle"), text_len=64)),
    ]
    dalle_report = evaluate_generalisation(
        lambda **kw: build_model("dalle", **kw), dalle_variants, config, "dalle")
    for label, result in zip(dalle_report.labels, dalle_report.results):
        report.add(label, speedup_pct=result.speedup_percent)

    inception_variants = [
        ShapeVariant("inception-299",
                     dict(small_model_kwargs("inception_v3"), image_size=299),
                     is_training_shape=True),
        ShapeVariant("inception-225",
                     dict(small_model_kwargs("inception_v3"), image_size=225)),
        ShapeVariant("inception-187",
                     dict(small_model_kwargs("inception_v3"), image_size=187)),
    ]
    inception_report = evaluate_generalisation(
        lambda **kw: build_model("inception_v3", **kw), inception_variants,
        config, "inception_v3")
    for label, result in zip(inception_report.labels, inception_report.results):
        report.add(label, speedup_pct=result.speedup_percent)
    return report


def run_figure8(models: Optional[Sequence[str]] = None,
                config: Optional[XRLflowConfig] = None,
                tensat_rounds: int = 4) -> ExperimentReport:
    """Figure 8: end-to-end speedup comparison between Tensat and X-RLflow."""
    models = list(models or TENSAT_MODELS)
    config = config or benchmark_config()
    report = ExperimentReport(
        experiment="Figure 8",
        description="end-to-end speedup (%): Tensat vs X-RLflow",
    )
    for name in models:
        graph = build_small_model(name)
        e2e = E2ESimulator()
        tensat = TensatOptimizer(e2e=e2e, round_limit=tensat_rounds)
        xrlflow = XRLflow(config, e2e=e2e)
        tensat_result = tensat.optimise(graph, name)
        xrlflow_result = xrlflow.optimise(graph, name)
        report.add(name,
                   tensat_speedup_pct=tensat_result.speedup_percent,
                   xrlflow_speedup_pct=xrlflow_result.speedup_percent)
    return report
