"""Shared infrastructure for the per-table / per-figure experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.config import XRLflowConfig
from ..ir.graph import Graph
from ..models.registry import build_model

__all__ = ["ExperimentRow", "ExperimentReport", "small_model_kwargs",
           "benchmark_config", "format_table", "shared_service",
           "optimise_via_service"]

#: Reduced-size builder arguments used by the experiment harness so that the
#: pure-Python optimisers finish in seconds.  The architecture (operator mix,
#: connectivity) is unchanged — only depth/sequence length shrink.
_SMALL_KWARGS: Dict[str, Dict[str, object]] = {
    "inception_v3": {"blocks_a": 1, "blocks_b": 1, "blocks_c": 1},
    "squeezenet": {},
    "resnext50": {"layers": (1, 1, 1, 1)},
    "resnet18": {},
    "bert": {"num_layers": 2, "seq_len": 64, "hidden": 256, "num_heads": 4},
    "vit": {"num_layers": 2, "hidden": 256, "num_heads": 4, "image_size": 128},
    "dalle": {"num_layers": 2, "hidden": 256, "num_heads": 4,
              "text_len": 32, "image_tokens": 64},
    "tt": {"audio_layers": 1, "label_layers": 1, "hidden": 256, "num_heads": 4,
           "audio_frames": 100},
}


def small_model_kwargs(name: str) -> Dict[str, object]:
    """Builder kwargs for the reduced-size experiment configuration."""
    return dict(_SMALL_KWARGS.get(name, {}))


def build_small_model(name: str) -> Graph:
    """Build the reduced-size variant of a registry model."""
    return build_model(name, **small_model_kwargs(name))


def benchmark_config(**overrides) -> XRLflowConfig:
    """X-RLflow configuration used by the benchmark harness.

    Smaller than the paper's 1000-episode training runs (pure-numpy training
    is orders of magnitude slower per step than JAX on a GPU) but on the same
    code path; pass overrides to scale up.
    """
    cfg = XRLflowConfig.fast(num_episodes=6, max_steps=18, max_candidates=24,
                             update_frequency=3, ppo_epochs=1, eval_episodes=3)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


#: Process-wide optimisation service shared by the experiment harness, so
#: repeated sweeps (different figures re-optimising the same models with the
#: same settings) hit a warm fingerprint cache instead of re-searching.
_SHARED_SERVICE = None


def shared_service(num_workers: int = 4):
    """The experiment harness's process-wide :class:`OptimisationService`.

    ``num_workers`` only takes effect on the call that creates the
    singleton; later calls return the existing service unchanged.
    """
    global _SHARED_SERVICE
    if _SHARED_SERVICE is None:
        from ..service.api import OptimisationService
        _SHARED_SERVICE = OptimisationService(num_workers=num_workers)
    return _SHARED_SERVICE


def optimise_via_service(graph: Graph, optimiser: str = "taso",
                         config: Optional[Dict[str, object]] = None,
                         model_name: str = ""):
    """Optimise one graph through the shared service (warm-cache path).

    Returns a :class:`repro.service.worker.ServiceResult`; the underlying
    :class:`~repro.search.result.SearchResult` is its ``.search`` attribute.
    """
    return shared_service().optimise(graph, optimiser=optimiser,
                                     config=config, model_name=model_name)


@dataclass
class ExperimentRow:
    """One row of a reproduced table/figure."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentReport:
    """A reproduced table or figure: rows of named values."""

    experiment: str
    description: str
    rows: List[ExperimentRow] = field(default_factory=list)

    def add(self, label: str, **values: float) -> None:
        self.rows.append(ExperimentRow(label=label, values=dict(values)))

    def column(self, key: str) -> Dict[str, float]:
        return {row.label: row.values[key] for row in self.rows if key in row.values}

    def to_text(self) -> str:
        return format_table(self)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.to_text()


def format_table(report: ExperimentReport) -> str:
    """Render a report as a fixed-width text table (what the benches print)."""
    if not report.rows:
        return f"== {report.experiment} ==\n(no rows)"
    columns = sorted({key for row in report.rows for key in row.values})
    label_width = max(len(r.label) for r in report.rows) + 2
    header = f"== {report.experiment}: {report.description} ==\n"
    header += "".ljust(label_width) + "".join(c.rjust(18) for c in columns) + "\n"
    lines = []
    for row in report.rows:
        cells = []
        for c in columns:
            value = row.values.get(c)
            cells.append(("-" if value is None else f"{value:.4f}").rjust(18))
        lines.append(row.label.ljust(label_width) + "".join(cells))
    return header + "\n".join(lines)
