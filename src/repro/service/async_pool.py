"""Asyncio-driven worker pool: local process workers + remote JSON-RPC boxes.

:class:`AsyncWorkerPool` is an :class:`concurrent.futures.Executor`-shaped
backend for :class:`~repro.service.scheduler.JobScheduler` (``backend=
"async"``).  A dedicated thread runs an asyncio event loop; every submitted
job becomes a coroutine on that loop, which either

* awaits a **local process worker** (``loop.run_in_executor`` over a
  :class:`~concurrent.futures.ProcessPoolExecutor`), or
* awaits a **remote worker** over the JSON-RPC protocol in
  :mod:`repro.service.remote`, when the pool was given
  ``remote_endpoints`` and the job is an optimisation request
  (``execute_request``-shaped — the only job type with a wire encoding).

Remote dispatch is **health- and load-aware** (see
:mod:`repro.service.health`): every endpoint carries a live record —
capacity and in-flight jobs learned from periodic ``ping`` probes, an
EWMA of observed call latency, and a consecutive-failure circuit
breaker — and each job goes to the least-loaded live endpoint.  A dead
box is quarantined after ``failure_threshold`` consecutive transport
failures and receives no further work; the probe loop keeps pinging it
and readmits it the moment it answers, so a rebooted worker rejoins the
rotation automatically.  When every endpoint is quarantined or saturated
the job spills to the local pool — jobs never fail because a box died.
``router="round_robin"`` restores the legacy blind rotation as the
benchmark baseline.

A *transport* failure (box unreachable / dropped mid-call) falls back to
local execution and is counted in :attr:`AsyncWorkerPool.stats` — an
in-search failure on the remote side propagates to the caller like any
job error.

Because one event loop multiplexes every in-flight job, thousands of queued
jobs cost one coroutine each rather than one thread each, and slow remote
calls never occupy a local worker slot.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent import futures
from typing import Any, Callable, Dict, Optional, Sequence

from . import remote
from .health import HealthRegistry
from .worker import execute_request

__all__ = ["AsyncWorkerPool"]


class AsyncWorkerPool:
    """Event-loop executor over local process workers and remote endpoints.

    Satisfies the slice of the :class:`concurrent.futures.Executor`
    interface the scheduler uses (``submit`` / ``shutdown``), so it drops
    in behind :class:`~repro.service.scheduler.JobScheduler`.

    Args:
        num_workers: Local process-pool size, and the cap on concurrently
            *dispatched* local jobs.
        remote_endpoints: ``"host:port"`` strings of
            :class:`~repro.service.remote.WorkerServer` boxes.  Empty means
            all work runs locally.
        max_remote_inflight: Concurrent calls assumed allowed *per
            endpoint* until the first successful ``ping`` reports the
            worker's real capacity (which then takes over).
        local_threads: Run local jobs on a thread pool instead of
            processes — only sensible for tests and cache-dominated
            traffic; real searches want process parallelism.
        router: ``"health"`` (least-loaded live endpoint, circuit
            breaker + readmission — the default) or ``"round_robin"``
            (the legacy rotation, kept as the benchmark baseline).
        failure_threshold: Consecutive transport failures that quarantine
            an endpoint under the health router.
        probe_interval_s: Seconds between health-probe rounds (``ping``
            of every endpoint).  ``0`` disables the background loop —
            probes then only happen via :meth:`probe_endpoints`.
    """

    def __init__(self, num_workers: int = 4,
                 remote_endpoints: Optional[Sequence[str]] = None,
                 max_remote_inflight: int = 4,
                 local_threads: bool = False,
                 router: str = "health",
                 failure_threshold: int = 3,
                 probe_interval_s: float = 5.0):
        self.num_workers = max(1, int(num_workers))
        self.remote_endpoints = [str(e) for e in (remote_endpoints or [])]
        self.max_remote_inflight = max(1, int(max_remote_inflight))
        self.probe_interval_s = max(0.0, float(probe_interval_s))
        self.health = HealthRegistry(self.remote_endpoints,
                                     default_capacity=self.max_remote_inflight,
                                     failure_threshold=failure_threshold,
                                     policy=router)
        self._stats_lock = threading.Lock()
        self._dispatched_local = 0
        self._dispatched_remote = 0
        self._remote_fallbacks = 0
        if local_threads:
            self._local: futures.Executor = futures.ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-async-local")
        else:
            self._local = futures.ProcessPoolExecutor(
                max_workers=self.num_workers)
        self._loop = asyncio.new_event_loop()
        self._local_slots = asyncio.Semaphore(self.num_workers)
        self._inflight: set = set()
        self._closed = False
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-async-pool", daemon=True)
        self._thread.start()
        self._probe_task: Optional["futures.Future"] = None
        # The legacy round-robin baseline is deliberately blind: no probe
        # loop, no capacity learning — the exact pre-health behaviour.
        if (self.remote_endpoints and self.probe_interval_s > 0
                and router == "health"):
            self._probe_task = asyncio.run_coroutine_threadsafe(
                self._probe_loop(), self._loop)

    # -- executor interface --------------------------------------------
    def submit(self, fn: Callable[..., Any], *args: Any,
               **kwargs: Any) -> "futures.Future":
        """Schedule ``fn(*args, **kwargs)`` on the event loop.

        Returns:
            A :class:`concurrent.futures.Future` (what
            ``asyncio.run_coroutine_threadsafe`` hands back), so scheduler
            bookkeeping is backend-agnostic.

        Raises:
            RuntimeError: If the pool has been shut down.
        """
        if self._closed:
            raise RuntimeError("AsyncWorkerPool is shut down")
        future = asyncio.run_coroutine_threadsafe(
            self._dispatch(fn, args, kwargs), self._loop)
        self._inflight.add(future)
        future.add_done_callback(self._inflight.discard)
        return future

    async def _dispatch(self, fn: Callable[..., Any], args: tuple,
                        kwargs: dict) -> Any:
        if self.remote_endpoints and fn is execute_request:
            endpoint = self.health.try_acquire()
            if endpoint is not None:
                started = self._loop.time()
                try:
                    result = await remote.optimise_async(
                        endpoint, *args, progress=kwargs.get("progress"))
                except remote.RemoteUnavailableError:
                    self.health.record_failure(endpoint)
                    with self._stats_lock:
                        self._remote_fallbacks += 1
                else:
                    self.health.record_success(
                        endpoint, self._loop.time() - started)
                    with self._stats_lock:
                        self._dispatched_remote += 1
                    return result
                finally:
                    self.health.release(endpoint)
        async with self._local_slots:
            with self._stats_lock:
                self._dispatched_local += 1
            return await self._loop.run_in_executor(
                self._local, functools.partial(fn, *args, **kwargs))

    # -- health probing ------------------------------------------------
    async def _probe_once(self) -> Dict[str, bool]:
        """Ping every endpoint concurrently; feed the health registry."""
        async def probe(endpoint: str) -> bool:
            try:
                info = await remote.ping_async(endpoint, timeout_s=5.0)
            except (remote.RemoteUnavailableError,
                    remote.RemoteWorkerError, OSError):
                self.health.observe_ping(endpoint, None)
                return False
            self.health.observe_ping(endpoint, info)
            return True

        results = await asyncio.gather(
            *(probe(e) for e in self.remote_endpoints))
        return dict(zip(self.remote_endpoints, results))

    async def _probe_loop(self) -> None:
        """Background probe: refresh load records, readmit healed boxes."""
        while not self._closed:
            try:
                await self._probe_once()
            except Exception:  # pragma: no cover - probe must never die
                pass
            await asyncio.sleep(self.probe_interval_s)

    def probe_endpoints(self) -> Dict[str, bool]:
        """Run one probe round now; ``{endpoint: reachable}``.

        Synchronous front end to the background probe — a successful ping
        updates capacity/load and readmits a quarantined endpoint
        immediately, which is how tests (and impatient operators) avoid
        waiting out ``probe_interval_s``.
        """
        if not self.remote_endpoints:
            return {}
        return asyncio.run_coroutine_threadsafe(
            self._probe_once(), self._loop).result(timeout=30)

    def ping_endpoints(self) -> Dict[str, bool]:
        """Back-compat alias for :meth:`probe_endpoints`."""
        return self.probe_endpoints()

    # -- introspection -------------------------------------------------
    @property
    def stats(self) -> Dict[str, Any]:
        """Dispatch counters plus per-endpoint health snapshots.

        ``dispatched_local`` / ``dispatched_remote`` / ``remote_fallbacks``
        as before; ``endpoints`` maps each endpoint to its
        :meth:`~repro.service.health.EndpointHealth.to_dict` record when
        any are configured.
        """
        with self._stats_lock:
            counters: Dict[str, Any] = {
                "dispatched_local": self._dispatched_local,
                "dispatched_remote": self._dispatched_remote,
                "remote_fallbacks": self._remote_fallbacks,
            }
        if self.remote_endpoints:
            counters["endpoints"] = self.health.snapshot()
        return counters

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for in-flight jobs."""
        if self._closed:
            return
        self._closed = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                # One no-op round trip lets the loop actually process the
                # cancellation before run_forever is stopped below.
                asyncio.run_coroutine_threadsafe(
                    asyncio.sleep(0), self._loop).result(timeout=5)
            except Exception:  # pragma: no cover - teardown best effort
                pass
        if wait:
            futures.wait(list(self._inflight))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._local.shutdown(wait=wait)

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return (f"AsyncWorkerPool(workers={self.num_workers}, "
                f"endpoints={self.remote_endpoints}, stats={self.stats})")
