"""Asyncio-driven worker pool: local process workers + remote JSON-RPC boxes.

:class:`AsyncWorkerPool` is an :class:`concurrent.futures.Executor`-shaped
backend for :class:`~repro.service.scheduler.JobScheduler` (``backend=
"async"``).  A dedicated thread runs an asyncio event loop; every submitted
job becomes a coroutine on that loop, which either

* awaits a **local process worker** (``loop.run_in_executor`` over a
  :class:`~concurrent.futures.ProcessPoolExecutor`), or
* awaits a **remote worker** over the JSON-RPC protocol in
  :mod:`repro.service.remote`, when the pool was given
  ``remote_endpoints`` and the job is an optimisation request
  (``execute_request``-shaped — the only job type with a wire encoding).

Remote dispatch is round-robin across endpoints, skipping any whose
in-flight slots are saturated (a job never parks behind one slow box; if
every endpoint is saturated it spills to the local pool).  A *transport*
failure (box unreachable / dropped mid-call) falls back to local
execution and is counted in :attr:`AsyncWorkerPool.stats` — an in-search
failure on the remote side propagates to the caller like any job error.

Because one event loop multiplexes every in-flight job, thousands of queued
jobs cost one coroutine each rather than one thread each, and slow remote
calls never occupy a local worker slot.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import threading
from concurrent import futures
from typing import Any, Callable, Dict, List, Optional, Sequence

from . import remote
from .worker import execute_request

__all__ = ["AsyncWorkerPool"]


class AsyncWorkerPool:
    """Event-loop executor over local process workers and remote endpoints.

    Satisfies the slice of the :class:`concurrent.futures.Executor`
    interface the scheduler uses (``submit`` / ``shutdown``), so it drops
    in behind :class:`~repro.service.scheduler.JobScheduler`.

    Args:
        num_workers: Local process-pool size, and the cap on concurrently
            *dispatched* local jobs.
        remote_endpoints: ``"host:port"`` strings of
            :class:`~repro.service.remote.WorkerServer` boxes.  Empty means
            all work runs locally.
        max_remote_inflight: Concurrent calls allowed *per endpoint*
            (matches the remote ``num_workers`` in a homogeneous fleet).
        local_threads: Run local jobs on a thread pool instead of
            processes — only sensible for tests and cache-dominated
            traffic; real searches want process parallelism.
    """

    def __init__(self, num_workers: int = 4,
                 remote_endpoints: Optional[Sequence[str]] = None,
                 max_remote_inflight: int = 4,
                 local_threads: bool = False):
        self.num_workers = max(1, int(num_workers))
        self.remote_endpoints = [str(e) for e in (remote_endpoints or [])]
        self.max_remote_inflight = max(1, int(max_remote_inflight))
        self._stats_lock = threading.Lock()
        self._dispatched_local = 0
        self._dispatched_remote = 0
        self._remote_fallbacks = 0
        if local_threads:
            self._local: futures.Executor = futures.ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-async-local")
        else:
            self._local = futures.ProcessPoolExecutor(
                max_workers=self.num_workers)
        self._loop = asyncio.new_event_loop()
        self._local_slots = asyncio.Semaphore(self.num_workers)
        self._remote_slots = {
            endpoint: asyncio.Semaphore(self.max_remote_inflight)
            for endpoint in self.remote_endpoints
        }
        self._rr = itertools.cycle(self.remote_endpoints) \
            if self.remote_endpoints else None
        self._inflight: set = set()
        self._closed = False
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-async-pool", daemon=True)
        self._thread.start()

    # -- executor interface --------------------------------------------
    def submit(self, fn: Callable[..., Any], *args: Any,
               **kwargs: Any) -> "futures.Future":
        """Schedule ``fn(*args, **kwargs)`` on the event loop.

        Returns:
            A :class:`concurrent.futures.Future` (what
            ``asyncio.run_coroutine_threadsafe`` hands back), so scheduler
            bookkeeping is backend-agnostic.

        Raises:
            RuntimeError: If the pool has been shut down.
        """
        if self._closed:
            raise RuntimeError("AsyncWorkerPool is shut down")
        future = asyncio.run_coroutine_threadsafe(
            self._dispatch(fn, args, kwargs), self._loop)
        self._inflight.add(future)
        future.add_done_callback(self._inflight.discard)
        return future

    def _pick_endpoint(self) -> Optional[str]:
        """Next round-robin endpoint with a free slot, or ``None``.

        Skipping saturated endpoints avoids head-of-line blocking: a job
        never parks behind one slow box while other endpoints (or the
        local pool) sit idle.  When every endpoint is saturated the job
        spills to the local process pool.
        """
        for _ in range(len(self.remote_endpoints)):
            endpoint = next(self._rr)
            if not self._remote_slots[endpoint].locked():
                return endpoint
        return None

    async def _dispatch(self, fn: Callable[..., Any], args: tuple,
                        kwargs: dict) -> Any:
        if self._rr is not None and fn is execute_request:
            endpoint = self._pick_endpoint()
            if endpoint is not None:
                async with self._remote_slots[endpoint]:
                    try:
                        result = await remote.optimise_async(endpoint, *args)
                    except remote.RemoteUnavailableError:
                        with self._stats_lock:
                            self._remote_fallbacks += 1
                    else:
                        with self._stats_lock:
                            self._dispatched_remote += 1
                        return result
        async with self._local_slots:
            with self._stats_lock:
                self._dispatched_local += 1
            return await self._loop.run_in_executor(
                self._local, functools.partial(fn, *args, **kwargs))

    # -- introspection -------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Dispatch counters: local jobs, remote jobs, remote fallbacks."""
        with self._stats_lock:
            return {
                "dispatched_local": self._dispatched_local,
                "dispatched_remote": self._dispatched_remote,
                "remote_fallbacks": self._remote_fallbacks,
            }

    def ping_endpoints(self) -> Dict[str, bool]:
        """Probe every configured endpoint; ``{endpoint: reachable}``."""
        health: Dict[str, bool] = {}
        for endpoint in self.remote_endpoints:
            try:
                with remote.RemoteWorkerClient(endpoint, timeout_s=5.0) as c:
                    c.ping()
                health[endpoint] = True
            except (remote.RemoteUnavailableError, OSError):
                health[endpoint] = False
        return health

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for in-flight jobs."""
        if self._closed:
            return
        self._closed = True
        if wait:
            futures.wait(list(self._inflight))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._local.shutdown(wait=wait)

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return (f"AsyncWorkerPool(workers={self.num_workers}, "
                f"endpoints={self.remote_endpoints}, stats={self.stats})")
