"""Stage timers for the parallel search / serving hot paths.

The 0.91x ``parallel_scaling`` embarrassment (pre-PR-10 BENCH_service.json)
could have three different causes — per-job graph serialisation, process-pool
spin-up, or GIL contention in the thread backend — and the fix is different
for each.  :class:`StageProfiler` is the measurement tool that settles it: a
dict of named stage accumulators cheap enough to leave compiled into the
worker-pool hot path, surfaced in the benchmark payloads as a per-stage
overhead breakdown (``serialise`` / ``dispatch`` / ``compute`` / ``merge``).

Profilers are additive: worker processes report their compute seconds back
with each result batch and the caller folds them in with :meth:`add`, so one
profiler ends up holding wall-clock attributed across process boundaries.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping

__all__ = ["StageProfiler"]


class StageProfiler:
    """Accumulates wall-clock seconds and call counts per named stage.

    Thread-compatible under CPython (plain dict updates); not intended for
    lock-free use across processes — workers ship their numbers back as data
    instead (see :mod:`repro.search.parallel`).
    """

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Credit ``seconds`` (and ``count`` invocations) to ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + int(count)

    def merge(self, totals: Mapping[str, float]) -> None:
        """Fold another profiler's ``{stage: seconds}`` snapshot into this."""
        for name, seconds in totals.items():
            self.add(name, seconds)

    def snapshot(self) -> Dict[str, float]:
        """``{stage: seconds}`` accumulated so far (a copy)."""
        return dict(self.totals)

    def breakdown(self) -> Dict[str, float]:
        """``{stage: fraction}`` of the total accumulated time (sums to 1)."""
        total = sum(self.totals.values())
        if total <= 0.0:
            return {name: 0.0 for name in self.totals}
        return {name: seconds / total for name, seconds in self.totals.items()}

    def reset(self) -> None:
        """Zero every accumulator."""
        self.totals.clear()
        self.counts.clear()

    def __repr__(self) -> str:
        stages = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.totals.items()))
        return f"StageProfiler({stages})"
