"""Command-line front end for the optimisation service.

Examples::

    python -m repro.service squeezenet bert --optimiser taso --workers 4
    python -m repro.service squeezenet --repeat 2 --cache-dir /tmp/repro-cache
    python -m repro.service --list-optimisers
    python -m repro.service vit -o tensat --config round_limit=3

    # serving-layer hardening knobs
    python -m repro.service bert --backend async --workers 4
    python -m repro.service bert --remote-worker host1:9100 --remote-worker host2:9100
    python -m repro.service squeezenet --cache-dir /var/cache/repro \\
        --cache-max-entries 512 --cache-ttl 86400

    # follow a long search live (one progress line per optimiser iteration)
    python -m repro.service bert -o xrlflow --follow

    # run this box as a remote search worker / maintain a cache directory
    python -m repro.service --worker-server 0.0.0.0:9100 --workers 8
    python -m repro.service --prune-cache --cache-dir /var/cache/repro \\
        --cache-max-bytes 100000000

Repeated rounds (``--repeat``) re-submit the same batch and therefore hit the
warm fingerprint cache — the printed per-job times show the cold/warm gap.
"""

from __future__ import annotations

import argparse
import ast
from typing import Any, Dict, List, Optional, Sequence

from .api import OptimisationService
from .cache import EvictionPolicy, FingerprintCache
from .registry import default_config, list_optimisers, optimiser_spec

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro.service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Optimise model-zoo graphs through the serving layer.")
    parser.add_argument("models", nargs="*", default=[],
                        help="model-zoo names to optimise (default: squeezenet)")
    parser.add_argument("-o", "--optimiser", default="taso",
                        help="registered optimiser name (default: taso)")
    parser.add_argument("--config", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="optimiser config override (repeatable)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker pool size (default: 4)")
    parser.add_argument("--backend", choices=["thread", "process", "async"],
                        default=None,
                        help="worker flavour (default: thread; async drives "
                             "process workers and any --remote-worker boxes "
                             "from one event loop)")
    parser.add_argument("--processes", action="store_true",
                        help="shorthand for --backend process")
    parser.add_argument("--remote-worker", action="append", default=[],
                        metavar="HOST:PORT", dest="remote_workers",
                        help="JSON-RPC worker endpoint (repeatable; implies "
                             "--backend async)")
    parser.add_argument("--router", choices=["health", "round_robin"],
                        default="health",
                        help="remote dispatch policy (default: health — "
                             "least-loaded live endpoint with circuit "
                             "breaking; round_robin is the legacy rotation)")
    parser.add_argument("--follow", action="store_true",
                        help="stream per-iteration progress events for each "
                             "job while it runs")
    parser.add_argument("--no-cross-process-dedup", action="store_true",
                        help="skip the cache-directory lease protocol that "
                             "dedups identical submissions across service "
                             "processes")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="bounded admission queue size (default: 256)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the persistent cache tier "
                             "(safe to share between service processes)")
    parser.add_argument("--cache-max-entries", type=int, default=None,
                        metavar="N",
                        help="evict LRU disk entries beyond N")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="evict LRU disk entries beyond BYTES total")
    parser.add_argument("--cache-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="expire disk entries not accessed for SECONDS")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the fingerprint cache entirely")
    parser.add_argument("--repeat", type=int, default=1,
                        help="submit the batch N times (warm rounds hit the cache)")
    parser.add_argument("--import", action="append", default=[],
                        metavar="PATH", dest="imports",
                        help="optimise a foreign model imported through the "
                             "ONNX frontend (repeatable; .onnx protobuf or "
                             "the JSON fallback format)")
    parser.add_argument("--strict-import", action="store_true",
                        help="fail --import models containing unbridged ops "
                             "instead of degrading them to Custom fallbacks")
    parser.add_argument("--full", action="store_true",
                        help="build full-size models instead of the reduced "
                             "experiment sizes")
    parser.add_argument("--list-optimisers", action="store_true",
                        help="print the optimiser registry and exit")
    parser.add_argument("--list-models", action="store_true",
                        help="print the model zoo and exit")
    parser.add_argument("--worker-server", default=None, metavar="[HOST:]PORT",
                        help="serve this box's optimiser registry to remote "
                             "services over JSON-RPC (foreground)")
    parser.add_argument("--prune-cache", action="store_true",
                        help="apply the eviction policy to --cache-dir and "
                             "exit (use with --cache-max-*/--cache-ttl)")
    return parser


def _parse_config(pairs: Sequence[str]) -> Dict[str, Any]:
    config: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--config expects KEY=VALUE, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            config[key.strip()] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            config[key.strip()] = raw
    return config


def _eviction_policy(args: argparse.Namespace) -> Optional[EvictionPolicy]:
    if (args.cache_max_entries is None and args.cache_max_bytes is None
            and args.cache_ttl is None):
        return None
    return EvictionPolicy(max_entries=args.cache_max_entries,
                          max_bytes=args.cache_max_bytes,
                          ttl_s=args.cache_ttl)


def _print_optimisers() -> None:
    for name in list_optimisers():
        spec = optimiser_spec(name)
        print(f"{name:10s} {spec.description}")
        print(f"{'':10s}   defaults: {default_config(name)}")


def _print_models() -> None:
    from ..models.registry import MODEL_REGISTRY
    for name, info in sorted(MODEL_REGISTRY.items()):
        print(f"{name:14s} [{info.family}] {info.description}")


def _run_worker_server(endpoint: str, num_workers: int) -> int:
    from .remote import WorkerServer, parse_endpoint
    host, port = parse_endpoint(endpoint if ":" in endpoint
                                else f"0.0.0.0:{endpoint}")
    server = WorkerServer(host=host, port=port, num_workers=num_workers)
    print(f"worker server listening on {server.endpoint} "
          f"({num_workers} workers); Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _run_prune(args: argparse.Namespace) -> int:
    if args.cache_dir is None:
        raise SystemExit("--prune-cache requires --cache-dir")
    policy = _eviction_policy(args)
    if policy is None:
        raise SystemExit("--prune-cache needs at least one bound "
                         "(--cache-max-entries / --cache-max-bytes / "
                         "--cache-ttl)")
    cache = FingerprintCache(cache_dir=args.cache_dir, policy=policy)
    before = cache.persistent_usage()
    removed = cache.prune_persistent()
    after = cache.persistent_usage()
    print(f"pruned {args.cache_dir}: {removed['expired']} expired, "
          f"{removed['evicted']} evicted; "
          f"{before['entries']} -> {after['entries']} entries, "
          f"{before['bytes']} -> {after['bytes']} bytes")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_optimisers:
        _print_optimisers()
        return 0
    if args.list_models:
        _print_models()
        return 0
    if args.worker_server is not None:
        return _run_worker_server(args.worker_server, args.workers)
    if args.prune_cache:
        return _run_prune(args)

    from pathlib import Path

    from ..experiments.common import small_model_kwargs
    from ..frontend import ImportError_, import_model
    from ..models.registry import build_model

    config = _parse_config(args.config)
    names: List[str] = args.models or ([] if args.imports else ["squeezenet"])
    try:
        optimiser_spec(args.optimiser)
        graphs = []
        for name in names:
            kwargs = {} if args.full else small_model_kwargs(name)
            graphs.append((build_model(name, **kwargs), name))
        for path in args.imports:
            graph, report = import_model(path, strict=args.strict_import)
            print(f"[import] {report.summary()}")
            graphs.append((graph, f"onnx:{Path(path).stem}"))
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    except (OSError, ValueError, ImportError_) as exc:
        raise SystemExit(f"error: {exc}")

    backend = args.backend or ("process" if args.processes else None)
    if args.remote_workers and backend not in (None, "async"):
        raise SystemExit(
            f"error: --remote-worker requires --backend async "
            f"(got {backend})")
    with OptimisationService(num_workers=args.workers,
                             cache_dir=args.cache_dir,
                             cache_policy=_eviction_policy(args),
                             max_pending=args.max_pending,
                             backend=backend,
                             remote_endpoints=args.remote_workers,
                             router=args.router,
                             cross_process_dedup=not args.no_cross_process_dedup,
                             ) as service:
        for round_no in range(1, max(1, args.repeat) + 1):
            job_ids = service.submit_batch(graphs, optimiser=args.optimiser,
                                           config=config,
                                           use_cache=not args.no_cache,
                                           stream=args.follow)
            if args.follow:
                for job_id, (_, name) in zip(job_ids, graphs):
                    for event in service.events(job_id):
                        print(f"[follow] {name:14s} {event.summary()}")
            for result in service.gather(job_ids):
                origin = ("cache-hit" if result.cache_hit
                          else "coalesced" if result.coalesced else "searched")
                search = result.search
                print(f"[round {round_no}] {search.optimiser:8s} "
                      f"{search.model:14s} "
                      f"{search.initial_latency_ms:8.3f} ms -> "
                      f"{search.final_latency_ms:8.3f} ms "
                      f"({search.speedup_percent:+6.2f}%)  "
                      f"{search.optimisation_time_s:8.4f}s  {origin}")
        stats = service.stats()
    cache = stats["cache"]
    print(f"backend: {stats['backend']} x{stats['workers']}")
    print(f"jobs: {stats['jobs']}")
    print(f"cache: {cache['memory_hits']} memory + {cache['persistent_hits']} "
          f"persistent hits, {cache['misses']} misses "
          f"({100.0 * cache['hit_rate']:.1f}% hit rate), "
          f"{stats['cache_entries']} entries resident")
    if cache["disk_evictions"] or cache["disk_expirations"]:
        print(f"cache disk policy: {cache['disk_evictions']} evicted, "
              f"{cache['disk_expirations']} expired")
    print(f"dedup: {stats['dedup']['coalesced']} coalesced submissions")
    if "pool" in stats:
        pool = stats["pool"]
        print(f"pool: {pool['dispatched_local']} local / "
              f"{pool['dispatched_remote']} remote dispatches, "
              f"{pool['remote_fallbacks']} fallbacks")
        for endpoint, health in pool.get("endpoints", {}).items():
            state = "QUARANTINED" if health["quarantined"] else "live"
            print(f"  {endpoint}: {state}, "
                  f"{health['inflight']}/{health['capacity']} in flight, "
                  f"ewma {1000.0 * health['ewma_latency_s']:.1f} ms, "
                  f"{health['consecutive_failures']} consecutive failures")
    return 0
