"""Command-line front end for the optimisation service.

Examples::

    python -m repro.service squeezenet bert --optimiser taso --workers 4
    python -m repro.service squeezenet --repeat 2 --cache-dir /tmp/repro-cache
    python -m repro.service --list-optimisers
    python -m repro.service vit -o tensat --config round_limit=3

Repeated rounds (``--repeat``) re-submit the same batch and therefore hit the
warm fingerprint cache — the printed per-job times show the cold/warm gap.
"""

from __future__ import annotations

import argparse
import ast
from typing import Any, Dict, List, Optional, Sequence

from .api import OptimisationService
from .registry import default_config, list_optimisers, optimiser_spec

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Optimise model-zoo graphs through the serving layer.")
    parser.add_argument("models", nargs="*", default=[],
                        help="model-zoo names to optimise (default: squeezenet)")
    parser.add_argument("-o", "--optimiser", default="taso",
                        help="registered optimiser name (default: taso)")
    parser.add_argument("--config", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="optimiser config override (repeatable)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker pool size (default: 4)")
    parser.add_argument("--processes", action="store_true",
                        help="use a process pool instead of threads")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="bounded admission queue size (default: 256)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the persistent cache tier")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the fingerprint cache entirely")
    parser.add_argument("--repeat", type=int, default=1,
                        help="submit the batch N times (warm rounds hit the cache)")
    parser.add_argument("--full", action="store_true",
                        help="build full-size models instead of the reduced "
                             "experiment sizes")
    parser.add_argument("--list-optimisers", action="store_true",
                        help="print the optimiser registry and exit")
    parser.add_argument("--list-models", action="store_true",
                        help="print the model zoo and exit")
    return parser


def _parse_config(pairs: Sequence[str]) -> Dict[str, Any]:
    config: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--config expects KEY=VALUE, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            config[key.strip()] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            config[key.strip()] = raw
    return config


def _print_optimisers() -> None:
    for name in list_optimisers():
        spec = optimiser_spec(name)
        print(f"{name:10s} {spec.description}")
        print(f"{'':10s}   defaults: {default_config(name)}")


def _print_models() -> None:
    from ..models.registry import MODEL_REGISTRY
    for name, info in sorted(MODEL_REGISTRY.items()):
        print(f"{name:14s} [{info.family}] {info.description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_optimisers:
        _print_optimisers()
        return 0
    if args.list_models:
        _print_models()
        return 0

    from ..experiments.common import small_model_kwargs
    from ..models.registry import build_model

    config = _parse_config(args.config)
    names: List[str] = args.models or ["squeezenet"]
    try:
        optimiser_spec(args.optimiser)
        graphs = []
        for name in names:
            kwargs = {} if args.full else small_model_kwargs(name)
            graphs.append((build_model(name, **kwargs), name))
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")

    with OptimisationService(num_workers=args.workers,
                             cache_dir=args.cache_dir,
                             max_pending=args.max_pending,
                             use_processes=args.processes) as service:
        for round_no in range(1, max(1, args.repeat) + 1):
            job_ids = service.submit_batch(graphs, optimiser=args.optimiser,
                                           config=config,
                                           use_cache=not args.no_cache)
            for result in service.gather(job_ids):
                origin = "cache-hit" if result.cache_hit else "searched"
                search = result.search
                print(f"[round {round_no}] {search.optimiser:8s} "
                      f"{search.model:14s} "
                      f"{search.initial_latency_ms:8.3f} ms -> "
                      f"{search.final_latency_ms:8.3f} ms "
                      f"({search.speedup_percent:+6.2f}%)  "
                      f"{search.optimisation_time_s:8.4f}s  {origin}")
        stats = service.stats()
    cache = stats["cache"]
    print(f"jobs: {stats['jobs']}")
    print(f"cache: {cache['memory_hits']} memory + {cache['persistent_hits']} "
          f"persistent hits, {cache['misses']} misses "
          f"({100.0 * cache['hit_rate']:.1f}% hit rate), "
          f"{stats['cache_entries']} entries resident")
    return 0
