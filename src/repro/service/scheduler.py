"""Bounded job scheduler with submit / poll / result semantics.

Wraps a :mod:`concurrent.futures`-style worker pool with the bookkeeping a
serving layer needs: integer job ids, per-job state and timing records, a
bounded admission queue (``QueueFullError`` instead of unbounded memory
growth), and completion callbacks used by the service to populate the
fingerprint cache.

Three pool flavours, selected by ``backend``:

* ``"thread"`` (default) — cheap dispatch, shared in-process cache; fine for
  the I/O-light search jobs and for cache-dominated traffic.
* ``"process"`` — true parallelism for the pure-Python searches, at the cost
  of pickling graphs across the boundary.  Submitted callables must then be
  module-level functions.
* ``"async"`` — an :class:`~repro.service.async_pool.AsyncWorkerPool`: an
  asyncio event loop (in a dedicated thread) drives a local process pool
  and, when ``remote_endpoints`` are given, off-box workers over the
  JSON-RPC protocol in :mod:`repro.service.remote`.

The scheduler also supports *attached* (follower) jobs — :meth:`attach`
registers a new job id that shares an existing job's future, which is how
the service coalesces concurrent identical requests onto one in-flight
search.

Jobs submitted with ``stream=True`` additionally get an **event channel**:
the job body receives a ``progress`` callable (see
:mod:`repro.service.events`) and everything it emits can be followed live
through :meth:`JobHandle.events` — in-memory for the thread backend, via
a spool file for the process/async backends (whose job bodies run in
other processes).
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import shutil
import tempfile
import threading
import time
from collections import deque
from concurrent import futures
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, Iterator, List, Optional

from .events import EventChannel, ProgressEvent

__all__ = ["JobScheduler", "JobHandle", "JobState", "JobRecord",
           "QueueFullError", "UnknownJobError"]


def _pool_warmup(barrier: "threading.Barrier") -> None:
    """Rendezvous task used to force every pool thread into existence."""
    try:
        barrier.wait(timeout=2.0)
    except threading.BrokenBarrierError:
        pass


def _pool_noop() -> None:
    """Picklable no-op; submitting it spawns the process pool's workers."""


class JobState(str, Enum):
    """Lifecycle of one job: pending → running → (succeeded|failed|cancelled)."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        """Whether the state is final (no further transitions)."""
        return self in (JobState.SUCCEEDED, JobState.FAILED,
                        JobState.CANCELLED)


class QueueFullError(RuntimeError):
    """Raised on submit when the bounded admission queue is at capacity."""


class UnknownJobError(KeyError):
    """Raised when polling a job id this scheduler never issued."""


@dataclass
class JobRecord:
    """State and timing snapshot of one job."""

    job_id: int
    label: str
    state: JobState
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None

    @property
    def queue_time_s(self) -> Optional[float]:
        """Seconds between submission and pickup, if traceable.

        ``started_at`` is unknown for process/async-backend jobs (the
        transition happens outside the submitting process); report None
        rather than misattributing the whole queue+run duration to
        queueing.
        """
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_time_s(self) -> Optional[float]:
        """Worker-side execution seconds, if traceable (see above)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


#: Recognised ``backend`` names and whether the scheduler can trace the
#: pending → running transition in-process (only thread pools can: the other
#: backends run the job body outside the submitting process / thread state).
_BACKENDS = ("thread", "process", "async")


class JobHandle:
    """A caller-facing view of one scheduled job.

    Thin and copy-free: every method delegates to the scheduler, so a
    handle can be created at any time for any live job id.
    """

    def __init__(self, scheduler: "JobScheduler", job_id: int):
        self.scheduler = scheduler
        self.job_id = job_id

    @property
    def state(self) -> "JobState":
        """Current :class:`JobState` (non-blocking)."""
        return self.scheduler.poll(self.job_id)

    def record(self) -> "JobRecord":
        """Snapshot of the job's record (a copy, safe to keep)."""
        return self.scheduler.record(self.job_id)

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the job finishes; re-raises the job's exception."""
        return self.scheduler.result(self.job_id, timeout)

    def events(self, poll_interval_s: float = 0.05,
               timeout: Optional[float] = None) -> Iterator[ProgressEvent]:
        """Yield the job's progress events until it reaches a terminal
        state (see :meth:`JobScheduler.events`)."""
        return self.scheduler.events(self.job_id,
                                     poll_interval_s=poll_interval_s,
                                     timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return f"JobHandle(job_id={self.job_id})"


class JobScheduler:
    """Submit/poll/result façade over a bounded worker pool.

    Args:
        num_workers: Size of the worker pool.
        max_pending: Maximum simultaneously *open* (pending or running)
            jobs; further submissions raise :class:`QueueFullError` so
            overload surfaces at admission instead of as unbounded queue
            growth.  Attached (follower) jobs from :meth:`attach` do not
            consume slots — they add no work.
        max_history: How many *finished* jobs to retain (records +
            results).  Beyond it the oldest terminal jobs are purged so a
            long-lived scheduler does not pin every result graph it ever
            produced; polling a purged id raises :class:`UnknownJobError`.
        backend: ``"thread"`` / ``"process"`` / ``"async"`` (see the module
            docstring).
        use_processes: Back-compat alias for ``backend="process"``.
        remote_endpoints: ``"host:port"`` strings of off-box workers for
            the async backend (ignored otherwise).
        router: Remote routing policy for the async backend —
            ``"health"`` (least-loaded live endpoint, the default) or
            ``"round_robin"`` (the legacy baseline).

    Raises:
        ValueError: If ``backend`` is not one of the recognised names.
    """

    def __init__(self, num_workers: int = 4, max_pending: int = 256,
                 max_history: int = 1024, use_processes: bool = False,
                 backend: Optional[str] = None,
                 remote_endpoints: Optional[List[str]] = None,
                 router: str = "health"):
        self.num_workers = max(1, int(num_workers))
        self.max_pending = max(1, int(max_pending))
        self.max_history = max(1, int(max_history))
        if backend is None:
            backend = "process" if use_processes else "thread"
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        self.backend = backend
        self.use_processes = backend == "process"
        self.remote_endpoints = list(remote_endpoints or [])
        if self.remote_endpoints and backend != "async":
            # Silently running everything locally would be worse than
            # failing: the operator believes work is being distributed.
            raise ValueError(
                f"remote_endpoints require backend='async', got {backend!r}")
        if backend == "process":
            self._executor: futures.Executor = futures.ProcessPoolExecutor(
                max_workers=self.num_workers)
        elif backend == "async":
            from .async_pool import AsyncWorkerPool
            self._executor = AsyncWorkerPool(
                num_workers=self.num_workers,
                remote_endpoints=self.remote_endpoints,
                router=router)
        else:
            self._executor = futures.ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="repro-worker")
        #: Thread workers run CPU-bound pure-Python searches, so letting
        #: more of them *execute* than the machine has cores buys nothing
        #: and costs real money: GIL hand-offs every switch interval plus
        #: the CPU-cache thrash of interleaved working sets (measured ~7%
        #: on the 4-jobs-1-core service benchmark).  Jobs beyond the core
        #: count stay queued on this semaphore — still admitted, still
        #: cancellable, just not fighting for the GIL.  Jobs submitted
        #: with ``compute=False`` (the cross-process lease waiters, which
        #: sleep-poll a shared cache) bypass it, so a full complement of
        #: compute jobs can never starve a waiter or deadlock on one.
        if backend == "thread":
            self._compute_slots: Optional[threading.Semaphore] =                 threading.BoundedSemaphore(
                    min(self.num_workers, os.cpu_count() or self.num_workers))
        else:
            self._compute_slots = None
        self._prewarm()
        self._lock = threading.RLock()
        self._records: Dict[int, JobRecord] = {}
        self._futures: Dict[int, futures.Future] = {}
        self._on_success: Dict[int, Callable[[Any], None]] = {}
        self._on_done: Dict[int, Callable[[futures.Future], None]] = {}
        self._attached: set = set()
        self._terminal: "deque[int]" = deque()
        self._channels: Dict[int, EventChannel] = {}
        self._spool_dir: Optional[str] = None
        self._open_jobs = 0
        self._ids = itertools.count(1)
        self._closed = False

    def _prewarm(self) -> None:
        """Spawn every pool worker now, not on first use.

        Both stdlib executors create workers lazily, one per submission —
        so a burst of N first jobs pays N thread/process spawns *inside*
        the measured batch (and the first request after a deploy eats the
        whole pool start-up).  Construction is the right place for that
        cost.  Threads rendezvous on a barrier so each warm-up task pins a
        distinct worker; one no-op suffices for the process pool, whose
        ``submit`` spawns the full complement eagerly.
        """
        if self.backend == "thread":
            barrier = threading.Barrier(self.num_workers)
            warmups = [self._executor.submit(_pool_warmup, barrier)
                       for _ in range(self.num_workers)]
            futures.wait(warmups, timeout=5.0)
        elif self.backend == "process":
            self._executor.submit(_pool_noop)

    # -- submission ----------------------------------------------------
    def submit(self, fn: Callable[..., Any], *args: Any, label: str = "",
               on_success: Optional[Callable[[Any], None]] = None,
               on_done: Optional[Callable[[futures.Future], None]] = None,
               stream: bool = False, compute: bool = True,
               **kwargs: Any) -> int:
        """Queue ``fn(*args, **kwargs)``; returns the job id.

        Args:
            fn: The job body.  Must be a module-level function for the
                process and async backends (it crosses a pickle boundary).
            *args: Positional arguments for ``fn``.
            label: Human-readable tag kept on the :class:`JobRecord`.
            on_success: Runs exactly once with the job's result after it
                succeeds — in a pool/callback thread of the submitting
                process, or in the caller's thread when :meth:`result`
                finalises the job first.  Either way it has completed
                before :meth:`result` returns, so e.g. a cache populated by
                the callback is visible to whoever observed the result.
            on_done: Runs exactly once with the job's future on *any*
                terminal state (after ``on_success`` for successes) — used
                by the service to retire in-flight dedup registrations.
            compute: The job body is CPU-bound (the default).  On the
                thread backend, compute jobs queue on a core-count
                semaphore before executing; pass ``False`` for bodies
                that mostly wait (lease waiters) so they run immediately
                regardless of compute load.
            stream: Open an event channel for the job and pass its sink to
                ``fn`` as a ``progress`` keyword argument — ``fn`` must
                accept it.  Follow the events via :meth:`events` /
                :meth:`JobHandle.events`.
            **kwargs: Keyword arguments for ``fn``.

        Returns:
            The integer job id.

        Raises:
            QueueFullError: If ``max_pending`` jobs are already open.
            RuntimeError: If the scheduler has been shut down.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self._open_jobs >= self.max_pending:
                raise QueueFullError(
                    f"job queue is full ({self._open_jobs} open jobs, "
                    f"max_pending={self.max_pending})")
            job_id = next(self._ids)
            self._records[job_id] = JobRecord(
                job_id=job_id,
                label=label or getattr(fn, "__name__", "job"),
                state=JobState.PENDING,
                submitted_at=time.monotonic(),
            )
            self._open_jobs += 1
            channel: Optional[EventChannel] = None
            if stream:
                channel = self._open_channel_locked(job_id)
                kwargs = {**kwargs, "progress": channel.sink()}
            try:
                if self.backend == "thread":
                    future = self._executor.submit(
                        self._run_traced, job_id, fn, compute,
                        *args, **kwargs)
                else:
                    # The running-state transition happens in another process
                    # (or on the event loop) and cannot update our records;
                    # jobs jump pending → terminal.
                    future = self._executor.submit(fn, *args, **kwargs)
            except BaseException:
                self._open_jobs -= 1
                del self._records[job_id]
                if channel is not None:
                    self._channels.pop(job_id, None)
                    channel.close()
                raise
            self._futures[job_id] = future
            if on_success is not None:
                self._on_success[job_id] = on_success
            if on_done is not None:
                self._on_done[job_id] = on_done
        future.add_done_callback(
            lambda f, job_id=job_id: self._finalise(job_id, f))
        return job_id

    def attach(self, primary_job_id: int, label: str = "") -> int:
        """Register a *follower* job sharing ``primary_job_id``'s future.

        The follower has its own id and record but no work of its own: it
        becomes terminal when (and however) the primary does, and
        :meth:`result` on it returns — or re-raises — the primary's
        outcome.  Followers do not consume ``max_pending`` slots.  This is
        the mechanism behind admission-time dedup of identical in-flight
        requests.

        Args:
            primary_job_id: An open (or finished-but-retained) job id.
            label: Human-readable tag for the follower's record.

        Returns:
            The follower's job id.

        Raises:
            UnknownJobError: If the primary id was never issued or its
                record has been retired.
            RuntimeError: If the scheduler has been shut down.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            future = self._futures.get(primary_job_id)
            if future is None:
                raise UnknownJobError(primary_job_id)
            primary = self._records[primary_job_id]
            job_id = next(self._ids)
            self._records[job_id] = JobRecord(
                job_id=job_id,
                label=label or f"{primary.label} (coalesced)",
                state=JobState.PENDING,
                submitted_at=time.monotonic(),
            )
            self._futures[job_id] = future
            self._attached.add(job_id)
            primary_channel = self._channels.get(primary_job_id)
            if primary_channel is not None:
                # Followers watch the primary's stream: one search, every
                # waiter sees its progress.
                self._channels[job_id] = primary_channel
        future.add_done_callback(
            lambda f, job_id=job_id: self._finalise(job_id, f))
        return job_id

    def submit_completed(self, result: Any, label: str = "") -> int:
        """Register an already-available result as a finished job.

        Used for admission-time cache hits: the job never touches the worker
        pool (no dispatch, no pickling), it is born ``SUCCEEDED`` and its
        result is immediately available via :meth:`result`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            job_id = next(self._ids)
            now = time.monotonic()
            self._records[job_id] = JobRecord(
                job_id=job_id, label=label or "completed",
                state=JobState.SUCCEEDED, submitted_at=now,
                started_at=now, finished_at=now)
            future: futures.Future = futures.Future()
            future.set_result(result)
            self._futures[job_id] = future
            self._retire_locked(job_id)
        return job_id

    def _open_channel_locked(self, job_id: int) -> EventChannel:
        """Create the job's event channel (spool-file backed off-thread)."""
        if self.backend == "thread":
            channel = EventChannel()
        else:
            if self._spool_dir is None:
                self._spool_dir = tempfile.mkdtemp(prefix="repro-events-")
            channel = EventChannel(
                os.path.join(self._spool_dir, f"job{job_id}.events"))
        self._channels[job_id] = channel
        return channel

    def _retire_locked(self, job_id: int) -> None:
        """Track a terminal job and purge the oldest beyond ``max_history``."""
        self._terminal.append(job_id)
        while len(self._terminal) > self.max_history:
            retired = self._terminal.popleft()
            self._records.pop(retired, None)
            self._futures.pop(retired, None)
            channel = self._channels.pop(retired, None)
            if channel is not None and channel not in self._channels.values():
                channel.close()

    def _run_traced(self, job_id: int, fn: Callable[..., Any],
                    compute: bool, *args: Any, **kwargs: Any) -> Any:
        slots = self._compute_slots if compute else None
        if slots is None:
            with self._lock:
                record = self._records[job_id]
                record.state = JobState.RUNNING
                record.started_at = time.monotonic()
            return fn(*args, **kwargs)
        # Waiting for a compute slot is queueing, not running — mark the
        # RUNNING transition only once the slot is held so queue_time_s /
        # run_time_s keep meaning what they say.
        with slots:
            with self._lock:
                record = self._records[job_id]
                record.state = JobState.RUNNING
                record.started_at = time.monotonic()
            return fn(*args, **kwargs)

    def _finalise(self, job_id: int, future: futures.Future) -> None:
        """Record a finished job's terminal state; idempotent.

        Runs from the future's done callback *and* synchronously from
        :meth:`result` / :meth:`wait_all` — ``Future.set_result`` wakes
        ``result()`` waiters before done callbacks fire, so without the
        synchronous path a caller could observe a result whose record was
        still RUNNING and whose ``on_success`` (cache population) had not
        happened yet.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.state.is_terminal:
                return
            record.finished_at = time.monotonic()
            if future.cancelled():
                record.state = JobState.CANCELLED
            elif future.exception() is not None:
                record.state = JobState.FAILED
                record.error = repr(future.exception())
            else:
                record.state = JobState.SUCCEEDED
            state = record.state
            if job_id in self._attached:
                self._attached.discard(job_id)  # followers hold no slot
            else:
                self._open_jobs -= 1
            # Retire the oldest finished jobs so a long-lived scheduler does
            # not pin every result it ever produced.
            self._retire_locked(job_id)
            on_success = self._on_success.pop(job_id, None)
            on_done = self._on_done.pop(job_id, None)
            channel = self._channels.get(job_id)
            if channel is not None:
                channel.finish()  # events() iterators drain and stop
        if on_success is not None and state is JobState.SUCCEEDED:
            try:
                on_success(future.result())
            except Exception:
                # A cache-population failure must not poison the job result.
                pass
        if on_done is not None:
            try:
                on_done(future)
            except Exception:
                # Dedup bookkeeping failures must not poison the job result.
                pass

    # -- polling -------------------------------------------------------
    def poll(self, job_id: int) -> JobState:
        """Current state of ``job_id`` (non-blocking)."""
        return self.record(job_id).state

    def handle(self, job_id: int) -> JobHandle:
        """A :class:`JobHandle` view of ``job_id``.

        Raises:
            UnknownJobError: If the id was never issued or was retired.
        """
        self.record(job_id)  # validate the id now, not on first use
        return JobHandle(self, job_id)

    def events(self, job_id: int, poll_interval_s: float = 0.05,
               timeout: Optional[float] = None) -> Iterator[ProgressEvent]:
        """Yield ``job_id``'s progress events until it finishes.

        Generator over :class:`~repro.service.events.ProgressEvent`; it
        ends once the job is terminal and every buffered event has been
        delivered.  A job submitted without ``stream=True`` (or one that
        completed inline, like a cache hit) yields nothing.

        Args:
            job_id: A job id from :meth:`submit` / :meth:`attach`.
            poll_interval_s: Sleep between drains while the job runs.
            timeout: Overall bound in seconds; raises
                :class:`TimeoutError` when exceeded before the job ends.

        Raises:
            UnknownJobError: If the id was never issued or was retired
                before the first drain.
            TimeoutError: If ``timeout`` elapsed with the job unfinished.
        """
        with self._lock:
            channel = self._channels.get(job_id)
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        # Validate the id (and learn whether the job already ended).
        state = self.poll(job_id)
        while True:
            if channel is not None:
                for event in channel.drain():
                    yield event
            if state.is_terminal or (channel is not None and channel.finished):
                break
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {state.value} after {timeout}s")
            time.sleep(poll_interval_s)
            try:
                state = self.poll(job_id)
            except UnknownJobError:
                break  # retired mid-iteration: deliver what we have
        if channel is not None:
            for event in channel.drain():  # events raced the finish flag
                yield event

    def record(self, job_id: int) -> JobRecord:
        """Snapshot of the job's record (a copy, safe to keep)."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJobError(job_id)
            return dataclasses.replace(record)

    def result(self, job_id: int, timeout: Optional[float] = None) -> Any:
        """Block until the job finishes; re-raises the job's exception.

        The job's record is terminal and its ``on_success`` callback has run
        by the time this returns (or raises the job's error).
        """
        with self._lock:
            future = self._futures.get(job_id)
        if future is None:
            raise UnknownJobError(job_id)
        try:
            return future.result(timeout)
        finally:
            if future.done():  # not a TimeoutError: finalise synchronously
                self._finalise(job_id, future)

    def cancel(self, job_id: int) -> bool:
        """Try to cancel a still-pending job; returns whether it worked.

        Follower jobs (:meth:`attach`) are never cancelled through this —
        their future is shared with the primary (and its other followers),
        so cancelling would revoke work other waiters still want.

        Raises:
            UnknownJobError: If the id was never issued or was retired.
        """
        with self._lock:
            future = self._futures.get(job_id)
            if future is None:
                raise UnknownJobError(job_id)
            if job_id in self._attached:
                return False
        return future.cancel()

    def pool_stats(self) -> Optional[Dict[str, int]]:
        """Backend-specific dispatch counters, or ``None``.

        The async backend reports local/remote dispatch and fallback
        counts (plus per-endpoint health snapshots); the thread and
        process pools have nothing to add.
        """
        stats = getattr(self._executor, "stats", None)
        return dict(stats) if isinstance(stats, dict) else None

    def probe_workers(self) -> Dict[str, bool]:
        """Force one health-probe round of the remote endpoints.

        Returns ``{endpoint: reachable}`` — empty for backends without
        remote endpoints.  A successful probe refreshes the endpoint's
        capacity/load record and readmits it from quarantine immediately.
        """
        probe = getattr(self._executor, "probe_endpoints", None)
        return probe() if callable(probe) else {}

    def counts(self) -> Dict[str, int]:
        """``{state: count}`` over every job this scheduler has seen."""
        with self._lock:
            tally = {state.value: 0 for state in JobState}
            for record in self._records.values():
                tally[record.state.value] += 1
            return tally

    def wait_all(self, timeout: Optional[float] = None) -> bool:
        """Wait for every submitted job; True if all finished in time.

        Finished jobs are finalised (records terminal, callbacks run)
        before this returns.
        """
        with self._lock:
            snapshot = dict(self._futures)
        futures.wait([f for f in snapshot.values() if not f.done()],
                     timeout=timeout)
        all_done = True
        for job_id, future in snapshot.items():
            if future.done():
                self._finalise(job_id, future)
            else:
                all_done = False
        return all_done

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Close the scheduler and its worker pool.

        Args:
            wait: Block until in-flight jobs finish; results of finished
                jobs stay retrievable either way.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait)
        with self._lock:
            for channel in self._channels.values():
                channel.close()
            self._channels.clear()
            spool_dir, self._spool_dir = self._spool_dir, None
        if spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return (f"JobScheduler({self.num_workers} {self.backend} workers, "
                f"max_pending={self.max_pending}, jobs={self.counts()})")
