"""Canonical fingerprint cache for optimisation results.

A *fingerprint* identifies an optimisation request up to everything that can
change its outcome: the input graph (via :meth:`Graph.structural_hash`, which
is invariant to node-id relabelling), the optimiser name, and a canonical
digest of the optimiser config.  Two callers submitting the same model built
through different code paths therefore share one cache slot.

Results live in an in-memory LRU tier and are optionally mirrored to a
directory of JSON documents (built on :mod:`repro.ir.serialize`), so a warmed
cache survives the process and can be shipped between machines.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..ir.graph import Graph
from ..ir.serialize import graph_from_dict, graph_to_dict
from ..search.result import SearchResult

__all__ = ["CacheEntry", "CacheStats", "FingerprintCache",
           "request_fingerprint"]

_ENTRY_VERSION = 1


def _freeze(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-compatible form.

    Primitives pass through; containers are recursed with sorted keys;
    arbitrary objects contribute their class name plus public attributes, so
    two equivalently-configured instances digest identically regardless of
    identity or memory address.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _freeze(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict):
        public = {k: _freeze(v) for k, v in sorted(state.items())
                  if not k.startswith("_")}
        return {"__class__": type(value).__name__, **public}
    return type(value).__name__


def request_fingerprint(graph: Graph, optimiser: str,
                        config: Optional[Mapping[str, Any]] = None) -> str:
    """The canonical cache key for optimising ``graph`` with ``optimiser``."""
    payload = {
        "graph": graph.structural_hash(),
        "optimiser": str(optimiser).lower(),
        "config": _freeze(dict(config or {})),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`FingerprintCache`."""

    memory_hits: int = 0
    persistent_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.persistent_hits

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CacheEntry:
    """One cached optimisation outcome.

    The *input* graph is deliberately not stored: the fingerprint already
    identifies it, and the submitting caller supplies it when the entry is
    rehydrated into a :class:`SearchResult`.
    """

    fingerprint: str
    optimiser: str
    model: str
    final_graph: Graph
    initial_latency_ms: float
    final_latency_ms: float
    initial_cost_ms: float
    final_cost_ms: float
    search_time_s: float
    applied_rules: List[str] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_result(cls, fingerprint: str, result: SearchResult) -> "CacheEntry":
        return cls(
            fingerprint=fingerprint,
            optimiser=result.optimiser,
            model=result.model,
            final_graph=result.final_graph,
            initial_latency_ms=result.initial_latency_ms,
            final_latency_ms=result.final_latency_ms,
            initial_cost_ms=result.initial_cost_ms,
            final_cost_ms=result.final_cost_ms,
            search_time_s=result.optimisation_time_s,
            applied_rules=list(result.applied_rules),
            stats=dict(result.stats),
        )

    def to_result(self, initial_graph: Graph,
                  retrieval_time_s: float = 0.0,
                  model_name: str = "") -> SearchResult:
        """Rehydrate into a :class:`SearchResult` for the submitted graph.

        ``optimisation_time_s`` reports the (tiny, but nonzero) retrieval
        time; the original search cost is kept under ``stats["search_time_s"]``.
        ``model_name`` relabels the result for the requesting caller —
        structurally identical graphs submitted under different names share
        the entry but keep their own label.
        """
        return SearchResult(
            optimiser=self.optimiser,
            model=model_name or self.model,
            initial_graph=initial_graph,
            final_graph=self.final_graph,
            initial_latency_ms=self.initial_latency_ms,
            final_latency_ms=self.final_latency_ms,
            initial_cost_ms=self.initial_cost_ms,
            final_cost_ms=self.final_cost_ms,
            optimisation_time_s=max(retrieval_time_s, 1e-9),
            applied_rules=list(self.applied_rules),
            stats={**self.stats, "cache_hit": 1.0,
                   "search_time_s": self.search_time_s},
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry_version": _ENTRY_VERSION,
            "fingerprint": self.fingerprint,
            "optimiser": self.optimiser,
            "model": self.model,
            "final_graph": graph_to_dict(self.final_graph),
            "initial_latency_ms": self.initial_latency_ms,
            "final_latency_ms": self.final_latency_ms,
            "initial_cost_ms": self.initial_cost_ms,
            "final_cost_ms": self.final_cost_ms,
            "search_time_s": self.search_time_s,
            "applied_rules": list(self.applied_rules),
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CacheEntry":
        if data.get("entry_version") != _ENTRY_VERSION:
            raise ValueError(
                f"unsupported cache entry version {data.get('entry_version')}")
        return cls(
            fingerprint=data["fingerprint"],
            optimiser=data["optimiser"],
            model=data["model"],
            final_graph=graph_from_dict(data["final_graph"]),
            initial_latency_ms=float(data["initial_latency_ms"]),
            final_latency_ms=float(data["final_latency_ms"]),
            initial_cost_ms=float(data["initial_cost_ms"]),
            final_cost_ms=float(data["final_cost_ms"]),
            search_time_s=float(data["search_time_s"]),
            applied_rules=list(data.get("applied_rules", [])),
            stats=dict(data.get("stats", {})),
        )


class FingerprintCache:
    """Two-tier (LRU memory + JSON directory) cache of optimisation results.

    Thread-safe: scheduler workers and the submitting thread hit it
    concurrently.

    Parameters
    ----------
    capacity:
        Maximum entries in the in-memory tier (LRU eviction beyond it).
    cache_dir:
        Optional directory for the persistent tier.  Entries evicted from
        memory remain on disk and are transparently reloaded on access.
    """

    def __init__(self, capacity: int = 256,
                 cache_dir: Optional[Union[str, Path]] = None):
        self.capacity = max(1, int(capacity))
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- lookup --------------------------------------------------------
    def fingerprint(self, graph: Graph, optimiser: str,
                    config: Optional[Mapping[str, Any]] = None) -> str:
        return request_fingerprint(graph, optimiser, config)

    def get(self, fingerprint: str) -> Optional[CacheEntry]:
        """Return the cached entry or ``None``; updates hit/miss accounting."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.memory_hits += 1
                return entry
        # Disk I/O happens outside the lock so a slow persistent load cannot
        # stall concurrent admission-time lookups.
        entry = self._load_persistent(fingerprint)
        with self._lock:
            if entry is not None:
                self.stats.persistent_hits += 1
                self._insert(fingerprint, entry)
            else:
                self.stats.misses += 1
            return entry

    def put(self, entry: CacheEntry) -> None:
        """Insert (or refresh) an entry in both tiers."""
        with self._lock:
            self.stats.puts += 1
            self._insert(entry.fingerprint, entry)
        # Serialising the graph to the persistent tier stays outside the
        # lock for the same reason as in :meth:`get`.
        self._store_persistent(entry)

    def __contains__(self, fingerprint: str) -> bool:
        """Presence probe in either tier — no hit/miss accounting."""
        with self._lock:
            if fingerprint in self._entries:
                return True
        return self._persistent_path(fingerprint) is not None and \
            self._persistent_path(fingerprint).exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self, persistent: bool = False) -> None:
        """Drop the memory tier; also wipe disk entries if ``persistent``."""
        with self._lock:
            self._entries.clear()
            if persistent and self.cache_dir is not None:
                for path in self.cache_dir.glob("*.json"):
                    path.unlink(missing_ok=True)

    # -- internals -----------------------------------------------------
    def _insert(self, fingerprint: str, entry: CacheEntry) -> None:
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _persistent_path(self, fingerprint: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{fingerprint}.json"

    def _load_persistent(self, fingerprint: str) -> Optional[CacheEntry]:
        path = self._persistent_path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            return CacheEntry.from_dict(json.loads(path.read_text()))
        except Exception:  # corrupt / stale file: treat as a miss
            return None

    def _store_persistent(self, entry: CacheEntry) -> None:
        path = self._persistent_path(entry.fingerprint)
        if path is None:
            return
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry.to_dict()))
        tmp.replace(path)

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        tier = f", dir={str(self.cache_dir)!r}" if self.cache_dir else ""
        return (f"FingerprintCache(entries={len(self)}/{self.capacity}"
                f"{tier}, hits={self.stats.hits}, misses={self.stats.misses})")
