"""Canonical fingerprint cache for optimisation results.

A *fingerprint* identifies an optimisation request up to everything that can
change its outcome: the input graph (via :meth:`Graph.structural_hash`, which
is invariant to node-id relabelling), the optimiser name, and a canonical
digest of the optimiser config.  Two callers submitting the same model built
through different code paths therefore share one cache slot.

Results live in an in-memory LRU tier and are optionally mirrored to a
directory of JSON documents (built on :mod:`repro.ir.serialize`), so a warmed
cache survives the process and can be shipped between machines.

The persistent tier is safe to share between many service processes on one
host (or one shared filesystem):

* every entry write goes to a unique temporary file and is published with an
  atomic ``rename``, so readers never observe a torn document;
* mutating multi-file operations (store + evict, prune, clear) run under an
  advisory ``flock`` on ``<cache_dir>/.lock``; readers take a shared lock;
* each entry records a version (:data:`ENTRY_VERSION`) and its creation
  time, and every read refreshes the file's mtime — the *access stamp* that
  LRU eviction orders by;
* an :class:`EvictionPolicy` (max entries / max bytes / TTL) bounds the
  directory; policy is enforced after every store and on demand via
  :meth:`FingerprintCache.prune_persistent`.

The cache directory also hosts the cross-process dedup lease files
(``<fingerprint>.lease`` — see :mod:`repro.service.lease`); everything
here deliberately touches ``*.json`` entries only, so leases are never
counted, evicted or cleared as cache content.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..ir.graph import Graph
from ..ir.serialize import graph_from_dict, graph_to_dict
from ..search.result import SearchResult

try:  # POSIX advisory locking; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None

__all__ = ["CacheEntry", "CacheStats", "EvictionPolicy", "FingerprintCache",
           "request_fingerprint", "ENTRY_VERSION"]

#: Version of the per-entry on-disk JSON schema.  Version 2 added
#: ``created_at`` (wall-clock creation time).  Readers accept entries of the
#: current version and every documented older one; unknown (newer) versions
#: are treated as a miss so mixed-version fleets degrade to re-searching
#: instead of crashing.
ENTRY_VERSION = 2

#: Entry schema versions this build can rehydrate.
_READABLE_VERSIONS = (1, 2)

_LOCK_FILENAME = ".lock"


def _freeze(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-compatible form.

    Primitives pass through; containers are recursed with sorted keys;
    arbitrary objects contribute their class name plus public attributes, so
    two equivalently-configured instances digest identically regardless of
    identity or memory address.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_freeze(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _freeze(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict):
        public = {k: _freeze(v) for k, v in sorted(state.items())
                  if not k.startswith("_")}
        return {"__class__": type(value).__name__, **public}
    return type(value).__name__


def request_fingerprint(graph: Graph, optimiser: str,
                        config: Optional[Mapping[str, Any]] = None) -> str:
    """The canonical cache key for optimising ``graph`` with ``optimiser``.

    Args:
        graph: The input graph; enters the key via its structural hash, so
            node-id relabellings of the same model share a fingerprint.
        optimiser: Registered optimiser name (case-insensitive).
        config: Optimiser config overrides; canonicalised with sorted keys
            so spelling order cannot split the cache.

    Returns:
        A hex SHA-256 digest identifying the request.
    """
    payload = {
        "graph": graph.structural_hash(),
        "optimiser": str(optimiser).lower(),
        "config": _freeze(dict(config or {})),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`FingerprintCache`.

    Counters are *per-process*: a cache directory shared between service
    processes is observed through each process's own stats object.
    """

    memory_hits: int = 0
    persistent_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_evictions: int = 0
    disk_expirations: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.persistent_hits

    @property
    def requests(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over requests, 0.0 before any lookup."""
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict[str, float]:
        """All counters plus the derived hit rate, JSON-friendly."""
        return {
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_evictions": self.disk_evictions,
            "disk_expirations": self.disk_expirations,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class EvictionPolicy:
    """Bounds for the persistent cache tier.

    Any field left ``None`` is unlimited.  Recency is judged by each entry
    file's mtime, which doubles as the *access stamp*: stores set it and
    every successful read refreshes it, so eviction is LRU rather than
    insertion-order.

    Attributes:
        max_entries: Keep at most this many entry files on disk.
        max_bytes: Keep the directory's entry files under this many bytes.
        ttl_s: Entries not *accessed* for longer than this many seconds are
            expired (deleted on the next lookup or prune).
    """

    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    ttl_s: Optional[float] = None

    @property
    def bounded(self) -> bool:
        """Whether any limit is actually set."""
        return (self.max_entries is not None or self.max_bytes is not None
                or self.ttl_s is not None)

    def to_dict(self) -> Dict[str, Optional[float]]:
        """The three bounds as a JSON-friendly dict."""
        return {"max_entries": self.max_entries, "max_bytes": self.max_bytes,
                "ttl_s": self.ttl_s}


class _DirectoryLock:
    """Advisory inter-process lock on ``<cache_dir>/.lock`` via ``flock``.

    Reentrant per-process (guarded by an ``RLock``); degrades to
    process-local locking where :mod:`fcntl` is unavailable.  Shared
    (reader) and exclusive (writer) modes map to ``LOCK_SH``/``LOCK_EX``.
    """

    def __init__(self, directory: Path):
        self._path = directory / _LOCK_FILENAME
        self._thread_lock = threading.RLock()
        self._depth = 0
        self._fd: Optional[int] = None

    def _acquire(self, exclusive: bool) -> None:
        self._thread_lock.acquire()
        self._depth += 1
        if self._depth > 1 or fcntl is None:
            return
        fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        except OSError:  # pragma: no cover - e.g. NFS without lock support
            os.close(fd)
            return
        self._fd = fd

    def _release(self) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
        self._thread_lock.release()

    def shared(self) -> "_LockContext":
        return _LockContext(self, exclusive=False)

    def exclusive(self) -> "_LockContext":
        return _LockContext(self, exclusive=True)


class _LockContext:
    def __init__(self, lock: _DirectoryLock, exclusive: bool):
        self._lock = lock
        self._exclusive = exclusive

    def __enter__(self) -> None:
        self._lock._acquire(self._exclusive)

    def __exit__(self, *exc_info: Any) -> None:
        self._lock._release()


@dataclass
class CacheEntry:
    """One cached optimisation outcome.

    The *input* graph is deliberately not stored: the fingerprint already
    identifies it, and the submitting caller supplies it when the entry is
    rehydrated into a :class:`SearchResult`.
    """

    fingerprint: str
    optimiser: str
    model: str
    final_graph: Graph
    initial_latency_ms: float
    final_latency_ms: float
    initial_cost_ms: float
    final_cost_ms: float
    search_time_s: float
    applied_rules: List[str] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    created_at: float = 0.0

    @classmethod
    def from_result(cls, fingerprint: str, result: SearchResult) -> "CacheEntry":
        """Build an entry from a finished search.

        Args:
            fingerprint: The request fingerprint the entry is keyed under.
            result: The completed search whose outcome should be cached.

        Returns:
            A :class:`CacheEntry` stamped with the current wall-clock time.
        """
        return cls(
            fingerprint=fingerprint,
            optimiser=result.optimiser,
            model=result.model,
            final_graph=result.final_graph,
            initial_latency_ms=result.initial_latency_ms,
            final_latency_ms=result.final_latency_ms,
            initial_cost_ms=result.initial_cost_ms,
            final_cost_ms=result.final_cost_ms,
            search_time_s=result.optimisation_time_s,
            applied_rules=list(result.applied_rules),
            stats=dict(result.stats),
            created_at=time.time(),
        )

    def to_result(self, initial_graph: Graph,
                  retrieval_time_s: float = 0.0,
                  model_name: str = "") -> SearchResult:
        """Rehydrate into a :class:`SearchResult` for the submitted graph.

        Args:
            initial_graph: The graph the requesting caller submitted.
            retrieval_time_s: How long the cache lookup took; reported as
                the result's ``optimisation_time_s`` (the original search
                cost is kept under ``stats["search_time_s"]``).
            model_name: Relabels the result for the requesting caller —
                structurally identical graphs submitted under different
                names share the entry but keep their own label.

        Returns:
            A :class:`SearchResult` flagged with ``stats["cache_hit"]``.
        """
        return SearchResult(
            optimiser=self.optimiser,
            model=model_name or self.model,
            initial_graph=initial_graph,
            final_graph=self.final_graph,
            initial_latency_ms=self.initial_latency_ms,
            final_latency_ms=self.final_latency_ms,
            initial_cost_ms=self.initial_cost_ms,
            final_cost_ms=self.final_cost_ms,
            optimisation_time_s=max(retrieval_time_s, 1e-9),
            applied_rules=list(self.applied_rules),
            stats={**self.stats, "cache_hit": 1.0,
                   "search_time_s": self.search_time_s},
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to the version-:data:`ENTRY_VERSION` JSON document."""
        return {
            "entry_version": ENTRY_VERSION,
            "fingerprint": self.fingerprint,
            "optimiser": self.optimiser,
            "model": self.model,
            "final_graph": graph_to_dict(self.final_graph),
            "initial_latency_ms": self.initial_latency_ms,
            "final_latency_ms": self.final_latency_ms,
            "initial_cost_ms": self.initial_cost_ms,
            "final_cost_ms": self.final_cost_ms,
            "search_time_s": self.search_time_s,
            "applied_rules": list(self.applied_rules),
            "stats": dict(self.stats),
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CacheEntry":
        """Rehydrate an entry document.

        Args:
            data: A JSON document produced by :meth:`to_dict` (any version
                in ``_READABLE_VERSIONS``; version-1 documents lack
                ``created_at`` and get ``0.0``).

        Returns:
            The decoded :class:`CacheEntry`.

        Raises:
            ValueError: If the document's ``entry_version`` is unknown
                (typically written by a newer build).
        """
        if data.get("entry_version") not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported cache entry version {data.get('entry_version')}")
        return cls(
            fingerprint=data["fingerprint"],
            optimiser=data["optimiser"],
            model=data["model"],
            final_graph=graph_from_dict(data["final_graph"]),
            initial_latency_ms=float(data["initial_latency_ms"]),
            final_latency_ms=float(data["final_latency_ms"]),
            initial_cost_ms=float(data["initial_cost_ms"]),
            final_cost_ms=float(data["final_cost_ms"]),
            search_time_s=float(data["search_time_s"]),
            applied_rules=list(data.get("applied_rules", [])),
            stats=dict(data.get("stats", {})),
            created_at=float(data.get("created_at", 0.0)),
        )


class FingerprintCache:
    """Two-tier (LRU memory + JSON directory) cache of optimisation results.

    Thread-safe within a process (scheduler workers and the submitting
    thread hit it concurrently) and — for the persistent tier — safe across
    *processes* sharing one directory: writes are atomic rename-publishes
    and multi-file operations take an advisory ``flock`` (see the module
    docstring).

    Args:
        capacity: Maximum entries in the in-memory tier (LRU eviction
            beyond it).
        cache_dir: Optional directory for the persistent tier.  Entries
            evicted from memory remain on disk and are transparently
            reloaded on access.
        policy: Bounds for the persistent tier (unbounded when omitted).
            Enforced after every store; :meth:`prune_persistent` applies it
            on demand.
    """

    def __init__(self, capacity: int = 256,
                 cache_dir: Optional[Union[str, Path]] = None,
                 policy: Optional[EvictionPolicy] = None):
        self.capacity = max(1, int(capacity))
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.policy = policy or EvictionPolicy()
        self._dir_lock: Optional[_DirectoryLock] = None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._dir_lock = _DirectoryLock(self.cache_dir)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- lookup --------------------------------------------------------
    def fingerprint(self, graph: Graph, optimiser: str,
                    config: Optional[Mapping[str, Any]] = None) -> str:
        """Convenience wrapper around :func:`request_fingerprint`."""
        return request_fingerprint(graph, optimiser, config)

    def get(self, fingerprint: str) -> Optional[CacheEntry]:
        """Return the cached entry or ``None``; updates hit/miss accounting.

        A persistent-tier hit refreshes the entry file's access stamp
        (mtime) so LRU disk eviction keeps hot entries alive, and promotes
        the entry into the memory tier.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.memory_hits += 1
                return entry
        # Disk I/O happens outside the lock so a slow persistent load cannot
        # stall concurrent admission-time lookups.
        entry = self._load_persistent(fingerprint)
        with self._lock:
            if entry is not None:
                self.stats.persistent_hits += 1
                self._insert(fingerprint, entry)
            else:
                self.stats.misses += 1
            return entry

    def put(self, entry: CacheEntry) -> None:
        """Insert (or refresh) an entry in both tiers.

        The persistent store publishes atomically (unique temp file +
        rename) and then enforces the eviction policy under the directory
        lock.
        """
        with self._lock:
            self.stats.puts += 1
            self._insert(entry.fingerprint, entry)
        # Serialising the graph to the persistent tier stays outside the
        # lock for the same reason as in :meth:`get`.
        self._store_persistent(entry)

    def __contains__(self, fingerprint: str) -> bool:
        """Presence probe in either tier — no hit/miss accounting."""
        with self._lock:
            if fingerprint in self._entries:
                return True
        path = self._persistent_path(fingerprint)
        return path is not None and path.exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self, persistent: bool = False) -> None:
        """Drop the memory tier; also wipe disk entries if ``persistent``."""
        with self._lock:
            self._entries.clear()
        if persistent and self.cache_dir is not None:
            with self._dir_lock.exclusive():
                for path in self.cache_dir.glob("*.json"):
                    path.unlink(missing_ok=True)

    # -- persistent-tier maintenance -----------------------------------
    def prune_persistent(self) -> Dict[str, int]:
        """Apply the eviction policy to the disk tier now.

        Returns:
            ``{"expired": n, "evicted": m}`` — entries removed because
            their access stamp exceeded ``ttl_s``, and entries removed to
            satisfy ``max_entries`` / ``max_bytes``.
        """
        if self.cache_dir is None:
            return {"expired": 0, "evicted": 0}
        with self._dir_lock.exclusive():
            return self._enforce_policy_locked()

    def persistent_usage(self) -> Dict[str, int]:
        """Entry count and total byte size of the disk tier (0s if none)."""
        entries = 0
        size = 0
        if self.cache_dir is not None:
            for _, stat in self._scan_entries():
                entries += 1
                size += stat.st_size
        return {"entries": entries, "bytes": size}

    # -- internals -----------------------------------------------------
    def _insert(self, fingerprint: str, entry: CacheEntry) -> None:
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _persistent_path(self, fingerprint: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{fingerprint}.json"

    def _load_persistent(self, fingerprint: str) -> Optional[CacheEntry]:
        path = self._persistent_path(fingerprint)
        if path is None or not path.exists():
            return None
        ttl = self.policy.ttl_s
        if ttl is not None:
            try:
                expired = time.time() - path.stat().st_mtime > ttl
            except OSError:
                return None
            if expired:
                # Deleting is a mutation, so it takes the exclusive lock
                # (re-checking the stamp under it — another process may
                # have refreshed or already removed the entry).
                with self._dir_lock.exclusive():
                    try:
                        if time.time() - path.stat().st_mtime > ttl:
                            path.unlink(missing_ok=True)
                            self.stats.disk_expirations += 1
                    except OSError:
                        pass
                return None
        try:
            with self._dir_lock.shared():
                entry = CacheEntry.from_dict(json.loads(path.read_text()))
                try:
                    # Refresh the access stamp so disk LRU tracks *use*,
                    # not just insertion (the satellite fix: v1 never
                    # stamped reads).  A concurrent eviction may have
                    # removed the file — the decoded entry is still a hit.
                    os.utime(path, None)
                except OSError:
                    pass
            return entry
        except Exception:  # corrupt / torn-read / unreadable: miss
            return None

    def _store_persistent(self, entry: CacheEntry) -> None:
        path = self._persistent_path(entry.fingerprint)
        if path is None:
            return
        payload = json.dumps(entry.to_dict())
        # Unique temp name: two processes publishing the same fingerprint
        # must not truncate each other's in-flight temp file.
        tmp = path.with_suffix(f".{os.getpid()}.{threading.get_ident()}.tmp")
        with self._dir_lock.exclusive():
            try:
                tmp.write_text(payload)
                tmp.replace(path)
            finally:
                tmp.unlink(missing_ok=True)
            if self.policy.bounded:
                self._enforce_policy_locked()

    def _scan_entries(self) -> List[Tuple[Path, os.stat_result]]:
        """(path, stat) for every entry file, oldest access stamp first."""
        found: List[Tuple[Path, os.stat_result]] = []
        for path in self.cache_dir.glob("*.json"):
            try:
                found.append((path, path.stat()))
            except OSError:  # raced with another process's eviction
                continue
        found.sort(key=lambda item: item[1].st_mtime)
        return found

    def _enforce_policy_locked(self) -> Dict[str, int]:
        """Delete expired / excess entries.  Caller holds the exclusive lock."""
        expired = evicted = 0
        entries = self._scan_entries()
        if self.policy.ttl_s is not None:
            cutoff = time.time() - self.policy.ttl_s
            keep = []
            for path, stat in entries:
                if stat.st_mtime < cutoff:
                    path.unlink(missing_ok=True)
                    expired += 1
                else:
                    keep.append((path, stat))
            entries = keep
        total_bytes = sum(stat.st_size for _, stat in entries)
        index = 0
        while index < len(entries):
            over_entries = (self.policy.max_entries is not None
                            and len(entries) - index > self.policy.max_entries)
            over_bytes = (self.policy.max_bytes is not None
                          and total_bytes > self.policy.max_bytes)
            if not over_entries and not over_bytes:
                break
            path, stat = entries[index]
            path.unlink(missing_ok=True)
            total_bytes -= stat.st_size
            evicted += 1
            index += 1
        self.stats.disk_expirations += expired
        self.stats.disk_evictions += evicted
        return {"expired": expired, "evicted": evicted}

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        tier = f", dir={str(self.cache_dir)!r}" if self.cache_dir else ""
        return (f"FingerprintCache(entries={len(self)}/{self.capacity}"
                f"{tier}, hits={self.stats.hits}, misses={self.stats.misses})")
