"""Minimal JSON-RPC worker protocol: run searches on another box.

The wire format is deliberately tiny — newline-delimited JSON-RPC 2.0 over a
plain TCP socket, one JSON document per line::

    → {"jsonrpc": "2.0", "id": 1, "method": "optimise",
       "params": {"request": {...}, "fingerprint": "..."}}
    ← {"jsonrpc": "2.0", "id": 1, "result": {"search": {...}}}

Three methods:

* ``ping`` — liveness/identity probe; returns the worker's capacity,
  jobs served, and **jobs currently in flight** — the load signal the
  health-aware dispatcher routes on.
* ``optimise`` — run one search job; params carry the serialised
  :class:`~repro.service.worker.JobRequest` (graph as base64-wrapped
  binary wire bytes, :mod:`repro.ir.wire`; repeat calls on the same
  connection send only a cached ``graph_ref``) and the admission-time
  fingerprint.  The
  response carries the search outcome *without* the initial graph — the
  caller already holds it and rehydrates locally, which keeps the payload
  proportional to the optimised graph only.  When the params carry
  ``"stream": true`` the server interleaves JSON-RPC *notification*
  frames (``"method": "event"``, no id) ahead of the final response —
  one per optimiser iteration — so callers can follow a long search's
  progress live.
* ``shutdown`` — ask the worker process to stop serving.

Pieces:

* :class:`WorkerServer` — threaded TCP server hosting the optimiser
  registry; start one per worker box (``python -m repro.service
  --worker-server HOST:PORT``).
* :class:`RemoteWorkerClient` — blocking client for tests / scripts.
* :func:`optimise_async` — coroutine used by
  :class:`~repro.service.async_pool.AsyncWorkerPool` to drive many remote
  workers from one event loop.

Failures inside the remote search come back as JSON-RPC error objects and
re-raise as :class:`RemoteWorkerError` on the caller; transport failures
(connection refused, dropped mid-call) raise :class:`RemoteUnavailableError`
so callers can distinguish "the search is broken" from "the box is gone"
and fall back to local execution.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import socketserver
import threading
import time
from typing import Any, Callable, Dict, Mapping, MutableMapping, Optional, Tuple

from ..ir.serialize import graph_from_dict
from ..ir.wire import decode_graph, encode_graph
from ..search.result import SearchResult
from .worker import JobRequest, ServiceResult, execute_request

__all__ = ["WorkerServer", "RemoteWorkerClient", "RemoteWorkerError",
           "RemoteUnavailableError", "optimise_async", "ping_async",
           "parse_endpoint", "graph_ref_for", "request_to_wire",
           "request_from_wire", "result_to_wire", "result_from_wire"]

#: Version stamp of the wire format; servers reject requests from newer
#: protocol revisions rather than mis-decoding them.
#:
#: Revision 2 ships graphs as the binary :mod:`repro.ir.wire` codec
#: (base64 inside the JSON envelope, ~3-6x smaller than the JSON graph
#: dict) and adds per-connection graph caching: a request may carry a
#: ``graph_ref`` instead of the graph, referring to a graph shipped
#: earlier on the same connection — so persistent clients re-optimising
#: the same model stop re-shipping it per call.  Revision-1 payloads
#: (JSON ``graph`` dicts) are still accepted.
PROTOCOL_VERSION = 2

#: Upper bound on one newline-delimited message (request or response).
#: Serialised graphs grow with the model; 64 MiB is ~500x the largest
#: zoo graph today.
_MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class RemoteWorkerError(RuntimeError):
    """The remote worker received the job but failed to execute it."""


class RemoteUnavailableError(ConnectionError):
    """The remote worker could not be reached (or vanished mid-call)."""


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Split ``"host:port"`` (host optional, defaults to localhost).

    Args:
        endpoint: ``"host:port"`` or bare ``"port"``.

    Returns:
        ``(host, port)``.

    Raises:
        ValueError: If the port is missing or not an integer.
    """
    host, _, port = str(endpoint).rpartition(":")
    if not port or not port.isdigit():
        raise ValueError(f"endpoint must be HOST:PORT, got {endpoint!r}")
    return host or "127.0.0.1", int(port)


# -- wire encoding ------------------------------------------------------
def graph_ref_for(request: JobRequest, fingerprint: str = "") -> str:
    """The cache key a request's graph travels under: the admission-time
    fingerprint when the caller has one, else the structural hash."""
    return fingerprint or request.graph.structural_hash()


def request_to_wire(request: JobRequest, fingerprint: str = "",
                    omit_graph: bool = False) -> Dict[str, Any]:
    """Serialise a :class:`JobRequest` for the ``optimise`` params.

    The graph ships as binary wire bytes (base64) under ``graph_wire``,
    tagged with a ``graph_ref`` the server caches it under for the rest of
    the connection.  With ``omit_graph=True`` only the ref is sent — valid
    when the same connection already shipped this graph (see
    :meth:`RemoteWorkerClient.optimise`).
    """
    payload: Dict[str, Any] = {
        "optimiser": request.optimiser,
        "config": dict(request.config),
        "model_name": request.model_name,
        "graph_ref": graph_ref_for(request, fingerprint),
    }
    if not omit_graph:
        payload["graph_wire"] = base64.b64encode(
            encode_graph(request.graph)).decode("ascii")
    return {
        "protocol": PROTOCOL_VERSION,
        "request": payload,
        "fingerprint": fingerprint,
    }


def request_from_wire(params: Mapping[str, Any],
                      graph_cache: Optional[
                          MutableMapping[str, Any]] = None,
                      ) -> Tuple[JobRequest, str]:
    """Decode ``optimise`` params back into a request + fingerprint.

    ``graph_cache`` — the connection's graph store — resolves bare
    ``graph_ref`` requests and absorbs every freshly shipped graph.

    Raises:
        ValueError: If the params were produced by a newer protocol, or a
            ``graph_ref`` is not in the cache (the client must re-ship).
    """
    if params.get("protocol", 1) > PROTOCOL_VERSION:
        raise ValueError(
            f"unsupported protocol revision {params.get('protocol')}")
    data = params["request"]
    ref = data.get("graph_ref", "")
    if "graph_wire" in data:
        graph = decode_graph(base64.b64decode(data["graph_wire"]))
        if graph_cache is not None and ref:
            graph_cache[ref] = graph
    elif "graph" in data:  # protocol revision 1
        graph = graph_from_dict(data["graph"])
    else:
        if graph_cache is None or ref not in graph_cache:
            raise ValueError(f"unknown graph_ref {ref!r} "
                             f"(not shipped on this connection)")
        graph = graph_cache[ref]
    request = JobRequest(
        graph=graph,
        optimiser=data.get("optimiser", "taso"),
        config=dict(data.get("config", {})),
        model_name=data.get("model_name", ""),
        use_cache=False,  # caching happens on the service side
    )
    return request, params.get("fingerprint", "")


def result_to_wire(result: ServiceResult) -> Dict[str, Any]:
    """Serialise a worker-side result, omitting the initial graph."""
    search = result.search
    return {
        "search": {
            "optimiser": search.optimiser,
            "model": search.model,
            "final_graph_wire": base64.b64encode(
                encode_graph(search.final_graph)).decode("ascii"),
            "initial_latency_ms": search.initial_latency_ms,
            "final_latency_ms": search.final_latency_ms,
            "initial_cost_ms": search.initial_cost_ms,
            "final_cost_ms": search.final_cost_ms,
            "optimisation_time_s": search.optimisation_time_s,
            "applied_rules": list(search.applied_rules),
            "stats": dict(search.stats),
        },
        "fingerprint": result.fingerprint,
    }


def result_from_wire(payload: Mapping[str, Any],
                     initial_graph: Any) -> ServiceResult:
    """Rehydrate a wire result against the caller's own initial graph."""
    data = payload["search"]
    if "final_graph_wire" in data:
        final_graph = decode_graph(base64.b64decode(data["final_graph_wire"]))
    else:  # protocol revision 1
        final_graph = graph_from_dict(data["final_graph"])
    search = SearchResult(
        optimiser=data["optimiser"],
        model=data["model"],
        initial_graph=initial_graph,
        final_graph=final_graph,
        initial_latency_ms=float(data["initial_latency_ms"]),
        final_latency_ms=float(data["final_latency_ms"]),
        initial_cost_ms=float(data["initial_cost_ms"]),
        final_cost_ms=float(data["final_cost_ms"]),
        optimisation_time_s=float(data["optimisation_time_s"]),
        applied_rules=list(data.get("applied_rules", [])),
        stats=dict(data.get("stats", {})),
    )
    return ServiceResult(search=search, cache_hit=False,
                         fingerprint=payload.get("fingerprint", ""))


# -- server -------------------------------------------------------------
class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: many newline-delimited JSON-RPC calls."""

    def handle(self) -> None:  # noqa: D102 - socketserver plumbing
        server: "WorkerServer" = self.server.owner  # type: ignore[attr-defined]

        def notify(frame: Dict[str, Any]) -> None:
            # Interleaved event frames are written from the same
            # connection thread that runs the search, so they can never
            # tear against the final response.
            self.wfile.write(json.dumps(frame).encode() + b"\n")
            self.wfile.flush()

        # Per-connection state: graphs shipped earlier on this connection,
        # addressable by ``graph_ref`` in later calls (protocol rev 2).
        context: Dict[str, Any] = {}
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            response = server.handle_call(line, notify=notify,
                                          context=context)
            self.wfile.write(json.dumps(response).encode() + b"\n")
            self.wfile.flush()
            if server.stopping:
                break


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class WorkerServer:
    """Serve the optimiser registry over the JSON-RPC worker protocol.

    One server turns a box into a search worker: every connection can issue
    any number of ``optimise`` calls, each executed in the connection's own
    thread, with total concurrency bounded by ``num_workers`` (excess calls
    queue on a semaphore).

    Args:
        host: Interface to bind (default loopback; bind ``"0.0.0.0"`` to
            serve off-box traffic).
        port: TCP port; ``0`` picks a free one (see :attr:`endpoint`).
        num_workers: Maximum concurrently executing searches.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 num_workers: int = 4):
        self.num_workers = max(1, int(num_workers))
        self._slots = threading.Semaphore(self.num_workers)
        self._server = _ThreadedTCPServer((host, port), _RequestHandler)
        self._server.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self.stopping = False
        self.jobs_served = 0
        #: Searches admitted but not yet finished — queued on the
        #: semaphore *or* executing.  Reported by ``ping`` so dispatchers
        #: can see load this server's caller did not create.
        self.jobs_inflight = 0
        self._served_lock = threading.Lock()

    @property
    def endpoint(self) -> str:
        """The bound ``"host:port"`` (with the real port when 0 was asked)."""
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    # -- dispatch ------------------------------------------------------
    def handle_call(self, raw: bytes,
                    notify: Optional[Callable[[Dict[str, Any]], None]] = None,
                    context: Optional[Dict[str, Any]] = None,
                    ) -> Dict[str, Any]:
        """Execute one JSON-RPC request line; always returns a response.

        ``notify`` — when given — lets streaming methods write JSON-RPC
        notification frames to the connection ahead of the response.
        ``context`` — when given — is the connection's mutable state dict;
        ``optimise`` keeps its graph cache there (``graph_ref`` reuse).
        """
        call_id: Any = None
        try:
            call = json.loads(raw)
            call_id = call.get("id")
            method = call.get("method")
            params = call.get("params") or {}
            if method == "ping":
                result: Dict[str, Any] = {"pong": True,
                                          "workers": self.num_workers,
                                          "capacity": self.num_workers,
                                          "jobs_served": self.jobs_served,
                                          "jobs_inflight": self.jobs_inflight}
            elif method == "optimise":
                result = self._optimise(params, notify, context)
            elif method == "shutdown":
                self.stopping = True
                threading.Thread(target=self.stop, daemon=True).start()
                result = {"stopping": True}
            else:
                raise ValueError(f"unknown method {method!r}")
        except Exception as exc:
            return {"jsonrpc": "2.0", "id": call_id,
                    "error": {"code": -32000, "message": repr(exc)}}
        return {"jsonrpc": "2.0", "id": call_id, "result": result}

    def _optimise(self, params: Mapping[str, Any],
                  notify: Optional[Callable[[Dict[str, Any]], None]] = None,
                  context: Optional[Dict[str, Any]] = None,
                  ) -> Dict[str, Any]:
        graph_cache = (context.setdefault("graphs", {})
                       if context is not None else None)
        request, fingerprint = request_from_wire(params, graph_cache)
        progress: Optional[Callable[[int, float, str], None]] = None
        if params.get("stream") and notify is not None:
            def progress(iteration: int, best_cost: float,
                         best_graph_fp: str) -> None:
                notify({"jsonrpc": "2.0", "method": "event",
                        "params": {"iteration": int(iteration),
                                   "best_cost": float(best_cost),
                                   "best_graph_fp": str(best_graph_fp),
                                   "timestamp": time.time()}})
        with self._served_lock:
            self.jobs_inflight += 1
        try:
            with self._slots:
                outcome = execute_request(request, fingerprint,
                                          progress=progress)
        finally:
            with self._served_lock:  # connection threads run concurrently
                self.jobs_inflight -= 1
        with self._served_lock:
            self.jobs_served += 1
        return result_to_wire(outcome)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "WorkerServer":
        """Serve in a background thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-worker-server",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Stop accepting connections and release the socket."""
        self.stopping = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- clients ------------------------------------------------------------
def _relay_event(progress: Callable[[int, float, str], None],
                 params: Mapping[str, Any]) -> None:
    """Forward one wire ``event`` frame to a progress callback.

    A malformed or failing event must never poison the search result it
    rides alongside, so errors are swallowed here.
    """
    try:
        progress(int(params.get("iteration", 0)),
                 float(params.get("best_cost", 0.0)),
                 str(params.get("best_graph_fp", "")))
    except Exception:
        pass


class RemoteWorkerClient:
    """Blocking client for one worker endpoint (tests, scripts, CLI).

    Holds a single persistent connection; calls are serialised with a lock,
    so share one client per thread — or open one per call site.

    Args:
        endpoint: ``"host:port"`` of a running :class:`WorkerServer`.
        timeout_s: Socket timeout applied to connect and each call.

    Raises:
        RemoteUnavailableError: If the initial connection fails.
    """

    def __init__(self, endpoint: str, timeout_s: float = 300.0):
        self.endpoint = endpoint
        host, port = parse_endpoint(endpoint)
        self._lock = threading.Lock()
        self._ids = 0
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout_s)
        except OSError as exc:
            raise RemoteUnavailableError(
                f"cannot reach worker at {endpoint}: {exc}") from exc
        self._file = self._sock.makefile("rwb")
        #: graph_refs this connection has shipped — later optimise calls
        #: for the same graph send only the ref (protocol rev 2).
        self._shipped_refs: set = set()

    def call(self, method: str, params: Optional[Mapping[str, Any]] = None,
             on_notification: Optional[
                 Callable[[Mapping[str, Any]], None]] = None) -> Any:
        """One JSON-RPC round trip.

        ``on_notification`` — when given — receives the params of every
        id-less notification frame (streamed ``event``\\ s) the server
        interleaves ahead of the response.

        Returns:
            The call's ``result`` member.

        Raises:
            RemoteWorkerError: If the worker returned an error object.
            RemoteUnavailableError: If the connection dropped mid-call.
        """
        with self._lock:
            self._ids += 1
            call = {"jsonrpc": "2.0", "id": self._ids, "method": method,
                    "params": dict(params or {})}
            try:
                self._file.write(json.dumps(call).encode() + b"\n")
                self._file.flush()
                while True:
                    line = self._file.readline()
                    if not line:
                        raise RemoteUnavailableError(
                            f"worker at {self.endpoint} closed the "
                            f"connection")
                    response = json.loads(line)
                    if "method" in response and "id" not in response:
                        if on_notification is not None:
                            on_notification(response.get("params") or {})
                        continue
                    break
            except OSError as exc:
                raise RemoteUnavailableError(
                    f"worker at {self.endpoint} dropped: {exc}") from exc
        if "error" in response:
            raise RemoteWorkerError(response["error"].get("message", "error"))
        return response.get("result")

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns the worker's capacity info."""
        return self.call("ping")

    def optimise(self, request: JobRequest, fingerprint: str = "",
                 progress: Optional[Callable[[int, float, str], None]] = None,
                 ) -> ServiceResult:
        """Run one search remotely and rehydrate the result locally.

        ``progress`` — when given — requests streaming: the worker
        interleaves per-iteration ``event`` frames ahead of the result,
        each forwarded as ``progress(iteration, best_cost,
        best_graph_fp)``.

        The graph ships once per connection: repeat calls for the same
        graph (same fingerprint/structural hash) send only its
        ``graph_ref``, which the server resolves from its per-connection
        cache.
        """
        ref = graph_ref_for(request, fingerprint)
        params = request_to_wire(request, fingerprint,
                                 omit_graph=ref in self._shipped_refs)
        on_notification = None
        if progress is not None:
            params["stream"] = True

            def on_notification(event_params: Mapping[str, Any]) -> None:
                _relay_event(progress, event_params)

        payload = self.call("optimise", params,
                            on_notification=on_notification)
        self._shipped_refs.add(ref)
        return result_from_wire(payload, request.graph)

    def close(self) -> None:
        """Drop the connection (best effort; safe to call twice)."""
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass

    def __enter__(self) -> "RemoteWorkerClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


async def optimise_async(endpoint: str, request: JobRequest,
                         fingerprint: str = "",
                         progress: Optional[
                             Callable[[int, float, str], None]] = None,
                         ) -> ServiceResult:
    """Coroutine flavour of :meth:`RemoteWorkerClient.optimise`.

    Opens a fresh connection per call (the event loop multiplexes many of
    these concurrently, so per-call connections keep the pool stateless).
    ``progress`` — when given — requests streaming and receives every
    interleaved ``event`` frame as ``progress(iteration, best_cost,
    best_graph_fp)``.

    Raises:
        RemoteWorkerError: If the worker returned an error object.
        RemoteUnavailableError: On any transport failure.
    """
    host, port = parse_endpoint(endpoint)
    try:
        # Default StreamReader limit is 64 KiB — far below a serialised
        # zoo graph (inception_v3 is ~94 KB); raise it so readline() can
        # hold one full response document.
        reader, writer = await asyncio.open_connection(
            host, port, limit=_MAX_MESSAGE_BYTES)
    except OSError as exc:
        raise RemoteUnavailableError(
            f"cannot reach worker at {endpoint}: {exc}") from exc
    try:
        params = request_to_wire(request, fingerprint)
        if progress is not None:
            params["stream"] = True
        call = {"jsonrpc": "2.0", "id": 1, "method": "optimise",
                "params": params}
        writer.write(json.dumps(call).encode() + b"\n")
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                raise RemoteUnavailableError(
                    f"worker at {endpoint} closed the connection")
            message = json.loads(line)
            if message.get("method") == "event":
                if progress is not None:
                    _relay_event(progress, message.get("params") or {})
                continue
            break
    except OSError as exc:
        raise RemoteUnavailableError(
            f"worker at {endpoint} dropped: {exc}") from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:  # pragma: no cover - teardown race
            pass
    if "error" in message:
        raise RemoteWorkerError(message["error"].get("message", "error"))
    return result_from_wire(message["result"], request.graph)


async def ping_async(endpoint: str, timeout_s: float = 5.0) -> Dict[str, Any]:
    """Coroutine flavour of :meth:`RemoteWorkerClient.ping`.

    The health-aware dispatcher's probe: returns the worker's ``ping``
    payload (capacity, jobs served, jobs in flight).

    Raises:
        RemoteUnavailableError: On any transport failure or timeout.
        RemoteWorkerError: If the worker returned an error object.
    """
    host, port = parse_endpoint(endpoint)
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout_s)
    except (OSError, asyncio.TimeoutError) as exc:
        raise RemoteUnavailableError(
            f"cannot reach worker at {endpoint}: {exc}") from exc
    try:
        call = {"jsonrpc": "2.0", "id": 1, "method": "ping", "params": {}}
        writer.write(json.dumps(call).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
        if not line:
            raise RemoteUnavailableError(
                f"worker at {endpoint} closed the connection")
    except (OSError, asyncio.TimeoutError) as exc:
        raise RemoteUnavailableError(
            f"worker at {endpoint} dropped: {exc}") from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:  # pragma: no cover - teardown race
            pass
    response = json.loads(line)
    if "error" in response:
        raise RemoteWorkerError(response["error"].get("message", "error"))
    return dict(response.get("result") or {})
