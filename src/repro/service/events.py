"""Streaming job progress: events, sinks and per-job channels.

Every optimiser in this repository can report progress through a
``progress_callback(iteration, best_cost, best_graph_fp)`` — one call per
search iteration with the iteration number, the best objective value seen
so far, and the structural hash of the best graph.  This module is the
transport that carries those callbacks from wherever the search runs back
to whoever submitted the job:

* :class:`ProgressEvent` — one immutable progress observation.
* :class:`QueueProgressSink` — in-process transport: the callback appends
  to a thread-safe deque (the thread worker backend).
* :class:`FileProgressSink` — cross-process transport: the callback
  appends one JSON line per event to a spool file.  The sink is picklable
  (it carries only the path), so it crosses the process-pool boundary and
  also collects the ``event`` frames the remote JSON-RPC client receives.
* :class:`EventChannel` — the consumer side: one channel per streaming
  job, owned by the scheduler, draining whichever sink the job was given.

The scheduler surfaces channels as
:meth:`~repro.service.scheduler.JobHandle.events`; the CLI's ``--follow``
flag and :meth:`~repro.service.api.OptimisationService.events` sit on top.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["ProgressEvent", "QueueProgressSink", "FileProgressSink",
           "EventChannel"]


@dataclass(frozen=True)
class ProgressEvent:
    """One progress observation from a running search.

    Attributes:
        iteration: The optimiser's iteration counter (1-based; queue pops
            for TASO-family searches, saturation rounds for Tensat, walks
            for random search, environment steps for the RL searches).
        best_cost: Best objective value seen so far — cost-model estimate
            for cost-driven optimisers, simulated end-to-end latency (ms)
            for latency-driven ones.
        best_graph_fp: Structural hash of the best graph so far, so a
            follower can tell *which* graph the number belongs to.
        timestamp: Wall-clock seconds when the event was emitted.
    """

    iteration: int
    best_cost: float
    best_graph_fp: str
    timestamp: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (the spool-file / wire encoding)."""
        return {"iteration": self.iteration, "best_cost": self.best_cost,
                "best_graph_fp": self.best_graph_fp,
                "timestamp": self.timestamp}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgressEvent":
        """Decode a spool-file / wire event document."""
        return cls(iteration=int(data.get("iteration", 0)),
                   best_cost=float(data.get("best_cost", 0.0)),
                   best_graph_fp=str(data.get("best_graph_fp", "")),
                   timestamp=float(data.get("timestamp", 0.0)))

    def summary(self) -> str:
        """One-line rendering used by the CLI's ``--follow`` output."""
        return (f"iter {self.iteration:4d}  best {self.best_cost:10.4f}  "
                f"graph {self.best_graph_fp[:12]}")


class QueueProgressSink:
    """In-process sink: events land in a lock-guarded deque.

    Used by the thread worker backend, where the search runs in the same
    process as the consumer and no serialisation is needed.
    """

    def __init__(self) -> None:
        self._events: "deque[ProgressEvent]" = deque()
        self._lock = threading.Lock()

    def __call__(self, iteration: int, best_cost: float,
                 best_graph_fp: str) -> None:
        """The ``progress_callback`` signature optimisers invoke."""
        event = ProgressEvent(iteration=int(iteration),
                              best_cost=float(best_cost),
                              best_graph_fp=str(best_graph_fp),
                              timestamp=time.time())
        with self._lock:
            self._events.append(event)

    def drain(self) -> List[ProgressEvent]:
        """Remove and return every event published since the last drain."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events


class FileProgressSink:
    """Cross-process sink: one JSON line per event, appended to a file.

    Pickles by spool path alone, so it crosses the process-pool boundary;
    the ``O_APPEND`` descriptor is opened lazily on first use in whichever
    process ends up emitting (and kept open — the callback sits inside the
    search's hot loop, so per-event open/close syscalls would tax streamed
    jobs).  Single-``write`` appends keep concurrently-written lines whole
    for the same-host tailer.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = str(path)
        self._fd: Optional[int] = None

    def __call__(self, iteration: int, best_cost: float,
                 best_graph_fp: str) -> None:
        """The ``progress_callback`` signature optimisers invoke."""
        event = ProgressEvent(iteration=int(iteration),
                              best_cost=float(best_cost),
                              best_graph_fp=str(best_graph_fp),
                              timestamp=time.time())
        line = json.dumps(event.to_dict()) + "\n"
        if self._fd is None:
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        os.write(self._fd, line.encode())

    def close(self) -> None:
        """Release the spool descriptor (reopened on next use)."""
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover - already gone
                pass
            self._fd = None

    def __del__(self):  # noqa: D105 - fd hygiene for pooled workers
        self.close()

    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self._fd = None


class EventChannel:
    """The consumer end of one streaming job's progress events.

    Owned by the scheduler (one per streaming job id); reads from either
    an in-memory :class:`QueueProgressSink` or a :class:`FileProgressSink`
    spool file, whichever transport the job's backend required.

    Args:
        spool_path: Tail this file for JSON-line events (cross-process
            backends).  ``None`` means in-memory transport.
    """

    def __init__(self, spool_path: Optional[Union[str, Path]] = None):
        self.spool_path = str(spool_path) if spool_path is not None else None
        self._queue_sink: Optional[QueueProgressSink] = None
        if self.spool_path is None:
            self._queue_sink = QueueProgressSink()
        self._offset = 0
        self._finished = threading.Event()

    def sink(self):
        """The callable to hand to the job body as ``progress``."""
        if self._queue_sink is not None:
            return self._queue_sink
        return FileProgressSink(self.spool_path)

    @property
    def finished(self) -> bool:
        """Whether the producing job has reached a terminal state."""
        return self._finished.is_set()

    def finish(self) -> None:
        """Mark the producing job terminal (no further events expected)."""
        self._finished.set()

    def drain(self) -> List[ProgressEvent]:
        """Every event published since the previous drain (non-blocking)."""
        if self._queue_sink is not None:
            return self._queue_sink.drain()
        return self._drain_spool()

    def _drain_spool(self) -> List[ProgressEvent]:
        try:
            with open(self.spool_path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return []
        events: List[ProgressEvent] = []
        consumed = 0
        for raw in chunk.split(b"\n"):
            # A trailing fragment without its newline is a half-written
            # event; leave the offset at its start and pick it up whole on
            # the next drain.
            end = consumed + len(raw) + 1
            if end > len(chunk):
                break
            consumed = end
            if not raw.strip():
                continue
            try:
                events.append(ProgressEvent.from_dict(json.loads(raw)))
            except (ValueError, TypeError):
                continue
        self._offset += consumed
        return events

    def close(self) -> None:
        """Release the channel's spool file (idempotent)."""
        self.finish()
        if self.spool_path is not None:
            try:
                os.unlink(self.spool_path)
            except OSError:
                pass
