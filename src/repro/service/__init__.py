"""Optimisation-as-a-service: registry, fingerprint cache, job scheduler.

The offline loop (build a graph, run one optimiser, report latency) becomes a
serving layer here:

* :mod:`repro.service.registry` — name → optimiser factory with defaults
* :mod:`repro.service.cache` — fingerprint cache (in-memory LRU + JSON tier)
* :mod:`repro.service.scheduler` — bounded submit/poll/result job scheduler
* :mod:`repro.service.worker` — per-worker job execution
* :mod:`repro.service.api` — the :class:`OptimisationService` batch façade
* :mod:`repro.service.cli` — ``python -m repro.service`` front end
"""

from .api import OptimisationService
from .cache import CacheEntry, CacheStats, FingerprintCache, request_fingerprint
from .registry import (create_optimiser, default_config, list_optimisers,
                       optimiser_spec, register_optimiser, OptimiserSpec)
from .scheduler import (JobRecord, JobScheduler, JobState, QueueFullError,
                        UnknownJobError)
from .worker import JobRequest, ServiceResult, execute_request

__all__ = [
    "OptimisationService",
    "CacheEntry", "CacheStats", "FingerprintCache", "request_fingerprint",
    "OptimiserSpec", "create_optimiser", "default_config", "list_optimisers",
    "optimiser_spec", "register_optimiser",
    "JobRecord", "JobScheduler", "JobState", "QueueFullError", "UnknownJobError",
    "JobRequest", "ServiceResult", "execute_request",
]
