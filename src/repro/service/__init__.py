"""Optimisation-as-a-service: registry, cache, scheduler, worker backends.

The offline loop (build a graph, run one optimiser, report latency) becomes a
serving layer here:

* :mod:`repro.service.registry` — name → optimiser factory with defaults
* :mod:`repro.service.cache` — fingerprint cache (in-memory LRU + a locked,
  evicting, multi-process-safe JSON tier)
* :mod:`repro.service.lease` — cross-process dedup leases over the cache
  directory (flock-guarded acquire, heartbeats, stale takeover)
* :mod:`repro.service.scheduler` — bounded submit/poll/result job scheduler
  over thread / process / async worker backends, with per-job event
  channels (:class:`JobHandle`)
* :mod:`repro.service.events` — streaming progress events and their
  in-memory / spool-file transports
* :mod:`repro.service.async_pool` — asyncio event loop driving local process
  workers and remote JSON-RPC boxes
* :mod:`repro.service.health` — per-endpoint health records and the
  least-loaded / circuit-breaker routing the async pool dispatches by
* :mod:`repro.service.remote` — the off-box worker protocol
  (:class:`WorkerServer` / :class:`RemoteWorkerClient`)
* :mod:`repro.service.worker` — per-worker job execution
* :mod:`repro.service.api` — the :class:`OptimisationService` batch façade
  (admission-time caching + in-flight and cross-process dedup)
* :mod:`repro.service.cli` — ``python -m repro.service`` front end

See ``docs/service.md`` for the operations guide.
"""

from .api import OptimisationService
from .async_pool import AsyncWorkerPool
from .cache import (CacheEntry, CacheStats, EvictionPolicy, FingerprintCache,
                    request_fingerprint)
from .events import EventChannel, ProgressEvent
from .health import EndpointHealth, HealthRegistry
from .lease import LeaseConfig, LeaseManager
from .registry import (create_optimiser, default_config, list_optimisers,
                       optimiser_spec, register_optimiser, OptimiserSpec)
from .remote import (RemoteUnavailableError, RemoteWorkerClient,
                     RemoteWorkerError, WorkerServer)
from .scheduler import (JobHandle, JobRecord, JobScheduler, JobState,
                        QueueFullError, UnknownJobError)
from .worker import JobRequest, ServiceResult, execute_request

__all__ = [
    "OptimisationService",
    "AsyncWorkerPool",
    "CacheEntry", "CacheStats", "EvictionPolicy", "FingerprintCache",
    "request_fingerprint",
    "EventChannel", "ProgressEvent",
    "EndpointHealth", "HealthRegistry",
    "LeaseConfig", "LeaseManager",
    "OptimiserSpec", "create_optimiser", "default_config", "list_optimisers",
    "optimiser_spec", "register_optimiser",
    "RemoteUnavailableError", "RemoteWorkerClient", "RemoteWorkerError",
    "WorkerServer",
    "JobHandle", "JobRecord", "JobScheduler", "JobState", "QueueFullError",
    "UnknownJobError",
    "JobRequest", "ServiceResult", "execute_request",
]
