"""Worker-side job execution: one fresh optimiser per job.

Search objects are stateful (priority queues, e-graph populations, RL agents)
and must not be shared between concurrent jobs, so each worker constructs its
optimiser from the registry per request.  The only state shared across jobs is
the fingerprint cache, which the service consults at admission time — workers
themselves are cache-oblivious, which keeps them trivially usable from a
process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..ir.graph import Graph
from ..search.result import SearchResult
from .cache import CacheEntry, request_fingerprint
from .registry import create_optimiser

__all__ = ["JobRequest", "ServiceResult", "execute_request", "cached_result"]


@dataclass(frozen=True)
class JobRequest:
    """A fully self-describing optimisation job: graph + optimiser + config."""

    graph: Graph
    optimiser: str = "taso"
    config: Mapping[str, Any] = field(default_factory=dict)
    model_name: str = ""
    use_cache: bool = True

    @property
    def label(self) -> str:
        """Human-readable job tag: ``optimiser:model``."""
        return f"{self.optimiser}:{self.model_name or self.graph.name}"

    def fingerprint(self) -> str:
        """The request's canonical cache key (see
        :func:`~repro.service.cache.request_fingerprint`)."""
        return request_fingerprint(self.graph, self.optimiser, self.config)


@dataclass(frozen=True)
class ServiceResult:
    """What the service hands back for one job.

    Attributes:
        search: The underlying optimiser outcome.
        cache_hit: The result was served from the fingerprint cache
            (no search ran for this submission).
        fingerprint: The request fingerprint the job was keyed under.
        job_id: Scheduler job id (filled in by
            :meth:`~repro.service.api.OptimisationService.result`).
        queue_time_s: Time spent queued before a worker picked the job up
            (0 when untraceable — process/async backends, cache hits).
        run_time_s: Worker-side execution time (0 when untraceable).
        coalesced: This submission was deduplicated onto another in-flight
            identical request; ``search`` is that primary job's outcome
            (relabelled with this caller's model name).
    """

    search: SearchResult
    cache_hit: bool
    fingerprint: str
    job_id: int = -1
    queue_time_s: float = 0.0
    run_time_s: float = 0.0
    coalesced: bool = False

    @property
    def graph(self) -> Graph:
        """The optimised graph."""
        return self.search.final_graph

    @property
    def speedup(self) -> float:
        """End-to-end speedup of the optimised graph (initial / final)."""
        return self.search.speedup

    def summary(self) -> str:
        """One-line description including the job's origin
        (search / cache / coalesced)."""
        origin = "cache" if self.cache_hit else (
            "coalesced" if self.coalesced else "search")
        return f"[job {self.job_id} via {origin}] {self.search.summary()}"


def execute_request(request: JobRequest, fingerprint: str = "",
                    progress: Any = None) -> ServiceResult:
    """Run one search job from scratch (no cache consultation).

    ``fingerprint`` lets the caller pass the admission-time fingerprint
    along instead of re-hashing the whole graph in the worker.

    ``progress`` — when given — is installed as the optimiser's
    ``progress_callback``: a callable ``f(iteration, best_cost,
    best_graph_fp)`` the search invokes once per iteration.  The serving
    layer passes an event sink here (see :mod:`repro.service.events`); a
    custom optimiser without the attribute simply streams nothing.
    """
    optimiser = create_optimiser(request.optimiser, **dict(request.config))
    if progress is not None and hasattr(optimiser, "progress_callback"):
        optimiser.progress_callback = progress
    result = optimiser.optimise(request.graph,
                                request.model_name or request.graph.name)
    return ServiceResult(search=result, cache_hit=False,
                         fingerprint=fingerprint or request.fingerprint())


def cached_result(request: JobRequest, entry: CacheEntry,
                  retrieval_time_s: float = 0.0) -> ServiceResult:
    """Rehydrate a cache entry into the result for ``request``."""
    return ServiceResult(
        search=entry.to_result(request.graph, retrieval_time_s,
                               model_name=request.model_name
                               or request.graph.name),
        cache_hit=True,
        fingerprint=entry.fingerprint,
    )
