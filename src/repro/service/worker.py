"""Worker-side job execution: one fresh optimiser per job.

Search objects are stateful (priority queues, e-graph populations, RL agents)
and must not be shared between concurrent jobs, so each worker constructs its
optimiser from the registry per request.  The only state shared across jobs is
the fingerprint cache, which the service consults at admission time — workers
themselves are cache-oblivious, which keeps them trivially usable from a
process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..ir.graph import Graph
from ..search.result import SearchResult
from .cache import CacheEntry, request_fingerprint
from .registry import create_optimiser

__all__ = ["JobRequest", "ServiceResult", "execute_request", "cached_result"]


@dataclass(frozen=True)
class JobRequest:
    """A fully self-describing optimisation job: graph + optimiser + config."""

    graph: Graph
    optimiser: str = "taso"
    config: Mapping[str, Any] = field(default_factory=dict)
    model_name: str = ""
    use_cache: bool = True

    @property
    def label(self) -> str:
        return f"{self.optimiser}:{self.model_name or self.graph.name}"

    def fingerprint(self) -> str:
        return request_fingerprint(self.graph, self.optimiser, self.config)


@dataclass(frozen=True)
class ServiceResult:
    """What the service hands back for one job."""

    search: SearchResult
    cache_hit: bool
    fingerprint: str
    job_id: int = -1
    queue_time_s: float = 0.0
    run_time_s: float = 0.0

    @property
    def graph(self) -> Graph:
        """The optimised graph."""
        return self.search.final_graph

    @property
    def speedup(self) -> float:
        return self.search.speedup

    def summary(self) -> str:
        origin = "cache" if self.cache_hit else "search"
        return f"[job {self.job_id} via {origin}] {self.search.summary()}"


def execute_request(request: JobRequest,
                    fingerprint: str = "") -> ServiceResult:
    """Run one search job from scratch (no cache consultation).

    ``fingerprint`` lets the caller pass the admission-time fingerprint
    along instead of re-hashing the whole graph in the worker.
    """
    optimiser = create_optimiser(request.optimiser, **dict(request.config))
    result = optimiser.optimise(request.graph,
                                request.model_name or request.graph.name)
    return ServiceResult(search=result, cache_hit=False,
                         fingerprint=fingerprint or request.fingerprint())


def cached_result(request: JobRequest, entry: CacheEntry,
                  retrieval_time_s: float = 0.0) -> ServiceResult:
    """Rehydrate a cache entry into the result for ``request``."""
    return ServiceResult(
        search=entry.to_result(request.graph, retrieval_time_s,
                               model_name=request.model_name
                               or request.graph.name),
        cache_hit=True,
        fingerprint=entry.fingerprint,
    )
