"""The :class:`OptimisationService` batch façade.

Ties the registry, fingerprint cache and job scheduler together behind
submit / poll / result semantics::

    from repro import build_model
    from repro.service import OptimisationService

    with OptimisationService(num_workers=4) as service:
        job_id = service.submit(build_model("squeezenet"), optimiser="taso")
        result = service.result(job_id)          # blocks; ServiceResult
        again = service.optimise(build_model("squeezenet"))
        assert again.cache_hit                   # fingerprint cache warm

Cache policy: the cache is consulted once, at submission time.  A hit
short-circuits the search entirely (the job completes with the cached graph
in microseconds).  A miss checks the *in-flight table*: if an identical
fingerprint is already searching, the new submission is attached to that
job (admission-time dedup — one search, every waiter gets the result).
Only a genuinely novel request dispatches a search, whose result is written
back to the cache on success.  ``use_cache=False`` opts a submission out of
both the cache *and* dedup.

When the cache has a persistent directory, dedup additionally extends
**across processes** via fingerprint lease files (see
:mod:`repro.service.lease`): the service only dispatches a search after
acquiring the fingerprint's lease; losing the acquisition race to another
process turns the submission into a *waiter* job that polls the shared
cache tier for the winner's result — and takes the search over if the
winner's lease goes stale (its process died).

Jobs submitted with ``stream=True`` emit progress events — one per
optimiser iteration — consumable via :meth:`OptimisationService.events`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import (Any, Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Union)

from ..ir.graph import Graph
from .cache import CacheEntry, EvictionPolicy, FingerprintCache
from .events import ProgressEvent
from .lease import LeaseConfig, LeaseManager, leases_supported, wait_for_result
from .registry import optimiser_spec
from .scheduler import JobScheduler, JobState, UnknownJobError
from .worker import JobRequest, ServiceResult, cached_result, execute_request

__all__ = ["OptimisationService"]

#: Things submit_batch accepts per item: a graph, (graph, model_name),
#: a JobRequest, or a kwargs dict for submit().
BatchItem = Union[Graph, "JobRequest", Mapping[str, Any], tuple]


class OptimisationService:
    """Optimisation-as-a-service over the optimiser registry.

    Args:
        num_workers: Worker-pool size for concurrent search jobs.
        cache: A pre-built :class:`FingerprintCache` to share between
            services; built from ``cache_capacity`` / ``cache_dir`` /
            ``cache_policy`` when omitted.
        cache_capacity: In-memory LRU tier size (entries).
        cache_dir: Enables the persistent JSON cache tier under this
            directory.  The tier is multi-process safe (advisory locking +
            atomic publishes), so many services — on one host or a shared
            filesystem — can point at the same directory.
        cache_policy: Eviction bounds for the persistent tier (max entries
            / max bytes / TTL); unbounded when omitted.
        max_pending: Bounded admission queue (see :class:`JobScheduler`).
        use_processes: Back-compat alias for ``backend="process"``.
        backend: Worker flavour — ``"thread"`` (default), ``"process"``,
            or ``"async"`` (event loop over local process workers and any
            ``remote_endpoints``).
        remote_endpoints: ``"host:port"`` strings of
            :class:`~repro.service.remote.WorkerServer` boxes; implies the
            async backend unless one was named explicitly.
        router: Remote routing policy for the async backend —
            ``"health"`` (least-loaded live endpoint, circuit breaker +
            probe readmission; the default) or ``"round_robin"`` (the
            legacy baseline).
        cross_process_dedup: Extend exactly-once to simultaneous
            submissions from *other service processes* via lease files in
            the cache directory.  Effective only with a persistent cache
            tier on a platform with ``flock``; on by default.
        lease_config: Lease timing knobs (heartbeat / staleness / poll
            cadence); defaults suit real searches.

    Raises:
        ValueError: If ``backend`` is not a recognised name.
    """

    def __init__(self, num_workers: int = 4,
                 cache: Optional[FingerprintCache] = None,
                 cache_capacity: int = 256,
                 cache_dir: Optional[str] = None,
                 cache_policy: Optional[EvictionPolicy] = None,
                 max_pending: int = 256,
                 use_processes: bool = False,
                 backend: Optional[str] = None,
                 remote_endpoints: Optional[Sequence[str]] = None,
                 router: str = "health",
                 cross_process_dedup: bool = True,
                 lease_config: Optional[LeaseConfig] = None):
        self.cache = cache if cache is not None else FingerprintCache(
            capacity=cache_capacity, cache_dir=cache_dir, policy=cache_policy)
        if backend is None and remote_endpoints:
            backend = "async"
        self.scheduler = JobScheduler(num_workers=num_workers,
                                      max_pending=max_pending,
                                      use_processes=use_processes,
                                      backend=backend,
                                      remote_endpoints=list(remote_endpoints
                                                            or []),
                                      router=router)
        self._leases: Optional[LeaseManager] = None
        if (cross_process_dedup and self.cache.cache_dir is not None
                and leases_supported()):
            self._leases = LeaseManager(self.cache.cache_dir,
                                        config=lease_config)
        # Admission-time dedup: fingerprint → primary job id, plus the
        # original request of every follower so its result can be
        # relabelled at pickup.
        self._inflight: Dict[str, int] = {}
        self._followers: Dict[int, JobRequest] = {}
        # RLock: a job that finishes before its done-callback is registered
        # runs the in-flight cleanup synchronously on the submitting thread,
        # re-entering while submit_request still holds the lock.
        self._dedup_lock = threading.RLock()
        self._coalesced_total = 0

    # -- submission ----------------------------------------------------
    def submit(self, graph: Graph, optimiser: str = "taso",
               config: Optional[Mapping[str, Any]] = None,
               model_name: str = "", use_cache: bool = True,
               stream: bool = False) -> int:
        """Queue one optimisation job; returns its job id immediately.

        Args:
            graph: The tensor graph to optimise.
            optimiser: Registered optimiser name (see
                :func:`~repro.service.registry.list_optimisers`).
            config: Optimiser config overrides, merged over the registry
                defaults before fingerprinting.
            model_name: Label for reporting; defaults to the graph's name.
            use_cache: Consult the fingerprint cache and in-flight dedup
                table at admission.  ``False`` forces a fresh search and
                leaves the cache untouched.
            stream: Emit per-iteration progress events, consumable via
                :meth:`events` while the job runs.

        Returns:
            The job id (pass to :meth:`poll` / :meth:`result`).

        Raises:
            KeyError: For an unknown optimiser name — raised here, not in
                the worker.
            QueueFullError: If the admission queue is at capacity.
        """
        request = JobRequest(graph=graph, optimiser=optimiser,
                             config=dict(config or {}),
                             model_name=model_name, use_cache=use_cache)
        return self.submit_request(request, stream=stream)

    def submit_request(self, request: JobRequest, stream: bool = False) -> int:
        """Admit one :class:`JobRequest`; returns its job id.

        Admission order: cache lookup → in-flight dedup → cross-process
        lease → dispatch.  A cache hit completes inline; a fingerprint
        already being searched in this process attaches this submission to
        the in-flight job (no new work); a fingerprint being searched by
        *another process* (lease held elsewhere) dispatches a waiter that
        polls the shared cache tier instead of re-searching; only a
        genuinely novel fingerprint runs a search.

        Raises:
            KeyError: For an unknown optimiser name.
            QueueFullError: If ``max_pending`` novel jobs are already open
                (cache hits and coalesced followers are exempt — they add
                no work).
        """
        # Canonicalise to the *effective* config — registry defaults merged
        # under the overrides — so spelling a default out explicitly shares a
        # cache slot with omitting it, and a later change to a registry
        # default cannot resurrect persistent entries computed under the old
        # default.
        spec = optimiser_spec(request.optimiser)
        effective = {**spec.defaults, **dict(request.config)}
        if request.optimiser != spec.name or effective != dict(request.config):
            request = replace(request, optimiser=spec.name, config=effective)
        fingerprint = request.fingerprint()
        if not request.use_cache:
            return self.scheduler.submit(execute_request, request, fingerprint,
                                         label=request.label, stream=stream)
        started = time.perf_counter()
        entry = self.cache.get(fingerprint)
        if entry is not None:
            # Complete the job inline: a hit never touches the worker
            # pool, so warm traffic costs neither a dispatch nor (with a
            # process pool) a round of graph pickling.
            result = cached_result(request, entry,
                                   time.perf_counter() - started)
            return self.scheduler.submit_completed(
                result, label=f"{request.label} (cached)")
        with self._dedup_lock:
            primary_id = self._inflight.get(fingerprint)
            if primary_id is not None:
                try:
                    follower_id = self.scheduler.attach(
                        primary_id, label=f"{request.label} (coalesced)")
                except UnknownJobError:
                    # The primary finished and was retired between its
                    # in-flight cleanup and now; fall through to a fresh
                    # dispatch (the cache very likely serves the next one).
                    pass
                else:
                    self._followers[follower_id] = request
                    self._coalesced_total += 1
                    return follower_id
            # Cross-process dedup: only the process holding the
            # fingerprint's lease searches; everyone else waits on the
            # shared cache tier.
            token: Optional[str] = None
            if self._leases is not None:
                token = self._leases.acquire(fingerprint)
                if token is not None:
                    # Between our cache miss and winning the lease,
                    # another process may have published and released;
                    # re-check so we don't re-run a finished search.
                    entry = self.cache.get(fingerprint)
                    if entry is not None:
                        self._leases.release(fingerprint, token)
                        result = cached_result(
                            request, entry, time.perf_counter() - started)
                        return self.scheduler.submit_completed(
                            result, label=f"{request.label} (cached)")

            # The registration cell closes the race with ultra-fast jobs:
            # if the job is already terminal when its done-callback is
            # attached, ``release`` runs (on this thread) before we learn
            # the job id — it records that fact so we skip registering a
            # fingerprint that would never be cleaned up.
            cell: Dict[str, Any] = {"job_id": None, "done": False}

            def release(_future: Any) -> None:
                if token is not None:
                    # After on_success published the entry, so a released
                    # lease with no entry means the search failed.
                    self._leases.release(fingerprint, token)
                with self._dedup_lock:
                    cell["done"] = True
                    job_id = cell["job_id"]
                    if job_id is not None and \
                            self._inflight.get(fingerprint) == job_id:
                        del self._inflight[fingerprint]

            try:
                if self._leases is not None and token is None:
                    cfg = self._leases.config
                    job_id = self.scheduler.submit(
                        wait_for_result, request, fingerprint,
                        str(self.cache.cache_dir),
                        heartbeat_s=cfg.heartbeat_s,
                        stale_after_s=cfg.stale_after_s,
                        poll_interval_s=cfg.poll_interval_s,
                        max_wait_s=cfg.max_wait_s,
                        label=f"{request.label} (lease-wait)",
                        on_success=self._store_searched_callback(fingerprint),
                        on_done=release, stream=stream, compute=False)
                else:
                    job_id = self.scheduler.submit(
                        execute_request, request, fingerprint,
                        label=request.label,
                        on_success=self._store_callback(fingerprint),
                        on_done=release, stream=stream)
            except BaseException:
                # A rejected admission (e.g. QueueFullError) never created
                # the job whose done-callback would release the lease —
                # releasing here keeps the fingerprint searchable by
                # everyone (a leaked lease would wedge it cluster-wide
                # until this process exits).
                if token is not None:
                    self._leases.release(fingerprint, token)
                raise
            cell["job_id"] = job_id
            if not cell["done"]:
                self._inflight[fingerprint] = job_id
            return job_id

    def submit_batch(self, jobs: Iterable[BatchItem],
                     optimiser: str = "taso",
                     config: Optional[Mapping[str, Any]] = None,
                     use_cache: bool = True,
                     stream: bool = False) -> List[int]:
        """Queue many jobs; returns job ids in submission order.

        ``optimiser`` / ``config`` / ``use_cache`` / ``stream`` are
        defaults applied to items that do not carry their own.  Admission
        is all-or-nothing: if any item is rejected (bad item, unknown
        optimiser, full queue), the batch's already-admitted still-pending
        jobs are cancelled before the error propagates, so no work is
        stranded without its job ids.
        """
        job_ids: List[int] = []
        try:
            for item in jobs:
                if isinstance(item, JobRequest):
                    job_ids.append(self.submit_request(item, stream=stream))
                elif isinstance(item, Graph):
                    job_ids.append(self.submit(item, optimiser=optimiser,
                                               config=config,
                                               use_cache=use_cache,
                                               stream=stream))
                elif isinstance(item, tuple):
                    graph, model_name = item
                    job_ids.append(self.submit(graph, optimiser=optimiser,
                                               config=config,
                                               model_name=model_name,
                                               use_cache=use_cache,
                                               stream=stream))
                elif isinstance(item, Mapping):
                    kwargs = {"optimiser": optimiser, "config": config,
                              "use_cache": use_cache, "stream": stream,
                              **item}
                    job_ids.append(self.submit(**kwargs))
                else:
                    raise TypeError(
                        f"cannot submit {type(item).__name__}: expected "
                        "Graph, (graph, model_name), JobRequest or kwargs "
                        "dict")
        except Exception:
            for job_id in job_ids:
                try:
                    self.scheduler.cancel(job_id)
                except Exception:
                    pass
            raise
        return job_ids

    def _store_callback(self, fingerprint: str):
        def store(result: ServiceResult) -> None:
            self.cache.put(CacheEntry.from_result(fingerprint, result.search))
        return store

    def _store_searched_callback(self, fingerprint: str):
        """Like :meth:`_store_callback`, but only for genuine searches.

        Waiter jobs usually return an entry *polled from* the shared
        tier — republishing it would reset its provenance for no gain;
        only a takeover search (``cache_hit=False``) is worth storing.
        """
        def store(result: ServiceResult) -> None:
            if not result.cache_hit:
                self.cache.put(
                    CacheEntry.from_result(fingerprint, result.search))
        return store

    # -- polling / results ---------------------------------------------
    def poll(self, job_id: int) -> JobState:
        """Non-blocking job state.

        Args:
            job_id: A job id from any of the submit methods.

        Returns:
            The job's current :class:`JobState`.

        Raises:
            UnknownJobError: If the id was never issued or was retired.
        """
        return self.scheduler.poll(job_id)

    def result(self, job_id: int,
               timeout: Optional[float] = None) -> ServiceResult:
        """Block until ``job_id`` finishes and return its result.

        For a coalesced (deduplicated) submission this returns the primary
        job's outcome relabelled with *this* submission's model name and
        flagged ``coalesced=True``.

        Args:
            job_id: A job id from any of the submit methods.
            timeout: Seconds to wait before raising
                :class:`concurrent.futures.TimeoutError`.

        Returns:
            The job's :class:`ServiceResult` with timing fields filled in.

        Raises:
            UnknownJobError: If the id was never issued or was retired.
            Exception: Whatever the search job itself raised (a failed
                primary fans its error out to every coalesced follower).
        """
        try:
            outcome: ServiceResult = self.scheduler.result(job_id, timeout)
        except TimeoutError:
            raise  # job still running — keep the follower mapping for retry
        except BaseException:
            # Terminal failure: drop the follower bookkeeping (it pins the
            # request graph) before fanning the error out.
            with self._dedup_lock:
                self._followers.pop(job_id, None)
            raise
        with self._dedup_lock:
            follower_request = self._followers.pop(job_id, None)
        if follower_request is not None:
            name = follower_request.model_name or follower_request.graph.name
            outcome = replace(outcome, coalesced=True,
                              search=replace(outcome.search, model=name))
        try:
            record = self.scheduler.record(job_id)
            queue_time = record.queue_time_s or 0.0
            run_time = record.run_time_s or 0.0
        except UnknownJobError:
            # The record was retired (max_history) between resolving the
            # future and snapshotting timings; the result itself is intact.
            queue_time = run_time = 0.0
        return replace(outcome, job_id=job_id,
                       queue_time_s=queue_time, run_time_s=run_time)

    def events(self, job_id: int, poll_interval_s: float = 0.05,
               timeout: Optional[float] = None) -> Iterator[ProgressEvent]:
        """Yield a streaming job's progress events until it finishes.

        One :class:`~repro.service.events.ProgressEvent` per optimiser
        iteration, for jobs submitted with ``stream=True`` (a coalesced
        follower shares — and competes for — its primary's stream; a
        cache hit yields nothing).  Events are consumed: two iterators
        over the same job split the stream between them.

        Args:
            job_id: A job id from any of the submit methods.
            poll_interval_s: Sleep between drains while the job runs.
            timeout: Overall bound in seconds (``TimeoutError`` beyond).

        Raises:
            UnknownJobError: If the id was never issued or was retired.
            TimeoutError: If ``timeout`` elapsed with the job unfinished.
        """
        return self.scheduler.events(job_id, poll_interval_s=poll_interval_s,
                                     timeout=timeout)

    def gather(self, job_ids: Sequence[int],
               timeout: Optional[float] = None) -> List[ServiceResult]:
        """Results for ``job_ids``, in the given (submission) order.

        Args:
            job_ids: Ids to collect, typically from :meth:`submit_batch`.
            timeout: Per-job wait bound, applied to each id in turn.

        Returns:
            One :class:`ServiceResult` per id, order-aligned.

        Raises:
            Exception: The first failing job's error, like :meth:`result`.
        """
        return [self.result(job_id, timeout) for job_id in job_ids]

    # -- synchronous conveniences --------------------------------------
    def optimise(self, graph: Graph, optimiser: str = "taso",
                 config: Optional[Mapping[str, Any]] = None,
                 model_name: str = "", use_cache: bool = True,
                 timeout: Optional[float] = None) -> ServiceResult:
        """submit + result in one call (arguments as in :meth:`submit`)."""
        job_id = self.submit(graph, optimiser=optimiser, config=config,
                             model_name=model_name, use_cache=use_cache)
        return self.result(job_id, timeout)

    def optimise_batch(self, jobs: Iterable[BatchItem],
                       optimiser: str = "taso",
                       config: Optional[Mapping[str, Any]] = None,
                       use_cache: bool = True,
                       timeout: Optional[float] = None) -> List[ServiceResult]:
        """submit_batch + gather in one call (results in submission order)."""
        job_ids = self.submit_batch(jobs, optimiser=optimiser, config=config,
                                    use_cache=use_cache)
        return self.gather(job_ids, timeout)

    # -- introspection / lifecycle -------------------------------------
    def probe_workers(self) -> Dict[str, bool]:
        """Force one health probe of the remote worker fleet.

        Returns ``{endpoint: reachable}`` (empty without remote
        endpoints).  A successful probe refreshes the endpoint's
        capacity/load record and readmits it from quarantine immediately
        instead of waiting for the next background probe.
        """
        return self.scheduler.probe_workers()

    def stats(self) -> Dict[str, Any]:
        """Service counters: worker pool, job states, cache, dedup.

        Returns:
            A dict with ``workers``, ``backend``, ``jobs`` (state tallies),
            ``cache_entries`` / ``cache`` (tier accounting), ``dedup``
            (coalesced submissions, current in-flight table size) and — on
            the async backend — ``pool`` dispatch counters.
        """
        with self._dedup_lock:
            dedup = {"coalesced": self._coalesced_total,
                     "inflight": len(self._inflight)}
        dedup["cross_process"] = self._leases is not None
        if self._leases is not None:
            dedup["leases_held"] = len(self._leases.held())
        stats = {
            "workers": self.scheduler.num_workers,
            "backend": self.scheduler.backend,
            "use_processes": self.scheduler.use_processes,
            "jobs": self.scheduler.counts(),
            "cache_entries": len(self.cache),
            "cache": self.cache.stats.to_dict(),
            "dedup": dedup,
        }
        pool_stats = self.scheduler.pool_stats()
        if pool_stats is not None:
            stats["pool"] = pool_stats
        return stats

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down.

        Args:
            wait: Block until in-flight jobs finish (results stay
                retrievable); ``False`` abandons them.
        """
        self.scheduler.shutdown(wait=wait)
        if self._leases is not None:
            self._leases.close()
        with self._dedup_lock:
            self._inflight.clear()
            self._followers.clear()

    def __enter__(self) -> "OptimisationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return (f"OptimisationService(workers={self.scheduler.num_workers}, "
                f"cache={self.cache!r})")
