"""The :class:`OptimisationService` batch façade.

Ties the registry, fingerprint cache and job scheduler together behind
submit / poll / result semantics::

    from repro import build_model
    from repro.service import OptimisationService

    with OptimisationService(num_workers=4) as service:
        job_id = service.submit(build_model("squeezenet"), optimiser="taso")
        result = service.result(job_id)          # blocks; ServiceResult
        again = service.optimise(build_model("squeezenet"))
        assert again.cache_hit                   # fingerprint cache warm

Cache policy: the cache is consulted once, at submission time.  A hit
short-circuits the search entirely (the job completes with the cached graph
in microseconds); a miss dispatches a real search whose result is written
back on success.  Identical requests submitted concurrently before the first
completes will each run — accept the duplicate work rather than serialising
admission behind in-flight searches.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..ir.graph import Graph
from .cache import CacheEntry, FingerprintCache
from .registry import optimiser_spec
from .scheduler import JobScheduler, JobState, UnknownJobError
from .worker import JobRequest, ServiceResult, cached_result, execute_request

__all__ = ["OptimisationService"]

#: Things submit_batch accepts per item: a graph, (graph, model_name),
#: a JobRequest, or a kwargs dict for submit().
BatchItem = Union[Graph, "JobRequest", Mapping[str, Any], tuple]


class OptimisationService:
    """Optimisation-as-a-service over the optimiser registry.

    Parameters
    ----------
    num_workers:
        Worker-pool size for concurrent search jobs.
    cache:
        A pre-built :class:`FingerprintCache` to share between services;
        built from ``cache_capacity`` / ``cache_dir`` when omitted.
    cache_dir:
        Enables the persistent JSON cache tier under this directory.
    max_pending:
        Bounded admission queue (see :class:`JobScheduler`).
    use_processes:
        Use a process pool for true parallelism of the pure-Python searches.
    """

    def __init__(self, num_workers: int = 4,
                 cache: Optional[FingerprintCache] = None,
                 cache_capacity: int = 256,
                 cache_dir: Optional[str] = None,
                 max_pending: int = 256,
                 use_processes: bool = False):
        self.cache = cache if cache is not None else FingerprintCache(
            capacity=cache_capacity, cache_dir=cache_dir)
        self.scheduler = JobScheduler(num_workers=num_workers,
                                      max_pending=max_pending,
                                      use_processes=use_processes)

    # -- submission ----------------------------------------------------
    def submit(self, graph: Graph, optimiser: str = "taso",
               config: Optional[Mapping[str, Any]] = None,
               model_name: str = "", use_cache: bool = True) -> int:
        """Queue one optimisation job; returns its job id immediately.

        Unknown optimiser names raise ``KeyError`` here, not in the worker.
        """
        request = JobRequest(graph=graph, optimiser=optimiser,
                             config=dict(config or {}),
                             model_name=model_name, use_cache=use_cache)
        return self.submit_request(request)

    def submit_request(self, request: JobRequest) -> int:
        # Canonicalise to the *effective* config — registry defaults merged
        # under the overrides — so spelling a default out explicitly shares a
        # cache slot with omitting it, and a later change to a registry
        # default cannot resurrect persistent entries computed under the old
        # default.
        spec = optimiser_spec(request.optimiser)
        effective = {**spec.defaults, **dict(request.config)}
        if request.optimiser != spec.name or effective != dict(request.config):
            request = replace(request, optimiser=spec.name, config=effective)
        fingerprint = request.fingerprint()
        if request.use_cache:
            started = time.perf_counter()
            entry = self.cache.get(fingerprint)
            if entry is not None:
                # Complete the job inline: a hit never touches the worker
                # pool, so warm traffic costs neither a dispatch nor (with a
                # process pool) a round of graph pickling.
                result = cached_result(request, entry,
                                       time.perf_counter() - started)
                return self.scheduler.submit_completed(
                    result, label=f"{request.label} (cached)")
            on_success = self._store_callback(fingerprint)
        else:
            on_success = None
        return self.scheduler.submit(execute_request, request, fingerprint,
                                     label=request.label,
                                     on_success=on_success)

    def submit_batch(self, jobs: Iterable[BatchItem],
                     optimiser: str = "taso",
                     config: Optional[Mapping[str, Any]] = None,
                     use_cache: bool = True) -> List[int]:
        """Queue many jobs; returns job ids in submission order.

        ``optimiser`` / ``config`` / ``use_cache`` are defaults applied to
        items that do not carry their own.  Admission is all-or-nothing: if
        any item is rejected (bad item, unknown optimiser, full queue), the
        batch's already-admitted still-pending jobs are cancelled before the
        error propagates, so no work is stranded without its job ids.
        """
        job_ids: List[int] = []
        try:
            for item in jobs:
                if isinstance(item, JobRequest):
                    job_ids.append(self.submit_request(item))
                elif isinstance(item, Graph):
                    job_ids.append(self.submit(item, optimiser=optimiser,
                                               config=config,
                                               use_cache=use_cache))
                elif isinstance(item, tuple):
                    graph, model_name = item
                    job_ids.append(self.submit(graph, optimiser=optimiser,
                                               config=config,
                                               model_name=model_name,
                                               use_cache=use_cache))
                elif isinstance(item, Mapping):
                    kwargs = {"optimiser": optimiser, "config": config,
                              "use_cache": use_cache, **item}
                    job_ids.append(self.submit(**kwargs))
                else:
                    raise TypeError(
                        f"cannot submit {type(item).__name__}: expected "
                        "Graph, (graph, model_name), JobRequest or kwargs "
                        "dict")
        except Exception:
            for job_id in job_ids:
                try:
                    self.scheduler.cancel(job_id)
                except Exception:
                    pass
            raise
        return job_ids

    def _store_callback(self, fingerprint: str):
        def store(result: ServiceResult) -> None:
            self.cache.put(CacheEntry.from_result(fingerprint, result.search))
        return store

    # -- polling / results ---------------------------------------------
    def poll(self, job_id: int) -> JobState:
        """Non-blocking job state."""
        return self.scheduler.poll(job_id)

    def result(self, job_id: int,
               timeout: Optional[float] = None) -> ServiceResult:
        """Block until ``job_id`` finishes; re-raises the job's exception."""
        outcome: ServiceResult = self.scheduler.result(job_id, timeout)
        try:
            record = self.scheduler.record(job_id)
            queue_time = record.queue_time_s or 0.0
            run_time = record.run_time_s or 0.0
        except UnknownJobError:
            # The record was retired (max_history) between resolving the
            # future and snapshotting timings; the result itself is intact.
            queue_time = run_time = 0.0
        return replace(outcome, job_id=job_id,
                       queue_time_s=queue_time, run_time_s=run_time)

    def gather(self, job_ids: Sequence[int],
               timeout: Optional[float] = None) -> List[ServiceResult]:
        """Results for ``job_ids``, in the given (submission) order."""
        return [self.result(job_id, timeout) for job_id in job_ids]

    # -- synchronous conveniences --------------------------------------
    def optimise(self, graph: Graph, optimiser: str = "taso",
                 config: Optional[Mapping[str, Any]] = None,
                 model_name: str = "", use_cache: bool = True,
                 timeout: Optional[float] = None) -> ServiceResult:
        """submit + result in one call."""
        job_id = self.submit(graph, optimiser=optimiser, config=config,
                             model_name=model_name, use_cache=use_cache)
        return self.result(job_id, timeout)

    def optimise_batch(self, jobs: Iterable[BatchItem],
                       optimiser: str = "taso",
                       config: Optional[Mapping[str, Any]] = None,
                       use_cache: bool = True,
                       timeout: Optional[float] = None) -> List[ServiceResult]:
        """submit_batch + gather in one call (results in submission order)."""
        job_ids = self.submit_batch(jobs, optimiser=optimiser, config=config,
                                    use_cache=use_cache)
        return self.gather(job_ids, timeout)

    # -- introspection / lifecycle -------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service counters: worker pool, job states, cache accounting."""
        return {
            "workers": self.scheduler.num_workers,
            "use_processes": self.scheduler.use_processes,
            "jobs": self.scheduler.counts(),
            "cache_entries": len(self.cache),
            "cache": self.cache.stats.to_dict(),
        }

    def close(self, wait: bool = True) -> None:
        self.scheduler.shutdown(wait=wait)

    def __enter__(self) -> "OptimisationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return (f"OptimisationService(workers={self.scheduler.num_workers}, "
                f"cache={self.cache!r})")
