"""Optimiser registry: dispatch optimisers by *name* with default configs.

The serving layer describes jobs as plain data — graph + optimiser name +
config dict — so that requests can be fingerprinted, cached, queued and
executed by any worker.  That requires a level of indirection between the
name and the search class: this registry.  Every optimiser in
:mod:`repro.search` plus the X-RLflow agent is pre-registered; downstream
code can add its own via :func:`register_optimiser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

__all__ = ["OptimiserSpec", "register_optimiser", "optimiser_spec",
           "create_optimiser", "default_config", "list_optimisers"]


@dataclass(frozen=True)
class OptimiserSpec:
    """One registry entry: how to build an optimiser and its default knobs."""

    name: str
    factory: Callable[..., Any]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def create(self, **overrides: Any) -> Any:
        """Build a fresh optimiser instance with ``defaults | overrides``."""
        config = {**self.defaults, **overrides}
        return self.factory(**config)


_REGISTRY: Dict[str, OptimiserSpec] = {}


def register_optimiser(name: str, factory: Callable[..., Any],
                       defaults: Mapping[str, Any] = None,
                       description: str = "",
                       replace: bool = False) -> OptimiserSpec:
    """Register ``factory`` under ``name`` (case-insensitive).

    Raises ``ValueError`` if the name is taken, unless ``replace=True``.
    """
    key = str(name).lower()
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"optimiser {name!r} is already registered "
            f"(pass replace=True to override)")
    spec = OptimiserSpec(name=key, factory=factory,
                         defaults=dict(defaults or {}),
                         description=description)
    _REGISTRY[key] = spec
    return spec


def optimiser_spec(name: str) -> OptimiserSpec:
    """Look up a registry entry; ``KeyError`` lists the available names."""
    key = str(name).lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown optimiser {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def create_optimiser(name: str, **overrides: Any) -> Any:
    """Build a fresh optimiser by name.

    Search objects are stateful (priority queues, e-graph populations, RL
    agents), so callers construct one per job/worker rather than sharing.
    """
    return optimiser_spec(name).create(**overrides)


def default_config(name: str) -> Dict[str, Any]:
    """The registered default config for ``name`` (a copy, safe to mutate)."""
    return dict(optimiser_spec(name).defaults)


def list_optimisers() -> List[str]:
    """Sorted names of every registered optimiser."""
    return sorted(_REGISTRY)


def _build_xrlflow(e2e=None, **config):
    """Factory adapting config-dict kwargs to the XRLflow(config) signature."""
    from ..core.config import XRLflowConfig
    from ..core.xrlflow import XRLflow
    return XRLflow(XRLflowConfig.fast(**config), e2e=e2e)


def _register_builtins() -> None:
    from ..search.greedy import GreedyOptimizer, TASOOptimizer
    from ..search.pet import PETOptimizer
    from ..search.random_search import RandomSearchOptimizer
    from ..search.tensat import TensatOptimizer

    register_optimiser(
        "taso", TASOOptimizer,
        {"alpha": 1.05, "max_iterations": 100, "queue_capacity": 200},
        "TASO cost-model-driven backtracking search")
    register_optimiser(
        "greedy", GreedyOptimizer,
        {"max_iterations": 100},
        "pure greedy hill climbing (TASO with alpha=1)")
    register_optimiser(
        "tensat", TensatOptimizer,
        {"node_limit": 20000, "round_limit": 6, "multi_pattern_rounds": 1},
        "Tensat equality saturation over a bounded rewrite space")
    register_optimiser(
        "pet", PETOptimizer,
        {"max_iterations": 100},
        "PET partially-equivalent transformations")
    register_optimiser(
        "random", RandomSearchOptimizer,
        {"num_walks": 5, "horizon": 30, "seed": 0},
        "random-walk baseline")
    register_optimiser(
        "xrlflow", _build_xrlflow,
        {"num_episodes": 6, "max_steps": 18, "max_candidates": 24,
         "update_frequency": 3, "ppo_epochs": 1, "eval_episodes": 3},
        "X-RLflow graph-RL superoptimiser (fast training config)")


_register_builtins()
