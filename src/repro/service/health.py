"""Per-endpoint health records and load-aware endpoint selection.

The async worker pool used to dispatch remote work round-robin, blind to
how loaded — or how dead — each worker box was.  This module is the
replacement brain:

* :class:`EndpointHealth` — one endpoint's record: capacity (seeded from
  configuration, corrected by every ``ping``), in-flight jobs (our own
  dispatches plus the load the worker itself reports, which covers other
  services sharing the fleet), an EWMA of observed call latency, a
  consecutive-transport-failure counter, and a circuit-breaker state.
* :class:`HealthRegistry` — the thread-safe collection the dispatcher
  consults: :meth:`try_acquire` picks the **least-loaded live** endpoint
  and reserves a slot; successes/failures/probes feed the records back.

Circuit breaking: ``failure_threshold`` consecutive transport failures
quarantine an endpoint — it stops receiving work entirely, so a dead box
costs at most ``failure_threshold`` fallbacks, not one per job.  The
pool's probe loop keeps pinging quarantined endpoints and readmits any
that answer, so a rebooted worker rejoins the rotation without operator
action.

The registry also implements the legacy round-robin policy
(``policy="round_robin"``) so benchmarks can measure the routing win
against the old behaviour — the same escape-hatch pattern as the search
engine's ``incremental`` flag.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["EndpointHealth", "HealthRegistry"]

#: Recognised routing policies.
_POLICIES = ("health", "round_robin")


@dataclass
class EndpointHealth:
    """Mutable health record of one remote worker endpoint.

    Attributes:
        endpoint: The ``"host:port"`` this record describes.
        capacity: Concurrent searches the worker can run.  Seeded from
            the pool's ``max_remote_inflight``; corrected to the
            worker's real ``num_workers`` by every successful ping.
        inflight: Jobs *we* have dispatched and not yet completed.
        reported_inflight: In-flight jobs the worker itself reported on
            the last ping — includes load from other dispatchers.
        jobs_served: Lifetime total the worker reported on the last ping.
        ewma_latency_s: Exponentially-weighted moving average of observed
            call latency (dispatch → result), the load tie-breaker.
        consecutive_failures: Transport failures since the last success.
        quarantined: Circuit breaker state — a quarantined endpoint
            receives no work until a probe readmits it.
        quarantined_at: Monotonic time of the quarantine transition.
        readmissions: Times the endpoint came back from quarantine.
    """

    endpoint: str
    capacity: int = 1
    inflight: int = 0
    reported_inflight: int = 0
    jobs_served: int = 0
    ewma_latency_s: float = 0.0
    consecutive_failures: int = 0
    quarantined: bool = False
    quarantined_at: float = 0.0
    readmissions: int = 0
    #: Monotonic tick of the registry's last successful ping observation.
    last_probe_at: float = field(default=0.0, repr=False)

    @property
    def effective_inflight(self) -> int:
        """Best current load estimate.

        Our own dispatch count is exact but blind to other dispatchers;
        the worker's self-report covers everyone but goes stale between
        pings.  Taking the max never *under*-estimates load from either
        view.
        """
        return max(self.inflight, self.reported_inflight)

    @property
    def load(self) -> float:
        """Utilisation in [0, ∞): effective in-flight jobs over capacity."""
        return self.effective_inflight / max(1, self.capacity)

    @property
    def saturated(self) -> bool:
        """Whether every known execution slot is already occupied."""
        return self.effective_inflight >= max(1, self.capacity)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot for ``stats()`` / logs."""
        return {
            "capacity": self.capacity,
            "inflight": self.inflight,
            "reported_inflight": self.reported_inflight,
            "jobs_served": self.jobs_served,
            "ewma_latency_s": self.ewma_latency_s,
            "consecutive_failures": self.consecutive_failures,
            "quarantined": self.quarantined,
            "readmissions": self.readmissions,
        }


class HealthRegistry:
    """Thread-safe endpoint selection over a set of health records.

    Args:
        endpoints: The ``"host:port"`` strings in the fleet.
        default_capacity: Capacity assumed per endpoint until a ping
            reports the worker's real ``num_workers``.
        failure_threshold: Consecutive transport failures that trip the
            circuit breaker (quarantine).
        ewma_alpha: Smoothing factor for the latency average (higher
            reacts faster).
        policy: ``"health"`` (least-loaded live endpoint — the default)
            or ``"round_robin"`` (the legacy rotation, kept as the
            benchmark baseline; no quarantine, saturation-skip only).

    Raises:
        ValueError: If ``policy`` is not a recognised name.
    """

    def __init__(self, endpoints: Sequence[str],
                 default_capacity: int = 1,
                 failure_threshold: int = 3,
                 ewma_alpha: float = 0.3,
                 policy: str = "health"):
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; expected one of "
                f"{_POLICIES}")
        self.policy = policy
        self.failure_threshold = max(1, int(failure_threshold))
        self.ewma_alpha = float(ewma_alpha)
        self._default_capacity = max(1, int(default_capacity))
        self._lock = threading.Lock()
        self._records: Dict[str, EndpointHealth] = {
            str(e): EndpointHealth(endpoint=str(e),
                                   capacity=max(1, int(default_capacity)))
            for e in endpoints
        }
        self._order: List[str] = list(self._records)
        self._rr_next = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def endpoints(self) -> List[str]:
        """Configured endpoints, in declaration order."""
        return list(self._order)

    # -- selection -----------------------------------------------------
    def try_acquire(self) -> Optional[str]:
        """Reserve a slot on the best available endpoint, or ``None``.

        Under the ``health`` policy "best" means: not quarantined, has a
        free slot, lowest load factor — ties broken by EWMA latency, then
        declaration order.  Under ``round_robin`` it is the next endpoint
        in rotation with a free slot.  ``None`` means every endpoint is
        quarantined or saturated and the job should run locally.

        The returned endpoint's ``inflight`` is already incremented;
        every ``try_acquire`` must be paired with exactly one
        :meth:`release`.
        """
        with self._lock:
            record = (self._pick_round_robin() if self.policy == "round_robin"
                      else self._pick_least_loaded())
            if record is None:
                return None
            record.inflight += 1
            return record.endpoint

    def _pick_least_loaded(self) -> Optional[EndpointHealth]:
        best: Optional[EndpointHealth] = None
        best_key: Any = None
        for index, endpoint in enumerate(self._order):
            record = self._records[endpoint]
            if record.quarantined or record.saturated:
                continue
            key = (record.load, record.ewma_latency_s, index)
            if best is None or key < best_key:
                best, best_key = record, key
        return best

    def _pick_round_robin(self) -> Optional[EndpointHealth]:
        # Legacy policy: cycle, skipping endpoints whose *static* slot
        # allowance (the configured default capacity) is used up by our
        # own dispatches.  Ping-reported capacity and load are ignored and
        # dead boxes still get dispatched to (each attempt costing a
        # fallback) — exactly the blind behaviour the health policy is
        # measured against.
        for _ in range(len(self._order)):
            endpoint = self._order[self._rr_next % len(self._order)]
            self._rr_next += 1
            record = self._records[endpoint]
            if record.inflight < self._default_capacity:
                return record
        return None

    def release(self, endpoint: str) -> None:
        """Return the slot :meth:`try_acquire` reserved on ``endpoint``."""
        with self._lock:
            record = self._records.get(endpoint)
            if record is not None and record.inflight > 0:
                record.inflight -= 1

    # -- feedback ------------------------------------------------------
    def record_success(self, endpoint: str, latency_s: float) -> None:
        """Fold one successful call's latency into the endpoint's record."""
        with self._lock:
            record = self._records.get(endpoint)
            if record is None:
                return
            record.consecutive_failures = 0
            if record.ewma_latency_s <= 0.0:
                record.ewma_latency_s = float(latency_s)
            else:
                record.ewma_latency_s += self.ewma_alpha * (
                    float(latency_s) - record.ewma_latency_s)

    def record_failure(self, endpoint: str) -> bool:
        """Count one transport failure; returns True if it tripped the
        circuit breaker (the endpoint is now quarantined)."""
        with self._lock:
            record = self._records.get(endpoint)
            if record is None:
                return False
            record.consecutive_failures += 1
            if (self.policy == "health" and not record.quarantined
                    and record.consecutive_failures >= self.failure_threshold):
                record.quarantined = True
                record.quarantined_at = time.monotonic()
                return True
            return False

    def observe_ping(self, endpoint: str,
                     info: Optional[Mapping[str, Any]]) -> None:
        """Fold one probe outcome into the endpoint's record.

        ``info`` is the worker's ``ping`` payload — ``None`` means the
        probe failed (counts as a transport failure).  A successful probe
        updates capacity and the worker-reported load, and **readmits** a
        quarantined endpoint.
        """
        if info is None:
            self.record_failure(endpoint)
            return
        with self._lock:
            record = self._records.get(endpoint)
            if record is None:
                return
            capacity = info.get("capacity", info.get("workers"))
            if capacity:
                record.capacity = max(1, int(capacity))
            record.reported_inflight = max(0, int(info.get("jobs_inflight", 0)))
            record.jobs_served = int(info.get("jobs_served",
                                              record.jobs_served))
            record.consecutive_failures = 0
            record.last_probe_at = time.monotonic()
            if record.quarantined:
                record.quarantined = False
                record.readmissions += 1

    # -- introspection -------------------------------------------------
    def quarantined_endpoints(self) -> List[str]:
        """Endpoints currently held out of the rotation."""
        with self._lock:
            return [e for e, r in self._records.items() if r.quarantined]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-endpoint health dicts (for ``stats()`` and the CLI)."""
        with self._lock:
            return {e: r.to_dict() for e, r in self._records.items()}
